//! # relc-autotune — the autotuner of §6.1, online
//!
//! "A programmer may not know the best possible representation for a
//! concurrent relation. To help find an optimal decomposition ... we have
//! implemented an autotuner which, given a concurrent benchmark,
//! automatically discovers the best combination of decomposition structure,
//! container data structures, and choice of lock placement."
//!
//! This crate provides the candidate space and, beyond the paper's offline
//! enumerate-and-measure loop, an *online* cost model: calibrate once,
//! persist the per-candidate feature vectors, then rank candidates for
//! live traffic without re-measuring — feeding
//! [`relc::ConcurrentRelation::migrate_to`] for live re-decomposition.
//!
//! * [`graph`] — the §6.2 four-operation concurrent graph interface
//!   ([`graph::GraphOps`]) and its synthesized implementation;
//! * [`candidates`] — the search space (3 structures × container menu ×
//!   placement families × stripe factors), validity- and
//!   consistency-filtered per §6.1;
//! * [`calibrate`] — the transaction-layer calibration mixes
//!   ([`calibrate::TxnMix`]) and measurement runner, plus the legacy §6.2
//!   Herlihy-style graph workload ([`calibrate::run_workload`]) folded in;
//! * [`cost`] — the persisted [`cost::CostModel`]: feature vectors,
//!   JSON round-tripping, and [`cost::CostModel::advise`] over observed
//!   workload signals.
//!
//! # Example
//!
//! ```
//! use relc_autotune::calibrate::{CalibrationConfig, TxnMix};
//! use relc_autotune::candidates::{Candidate, PlacementKind, Structure};
//! use relc_autotune::cost::{CostModel, ObservedSignals};
//! use relc_containers::ContainerKind;
//!
//! let candidates = vec![Candidate {
//!     structure: Structure::Stick,
//!     top: ContainerKind::ConcurrentHashMap,
//!     second: ContainerKind::TreeMap,
//!     top2: None,
//!     second2: None,
//!     placement: PlacementKind::Striped(8),
//! }];
//! let cfg = CalibrationConfig { threads: 2, ops_per_thread: 200, ..Default::default() };
//! let model = CostModel::calibrate(&candidates, &[TxnMix::ReadHeavy], &cfg);
//!
//! // Later, against observed traffic (normally a `StatsSnapshot` delta):
//! let observed = ObservedSignals {
//!     reads: 950, writes: 50, txns: 0,
//!     restart_rate: 0.0, contention: 0.1, snapshot_read_rate: 0.9,
//! };
//! if let Some(advice) = model.advise(&observed) {
//!     println!("install {}", advice.best().candidate.name());
//! }
//! ```

#![warn(missing_docs)]

pub mod calibrate;
pub mod candidates;
pub mod cost;
pub mod graph;

pub use calibrate::{
    calibrate_run, run_workload, CalibrationConfig, KeyDistribution, MixProfile, OpMix, TxnMix,
    WorkloadConfig, WorkloadResult, FIGURE5_MIXES,
};
pub use candidates::{enumerate, Candidate, PlacementKind, Structure};
pub use cost::{
    CostModel, FeatureVector, ModelEntry, ObservedSignals, RankedCandidate, RankedCandidates,
};
pub use graph::{GraphOps, RelationGraph};
