//! # relc-autotune — the autotuner of §6.1
//!
//! "A programmer may not know the best possible representation for a
//! concurrent relation. To help find an optimal decomposition ... we have
//! implemented an autotuner which, given a concurrent benchmark,
//! automatically discovers the best combination of decomposition structure,
//! container data structures, and choice of lock placement."
//!
//! This crate provides:
//!
//! * [`graph`] — the §6.2 four-operation concurrent graph interface
//!   ([`graph::GraphOps`]) and its synthesized implementation;
//! * [`workload`] — the Herlihy-style `k`-thread random-operation
//!   throughput benchmark with the paper's Figure 5 operation mixes;
//! * [`candidates`] — the search space (3 structures × container menu ×
//!   placement families × stripe factors), validity- and
//!   consistency-filtered per §6.1;
//! * [`tuner`] — measurement and ranking.
//!
//! # Example
//!
//! ```no_run
//! use relc_autotune::candidates::enumerate;
//! use relc_autotune::tuner::autotune;
//! use relc_autotune::workload::{WorkloadConfig, FIGURE5_MIXES};
//!
//! let space = enumerate(&[1, 1024]);
//! let cfg = WorkloadConfig { mix: FIGURE5_MIXES[1], ..Default::default() };
//! let report = autotune(&space, &cfg);
//! println!("best: {}", report.best());
//! ```

#![warn(missing_docs)]

pub mod candidates;
pub mod graph;
pub mod tuner;
pub mod workload;

pub use candidates::{enumerate, Candidate, PlacementKind, Structure};
pub use graph::{GraphOps, RelationGraph};
pub use tuner::{autotune, TuneEntry, TuneReport};
pub use workload::{
    run_workload, KeyDistribution, OpMix, WorkloadConfig, WorkloadResult, FIGURE5_MIXES,
};
