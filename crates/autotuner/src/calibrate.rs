//! The calibration runner: short, instrumented measurement runs that feed
//! the [`crate::cost`] model.
//!
//! Two workload families live here:
//!
//! * the **transaction-layer mixes** ([`TxnMix`]) — the `txn_mix`
//!   bench's update/transfer/read shapes, run via [`calibrate_run`] with
//!   per-op latency capture and a [`relc::StatsSnapshot`] delta, producing
//!   the [`crate::cost::FeatureVector`] per (candidate, mix);
//! * the legacy **§6.2 graph workload** ([`run_workload`]) — `k` identical
//!   threads performing random graph operations drawn from an `x-y-z-w`
//!   distribution ("x% successors, y% predecessors, z% inserts, w%
//!   removes"), folded in here from the former `workload` module; the
//!   Figure 5 reproductions and the striping/Zipf ablations still drive
//!   it, and [`TxnMix::Graph`] routes it through calibration so the cost
//!   model can cover §6.2-shaped traffic too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use relc::ConcurrentRelation;
use relc_spec::{RelationSchema, Tuple, Value};

use crate::cost::FeatureVector;
use crate::graph::GraphOps;

/// An operation-mix distribution `x-y-z-w` (percentages must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// % find-successors.
    pub successors: u32,
    /// % find-predecessors.
    pub predecessors: u32,
    /// % insert-edge.
    pub inserts: u32,
    /// % remove-edge.
    pub removes: u32,
}

impl OpMix {
    /// Creates a mix, checking it sums to 100.
    ///
    /// # Panics
    ///
    /// Panics if the percentages do not sum to 100.
    pub const fn new(successors: u32, predecessors: u32, inserts: u32, removes: u32) -> Self {
        assert!(
            successors + predecessors + inserts + removes == 100,
            "op mix must sum to 100"
        );
        OpMix {
            successors,
            predecessors,
            inserts,
            removes,
        }
    }

    /// The paper's label, e.g. `70-0-20-10`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.successors, self.predecessors, self.inserts, self.removes
        )
    }

    /// Whether the mix ever queries predecessors (plans over the dst
    /// branch).
    pub fn uses_predecessors(&self) -> bool {
        self.predecessors > 0
    }
}

/// The four workload mixes of Figure 5.
pub const FIGURE5_MIXES: [OpMix; 4] = [
    OpMix::new(70, 0, 20, 10),
    OpMix::new(35, 35, 20, 10),
    OpMix::new(0, 0, 50, 50),
    OpMix::new(45, 45, 9, 1),
];

/// How `src`/`dst` values are drawn from `0..key_range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform (the paper's §6.2 methodology).
    Uniform,
    /// Zipf-like skew with exponent `s` (our extension): hot keys
    /// concentrate lock and container contention, stressing striping and
    /// speculation. Sampled by inverse-CDF over precomputed weights.
    Zipf(f64),
}

/// A sampler for [`KeyDistribution`] (per-thread, cheap).
#[derive(Debug, Clone)]
struct KeySampler {
    /// Cumulative weights for Zipf; empty for uniform.
    cdf: Vec<f64>,
    range: i64,
}

impl KeySampler {
    fn new(dist: KeyDistribution, range: i64) -> Self {
        match dist {
            KeyDistribution::Uniform => KeySampler {
                cdf: Vec::new(),
                range,
            },
            KeyDistribution::Zipf(s) => {
                let mut cdf = Vec::with_capacity(range as usize);
                let mut acc = 0.0;
                for k in 1..=range {
                    acc += 1.0 / (k as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for w in &mut cdf {
                    *w /= total;
                }
                KeySampler { cdf, range }
            }
        }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        if self.cdf.is_empty() {
            rng.random_range(0..self.range)
        } else {
            let u: f64 = rng.random_range(0.0..1.0);
            match self.cdf.binary_search_by(|w| w.total_cmp(&u)) {
                Ok(i) | Err(i) => (i as i64).min(self.range - 1),
            }
        }
    }
}

/// Configuration of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// The operation mix.
    pub mix: OpMix,
    /// Number of worker threads (`k` in §6.2).
    pub threads: usize,
    /// Operations per thread (paper: 5 × 10⁵).
    pub ops_per_thread: usize,
    /// `src`/`dst` values are drawn from `0..key_range`.
    pub key_range: i64,
    /// Key skew (uniform in the paper; Zipf as a contention ablation).
    pub distribution: KeyDistribution,
    /// RNG seed (deterministic workloads per seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mix: FIGURE5_MIXES[0],
            threads: 4,
            ops_per_thread: 10_000,
            key_range: 256,
            distribution: KeyDistribution::Uniform,
            seed: 0x0e1c_5eed,
        }
    }
}

/// The result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Aggregate throughput over all threads, operations per second.
    pub ops_per_sec: f64,
    /// Wall-clock seconds for the run.
    pub elapsed_secs: f64,
    /// Total operations executed.
    pub total_ops: u64,
}

/// Runs the §6.2 workload against `graph`: starts `threads` workers at a
/// barrier, each performing `ops_per_thread` operations drawn from the mix,
/// and reports aggregate throughput.
pub fn run_workload(graph: &Arc<dyn GraphOps>, cfg: &WorkloadConfig) -> WorkloadResult {
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let done_ops = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let graph = Arc::clone(graph);
        let barrier = Arc::clone(&barrier);
        let done_ops = Arc::clone(&done_ops);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tid as u64).wrapping_mul(0x9e37));
            let sampler = KeySampler::new(cfg.distribution, cfg.key_range);
            barrier.wait();
            let mut local = 0u64;
            for _ in 0..cfg.ops_per_thread {
                let src = sampler.sample(&mut rng);
                let dst = sampler.sample(&mut rng);
                let dice = rng.random_range(0..100u32);
                let m = cfg.mix;
                if dice < m.successors {
                    let _ = graph.find_successors(src);
                } else if dice < m.successors + m.predecessors {
                    let _ = graph.find_predecessors(dst);
                } else if dice < m.successors + m.predecessors + m.inserts {
                    let weight = rng.random_range(0..1_000_000i64);
                    let _ = graph.insert_edge(src, dst, weight);
                } else {
                    let _ = graph.remove_edge(src, dst);
                }
                local += 1;
            }
            done_ops.fetch_add(local, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("workload thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = done_ops.load(Ordering::Relaxed);
    WorkloadResult {
        ops_per_sec: total as f64 / elapsed.max(1e-9),
        elapsed_secs: elapsed,
        total_ops: total,
    }
}

// ---------------------------------------------------------------------------
// Transaction-layer calibration (the cost model's measurement probes).
// ---------------------------------------------------------------------------

/// A transaction-layer calibration mix, mirroring the shapes of the
/// `txn_mix` bench: the cost model measures each candidate under these and
/// matches observed traffic against their profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxnMix {
    /// 95% lock-free snapshot point reads / 5% single-shot updates.
    ReadHeavy,
    /// 100% single-shot updates on random keys.
    UpdateHeavy,
    /// 50% updates, 30% point reads, 20% transfer transactions.
    MixedRmw,
    /// 100% four-op transfer transactions (query + query + update + update).
    TxnTransfer,
    /// The legacy §6.2 graph mix, folded into calibration: successors /
    /// predecessors / edge inserts / edge removes per [`OpMix`].
    Graph(OpMix),
}

impl TxnMix {
    /// The four transaction-layer mixes every calibration covers by
    /// default (graph mixes are opt-in per workload).
    pub const STANDARD: [TxnMix; 4] = [
        TxnMix::ReadHeavy,
        TxnMix::UpdateHeavy,
        TxnMix::MixedRmw,
        TxnMix::TxnTransfer,
    ];

    /// The mix's stable label — the cost model's feature key (`read_heavy`,
    /// `update_heavy`, `mixed_rmw`, `txn_transfer`, `graph/x-y-z-w`).
    pub fn label(self) -> String {
        match self {
            TxnMix::ReadHeavy => "read_heavy".to_owned(),
            TxnMix::UpdateHeavy => "update_heavy".to_owned(),
            TxnMix::MixedRmw => "mixed_rmw".to_owned(),
            TxnMix::TxnTransfer => "txn_transfer".to_owned(),
            TxnMix::Graph(m) => format!("graph/{}", m.label()),
        }
    }

    /// The nominal (read, write, transaction) operation fractions, the
    /// coordinates [`crate::cost::ObservedSignals`] are matched against.
    pub fn profile(self) -> MixProfile {
        match self {
            TxnMix::ReadHeavy => MixProfile::new(0.95, 0.05, 0.0),
            TxnMix::UpdateHeavy => MixProfile::new(0.0, 1.0, 0.0),
            TxnMix::MixedRmw => MixProfile::new(0.3, 0.5, 0.2),
            TxnMix::TxnTransfer => MixProfile::new(0.0, 0.0, 1.0),
            TxnMix::Graph(m) => MixProfile::new(
                (m.successors + m.predecessors) as f64 / 100.0,
                (m.inserts + m.removes) as f64 / 100.0,
                0.0,
            ),
        }
    }

    /// Whether `rel`'s planner can execute every operation this mix
    /// issues (infeasible candidates are skipped during calibration, as
    /// the §6.1 tuner skipped candidates with no valid plan).
    pub fn supported_by(self, rel: &ConcurrentRelation) -> bool {
        let schema = rel.schema().clone();
        let planner = rel.planner();
        let key = schema.column_set(&["src", "dst"]).expect("graph schema");
        let wc = schema.column_set(&["weight"]).expect("graph schema");
        let point = || planner.plan_query(key, wc).is_ok();
        let update = || planner.plan_update(key, wc).is_ok();
        match self {
            TxnMix::ReadHeavy | TxnMix::UpdateHeavy => point() && update(),
            TxnMix::MixedRmw | TxnMix::TxnTransfer => point() && update(),
            TxnMix::Graph(m) => {
                let src = schema.column_set(&["src"]).expect("graph schema");
                let dst = schema.column_set(&["dst"]).expect("graph schema");
                let dw = schema.column_set(&["dst", "weight"]).expect("graph schema");
                let sw = schema.column_set(&["src", "weight"]).expect("graph schema");
                (m.successors == 0 || planner.plan_query(src, dw).is_ok())
                    && (m.predecessors == 0 || planner.plan_query(dst, sw).is_ok())
                    && (m.inserts == 0 || planner.plan_insert(key).is_ok())
                    && (m.removes == 0 || planner.plan_remove(key).is_ok())
            }
        }
    }
}

/// Nominal operation fractions of a mix (reads, writes, multi-op
/// transactions; they sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixProfile {
    /// Fraction of point/snapshot reads.
    pub read_fraction: f64,
    /// Fraction of single-shot writes.
    pub write_fraction: f64,
    /// Fraction of multi-operation transactions.
    pub txn_fraction: f64,
}

impl MixProfile {
    /// Builds a profile (fractions are expected to sum to ~1).
    pub fn new(read_fraction: f64, write_fraction: f64, txn_fraction: f64) -> Self {
        MixProfile {
            read_fraction,
            write_fraction,
            txn_fraction,
        }
    }

    /// Euclidean distance to another profile — the coverage metric for
    /// [`crate::cost::CostModel::advise`].
    pub fn distance(&self, other: &MixProfile) -> f64 {
        let dr = self.read_fraction - other.read_fraction;
        let dw = self.write_fraction - other.write_fraction;
        let dt = self.txn_fraction - other.txn_fraction;
        (dr * dr + dw * dw + dt * dt).sqrt()
    }
}

/// Configuration of one calibration run (deliberately short: the model is
/// built from many small probes, not one long benchmark).
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread per probe.
    pub ops_per_thread: usize,
    /// Keys are drawn from `0..key_range` (the diagonal is pre-populated
    /// so updates and transfers always hit).
    pub key_range: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            threads: 4,
            ops_per_thread: 2_000,
            key_range: 128,
            seed: 0xca11_b8a7e,
        }
    }
}

fn cal_key(schema: &RelationSchema, s: i64, d: i64) -> Tuple {
    schema
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn cal_weight(schema: &RelationSchema, w: i64) -> Tuple {
    schema.tuple(&[("weight", Value::from(w))]).unwrap()
}

/// (p50, p99) in microseconds over raw nanosecond latencies.
fn percentiles_us(mut lats: Vec<u64>) -> (f64, f64) {
    if lats.is_empty() {
        return (0.0, 0.0);
    }
    lats.sort_unstable();
    let at = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    (at(0.50), at(0.99))
}

/// Runs one calibration probe of `mix` against `rel`: pre-populates the
/// diagonal keyspace, drives the mix from `cfg.threads` workers with
/// per-op latency capture, and derives the mix's [`FeatureVector`] from
/// the run plus the [`relc::StatsSnapshot`] delta around it.
///
/// The caller is responsible for feasibility ([`TxnMix::supported_by`]);
/// an unsupported mix panics on the first unplannable operation.
pub fn calibrate_run(
    rel: &Arc<ConcurrentRelation>,
    mix: TxnMix,
    cfg: &CalibrationConfig,
) -> FeatureVector {
    let schema = rel.schema().clone();
    for k in 0..cfg.key_range {
        let _ = rel.insert(&cal_key(&schema, k, k), &cal_weight(&schema, k));
    }
    let before = rel.stats_snapshot();
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..cfg.threads as u64)
        .map(|tid| {
            let rel = Arc::clone(rel);
            let schema = schema.clone();
            let barrier = Arc::clone(&barrier);
            let latencies = Arc::clone(&latencies);
            let done = Arc::clone(&done);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let graph =
                    crate::graph::RelationGraph::new(Arc::clone(&rel)).expect("graph schema");
                let wcols = schema.column_set(&["weight"]).unwrap();
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tid + 1).wrapping_mul(0x9e37_79b9));
                barrier.wait();
                let mut lats = Vec::with_capacity(cfg.ops_per_thread);
                for i in 0..cfg.ops_per_thread {
                    let a = rng.random_range(0..cfg.key_range);
                    let mut b = rng.random_range(0..cfg.key_range);
                    if b == a {
                        b = (b + 1) % cfg.key_range;
                    }
                    let w = rng.random_range(0..1_000i64);
                    let t0 = Instant::now();
                    match mix {
                        TxnMix::ReadHeavy => {
                            if i % 20 == 0 {
                                rel.update(&cal_key(&schema, a, a), &cal_weight(&schema, w))
                                    .unwrap();
                            } else {
                                let _ = rel.query(&cal_key(&schema, a, a), wcols).unwrap();
                            }
                        }
                        TxnMix::UpdateHeavy => {
                            rel.update(&cal_key(&schema, a, a), &cal_weight(&schema, w))
                                .unwrap();
                        }
                        TxnMix::MixedRmw => match i % 10 {
                            0..=4 => {
                                rel.update(&cal_key(&schema, a, a), &cal_weight(&schema, w))
                                    .unwrap();
                            }
                            5..=7 => {
                                let _ = rel.query(&cal_key(&schema, a, a), wcols).unwrap();
                            }
                            _ => transfer(&rel, &schema, wcols, a, b, w),
                        },
                        TxnMix::TxnTransfer => transfer(&rel, &schema, wcols, a, b, w),
                        TxnMix::Graph(m) => {
                            let dice = rng.random_range(0..100u32);
                            if dice < m.successors {
                                let _ = graph.find_successors(a);
                            } else if dice < m.successors + m.predecessors {
                                let _ = graph.find_predecessors(b);
                            } else if dice < m.successors + m.predecessors + m.inserts {
                                let _ = graph.insert_edge(a, b, w);
                            } else {
                                let _ = graph.remove_edge(a, b);
                            }
                        }
                    }
                    lats.push(t0.elapsed().as_nanos() as u64);
                }
                done.fetch_add(lats.len() as u64, Ordering::Relaxed);
                latencies.lock().unwrap().extend(lats);
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("calibration worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let after = rel.stats_snapshot();
    let total_ops = done.load(Ordering::Relaxed);
    let lats = std::mem::take(&mut *latencies.lock().unwrap());
    let (p50_us, p99_us) = percentiles_us(lats);

    let d = |a: u64, b: u64| a.saturating_sub(b) as f64;
    let ops = (total_ops as f64).max(1.0);
    let commits = d(after.locks.commits, before.locks.commits).max(1.0);
    let acqs = d(after.locks.acquisitions, before.locks.acquisitions).max(1.0);
    FeatureVector {
        mix: mix.label(),
        ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        restart_rate: d(after.locks.restarts, before.locks.restarts) / commits,
        contention: d(after.locks.contended, before.locks.contended) / acqs,
        snapshot_read_rate: d(after.locks.snapshot_reads, before.locks.snapshot_reads) / ops,
        version_churn: d(after.versions.created, before.versions.created) / ops,
        reclamation_in_flight: after.reclamation.in_flight(),
        p50_us,
        p99_us,
    }
}

/// A transfer transaction between diagonal keys `a` and `b` (the
/// `txn_transfer` shape: two locked reads, two updates).
fn transfer(
    rel: &ConcurrentRelation,
    schema: &RelationSchema,
    wcols: relc_spec::ColumnSet,
    a: i64,
    b: i64,
    w: i64,
) {
    rel.transaction(|tx| {
        let wa = tx.query(&cal_key(schema, a, a), wcols)?;
        let wb = tx.query(&cal_key(schema, b, b), wcols)?;
        if wa.is_empty() || wb.is_empty() {
            return Ok(());
        }
        tx.update(&cal_key(schema, a, a), &cal_weight(schema, w))?;
        tx.update(&cal_key(schema, b, b), &cal_weight(schema, w + 1))?;
        Ok(())
    })
    .unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RelationGraph;
    use relc::decomp::library::split;
    use relc::placement::LockPlacement;
    use relc::ConcurrentRelation;
    use relc_containers::ContainerKind;

    #[test]
    fn mixes_are_well_formed() {
        for m in FIGURE5_MIXES {
            assert_eq!(m.successors + m.predecessors + m.inserts + m.removes, 100);
            assert!(!m.label().is_empty());
        }
        assert_eq!(FIGURE5_MIXES[0].label(), "70-0-20-10");
        assert!(!FIGURE5_MIXES[0].uses_predecessors());
        assert!(FIGURE5_MIXES[1].uses_predecessors());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = OpMix::new(50, 50, 50, 50);
    }

    #[test]
    fn workload_runs_and_counts_ops() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let rel = Arc::new(ConcurrentRelation::new(d, p).unwrap());
        let graph: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel.clone()).unwrap());
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[1],
            threads: 4,
            ops_per_thread: 500,
            key_range: 32,
            distribution: KeyDistribution::Uniform,
            seed: 42,
        };
        let res = run_workload(&graph, &cfg);
        assert_eq!(res.total_ops, 2_000);
        assert!(res.ops_per_sec > 0.0);
        rel.verify().expect("structurally sound after workload");
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = KeySampler::new(KeyDistribution::Zipf(1.2), 64);
        let mut counts = [0usize; 64];
        for _ in 0..20_000 {
            let k = sampler.sample(&mut rng);
            assert!((0..64).contains(&k));
            counts[k as usize] += 1;
        }
        // Key 0 is the hottest; the head dominates the tail.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[32].max(1), "{counts:?}");
        let head: usize = counts[..8].iter().sum();
        assert!(
            head > 10_000,
            "head of the Zipf must carry most mass: {head}"
        );
        // Uniform sampler spreads instead.
        let uniform = KeySampler::new(KeyDistribution::Uniform, 64);
        let mut u_counts = [0usize; 64];
        for _ in 0..20_000 {
            u_counts[uniform.sample(&mut rng) as usize] += 1;
        }
        assert!(u_counts.iter().all(|&c| c > 100), "{u_counts:?}");
    }

    #[test]
    fn zipf_workload_runs_against_relation() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let rel = Arc::new(ConcurrentRelation::new(d, p).unwrap());
        let graph: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel.clone()).unwrap());
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[1],
            threads: 4,
            ops_per_thread: 400,
            key_range: 32,
            distribution: KeyDistribution::Zipf(1.0),
            seed: 5,
        };
        let res = run_workload(&graph, &cfg);
        assert_eq!(res.total_ops, 1_600);
        rel.verify().expect("sound after skewed contention");
    }

    #[test]
    fn workload_is_deterministic_per_seed_single_thread() {
        // Same seed, single thread → identical final relation contents.
        let build = || {
            let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
            let p = LockPlacement::fine(&d).unwrap();
            Arc::new(ConcurrentRelation::new(d, p).unwrap())
        };
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[2],
            threads: 1,
            ops_per_thread: 400,
            key_range: 16,
            distribution: KeyDistribution::Uniform,
            seed: 7,
        };
        let r1 = build();
        let g1: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(r1.clone()).unwrap());
        run_workload(&g1, &cfg);
        let r2 = build();
        let g2: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(r2.clone()).unwrap());
        run_workload(&g2, &cfg);
        assert_eq!(r1.snapshot().unwrap(), r2.snapshot().unwrap());
    }
}
