//! The concurrent directed-graph interface used by the evaluation (§6.2)
//! and its implementation on top of synthesized relations.
//!
//! The benchmark fixes the graph relational specification `{src, dst,
//! weight}` with `src, dst → weight` and four operations: find successors,
//! find predecessors, insert edge, remove edge.

use std::sync::Arc;

use relc::{ConcurrentRelation, CoreError};
use relc_spec::{ColumnSet, Tuple, Value};

/// The four §6.2 graph operations, implementable by synthesized relations
/// and by hand-written baselines alike.
pub trait GraphOps: Send + Sync {
    /// All `(dst, weight)` pairs for edges leaving `src`.
    fn find_successors(&self, src: i64) -> Vec<(i64, i64)>;
    /// All `(src, weight)` pairs for edges entering `dst`.
    fn find_predecessors(&self, dst: i64) -> Vec<(i64, i64)>;
    /// Put-if-absent insertion of `(src, dst, weight)`; returns whether the
    /// edge was inserted (§2's compare-and-set `insert`).
    fn insert_edge(&self, src: i64, dst: i64, weight: i64) -> bool;
    /// Removes the edge `(src, dst)` if present; returns whether it existed.
    fn remove_edge(&self, src: i64, dst: i64) -> bool;
    /// Number of edges (quiescent).
    fn edge_count(&self) -> usize;
}

/// A [`GraphOps`] implementation backed by a synthesized
/// [`ConcurrentRelation`].
#[derive(Debug)]
pub struct RelationGraph {
    rel: Arc<ConcurrentRelation>,
    dw: ColumnSet,
    sw: ColumnSet,
    src_col: relc_spec::ColumnId,
    dst_col: relc_spec::ColumnId,
    weight_col: relc_spec::ColumnId,
}

impl RelationGraph {
    /// Wraps a relation over the graph schema.
    ///
    /// # Errors
    ///
    /// [`CoreError::Spec`] if the relation's schema is not the graph schema.
    pub fn new(rel: Arc<ConcurrentRelation>) -> Result<Self, CoreError> {
        let schema = rel.schema().clone();
        Ok(RelationGraph {
            dw: schema.column_set(&["dst", "weight"])?,
            sw: schema.column_set(&["src", "weight"])?,
            src_col: schema.column("src")?,
            dst_col: schema.column("dst")?,
            weight_col: schema.column("weight")?,
            rel,
        })
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Arc<ConcurrentRelation> {
        &self.rel
    }

    fn key(&self, src: i64, dst: i64) -> Tuple {
        Tuple::from_pairs([
            (self.src_col, Value::from(src)),
            (self.dst_col, Value::from(dst)),
        ])
    }
}

impl GraphOps for RelationGraph {
    fn find_successors(&self, src: i64) -> Vec<(i64, i64)> {
        let pat = Tuple::from_pairs([(self.src_col, Value::from(src))]);
        self.rel
            .query(&pat, self.dw)
            .expect("successor query is plannable for benchmark variants")
            .into_iter()
            .map(|t| {
                (
                    t.get(self.dst_col).and_then(Value::as_int).expect("dst"),
                    t.get(self.weight_col)
                        .and_then(Value::as_int)
                        .expect("weight"),
                )
            })
            .collect()
    }

    fn find_predecessors(&self, dst: i64) -> Vec<(i64, i64)> {
        let pat = Tuple::from_pairs([(self.dst_col, Value::from(dst))]);
        self.rel
            .query(&pat, self.sw)
            .expect("predecessor query is plannable for benchmark variants")
            .into_iter()
            .map(|t| {
                (
                    t.get(self.src_col).and_then(Value::as_int).expect("src"),
                    t.get(self.weight_col)
                        .and_then(Value::as_int)
                        .expect("weight"),
                )
            })
            .collect()
    }

    fn insert_edge(&self, src: i64, dst: i64, weight: i64) -> bool {
        let payload = Tuple::from_pairs([(self.weight_col, Value::from(weight))]);
        self.rel
            .insert(&self.key(src, dst), &payload)
            .expect("insert is plannable for benchmark variants")
    }

    fn remove_edge(&self, src: i64, dst: i64) -> bool {
        self.rel
            .remove(&self.key(src, dst))
            .expect("remove is plannable for benchmark variants")
            > 0
    }

    fn edge_count(&self) -> usize {
        self.rel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relc::decomp::library::split;
    use relc::placement::LockPlacement;
    use relc_containers::ContainerKind;

    #[test]
    fn graph_ops_roundtrip() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let rel = Arc::new(ConcurrentRelation::new(d, p).unwrap());
        let g = RelationGraph::new(rel).unwrap();
        assert!(g.insert_edge(1, 2, 42));
        assert!(!g.insert_edge(1, 2, 99), "put-if-absent");
        assert!(g.insert_edge(1, 3, 7));
        assert!(g.insert_edge(4, 2, 1));
        let mut succ = g.find_successors(1);
        succ.sort_unstable();
        assert_eq!(succ, vec![(2, 42), (3, 7)]);
        let mut pred = g.find_predecessors(2);
        pred.sort_unstable();
        assert_eq!(pred, vec![(1, 42), (4, 1)]);
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
    }
}
