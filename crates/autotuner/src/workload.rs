//! The §6.2 benchmark workload: `k` identical threads each performing
//! random graph operations drawn from a fixed distribution against one
//! shared relation, measuring aggregate throughput.
//!
//! "Each graph is labeled x-y-z-w, denoting a distribution of x% successors,
//! y% predecessors, z% inserts, and w% removes."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::GraphOps;

/// An operation-mix distribution `x-y-z-w` (percentages must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// % find-successors.
    pub successors: u32,
    /// % find-predecessors.
    pub predecessors: u32,
    /// % insert-edge.
    pub inserts: u32,
    /// % remove-edge.
    pub removes: u32,
}

impl OpMix {
    /// Creates a mix, checking it sums to 100.
    ///
    /// # Panics
    ///
    /// Panics if the percentages do not sum to 100.
    pub const fn new(successors: u32, predecessors: u32, inserts: u32, removes: u32) -> Self {
        assert!(
            successors + predecessors + inserts + removes == 100,
            "op mix must sum to 100"
        );
        OpMix {
            successors,
            predecessors,
            inserts,
            removes,
        }
    }

    /// The paper's label, e.g. `70-0-20-10`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.successors, self.predecessors, self.inserts, self.removes
        )
    }

    /// Whether the mix ever queries predecessors (plans over the dst
    /// branch).
    pub fn uses_predecessors(&self) -> bool {
        self.predecessors > 0
    }
}

/// The four workload mixes of Figure 5.
pub const FIGURE5_MIXES: [OpMix; 4] = [
    OpMix::new(70, 0, 20, 10),
    OpMix::new(35, 35, 20, 10),
    OpMix::new(0, 0, 50, 50),
    OpMix::new(45, 45, 9, 1),
];

/// How `src`/`dst` values are drawn from `0..key_range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform (the paper's §6.2 methodology).
    Uniform,
    /// Zipf-like skew with exponent `s` (our extension): hot keys
    /// concentrate lock and container contention, stressing striping and
    /// speculation. Sampled by inverse-CDF over precomputed weights.
    Zipf(f64),
}

/// A sampler for [`KeyDistribution`] (per-thread, cheap).
#[derive(Debug, Clone)]
struct KeySampler {
    /// Cumulative weights for Zipf; empty for uniform.
    cdf: Vec<f64>,
    range: i64,
}

impl KeySampler {
    fn new(dist: KeyDistribution, range: i64) -> Self {
        match dist {
            KeyDistribution::Uniform => KeySampler {
                cdf: Vec::new(),
                range,
            },
            KeyDistribution::Zipf(s) => {
                let mut cdf = Vec::with_capacity(range as usize);
                let mut acc = 0.0;
                for k in 1..=range {
                    acc += 1.0 / (k as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for w in &mut cdf {
                    *w /= total;
                }
                KeySampler { cdf, range }
            }
        }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        if self.cdf.is_empty() {
            rng.random_range(0..self.range)
        } else {
            let u: f64 = rng.random_range(0.0..1.0);
            match self.cdf.binary_search_by(|w| w.total_cmp(&u)) {
                Ok(i) | Err(i) => (i as i64).min(self.range - 1),
            }
        }
    }
}

/// Configuration of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// The operation mix.
    pub mix: OpMix,
    /// Number of worker threads (`k` in §6.2).
    pub threads: usize,
    /// Operations per thread (paper: 5 × 10⁵).
    pub ops_per_thread: usize,
    /// `src`/`dst` values are drawn from `0..key_range`.
    pub key_range: i64,
    /// Key skew (uniform in the paper; Zipf as a contention ablation).
    pub distribution: KeyDistribution,
    /// RNG seed (deterministic workloads per seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mix: FIGURE5_MIXES[0],
            threads: 4,
            ops_per_thread: 10_000,
            key_range: 256,
            distribution: KeyDistribution::Uniform,
            seed: 0x0e1c_5eed,
        }
    }
}

/// The result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Aggregate throughput over all threads, operations per second.
    pub ops_per_sec: f64,
    /// Wall-clock seconds for the run.
    pub elapsed_secs: f64,
    /// Total operations executed.
    pub total_ops: u64,
}

/// Runs the §6.2 workload against `graph`: starts `threads` workers at a
/// barrier, each performing `ops_per_thread` operations drawn from the mix,
/// and reports aggregate throughput.
pub fn run_workload(graph: &Arc<dyn GraphOps>, cfg: &WorkloadConfig) -> WorkloadResult {
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let done_ops = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let graph = Arc::clone(graph);
        let barrier = Arc::clone(&barrier);
        let done_ops = Arc::clone(&done_ops);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tid as u64).wrapping_mul(0x9e37));
            let sampler = KeySampler::new(cfg.distribution, cfg.key_range);
            barrier.wait();
            let mut local = 0u64;
            for _ in 0..cfg.ops_per_thread {
                let src = sampler.sample(&mut rng);
                let dst = sampler.sample(&mut rng);
                let dice = rng.random_range(0..100u32);
                let m = cfg.mix;
                if dice < m.successors {
                    let _ = graph.find_successors(src);
                } else if dice < m.successors + m.predecessors {
                    let _ = graph.find_predecessors(dst);
                } else if dice < m.successors + m.predecessors + m.inserts {
                    let weight = rng.random_range(0..1_000_000i64);
                    let _ = graph.insert_edge(src, dst, weight);
                } else {
                    let _ = graph.remove_edge(src, dst);
                }
                local += 1;
            }
            done_ops.fetch_add(local, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("workload thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = done_ops.load(Ordering::Relaxed);
    WorkloadResult {
        ops_per_sec: total as f64 / elapsed.max(1e-9),
        elapsed_secs: elapsed,
        total_ops: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RelationGraph;
    use relc::decomp::library::split;
    use relc::placement::LockPlacement;
    use relc::ConcurrentRelation;
    use relc_containers::ContainerKind;

    #[test]
    fn mixes_are_well_formed() {
        for m in FIGURE5_MIXES {
            assert_eq!(m.successors + m.predecessors + m.inserts + m.removes, 100);
            assert!(!m.label().is_empty());
        }
        assert_eq!(FIGURE5_MIXES[0].label(), "70-0-20-10");
        assert!(!FIGURE5_MIXES[0].uses_predecessors());
        assert!(FIGURE5_MIXES[1].uses_predecessors());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = OpMix::new(50, 50, 50, 50);
    }

    #[test]
    fn workload_runs_and_counts_ops() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let rel = Arc::new(ConcurrentRelation::new(d, p).unwrap());
        let graph: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel.clone()).unwrap());
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[1],
            threads: 4,
            ops_per_thread: 500,
            key_range: 32,
            distribution: KeyDistribution::Uniform,
            seed: 42,
        };
        let res = run_workload(&graph, &cfg);
        assert_eq!(res.total_ops, 2_000);
        assert!(res.ops_per_sec > 0.0);
        rel.verify().expect("structurally sound after workload");
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = KeySampler::new(KeyDistribution::Zipf(1.2), 64);
        let mut counts = [0usize; 64];
        for _ in 0..20_000 {
            let k = sampler.sample(&mut rng);
            assert!((0..64).contains(&k));
            counts[k as usize] += 1;
        }
        // Key 0 is the hottest; the head dominates the tail.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[32].max(1), "{counts:?}");
        let head: usize = counts[..8].iter().sum();
        assert!(
            head > 10_000,
            "head of the Zipf must carry most mass: {head}"
        );
        // Uniform sampler spreads instead.
        let uniform = KeySampler::new(KeyDistribution::Uniform, 64);
        let mut u_counts = [0usize; 64];
        for _ in 0..20_000 {
            u_counts[uniform.sample(&mut rng) as usize] += 1;
        }
        assert!(u_counts.iter().all(|&c| c > 100), "{u_counts:?}");
    }

    #[test]
    fn zipf_workload_runs_against_relation() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let rel = Arc::new(ConcurrentRelation::new(d, p).unwrap());
        let graph: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel.clone()).unwrap());
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[1],
            threads: 4,
            ops_per_thread: 400,
            key_range: 32,
            distribution: KeyDistribution::Zipf(1.0),
            seed: 5,
        };
        let res = run_workload(&graph, &cfg);
        assert_eq!(res.total_ops, 1_600);
        rel.verify().expect("sound after skewed contention");
    }

    #[test]
    fn workload_is_deterministic_per_seed_single_thread() {
        // Same seed, single thread → identical final relation contents.
        let build = || {
            let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
            let p = LockPlacement::fine(&d).unwrap();
            Arc::new(ConcurrentRelation::new(d, p).unwrap())
        };
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[2],
            threads: 1,
            ops_per_thread: 400,
            key_range: 16,
            distribution: KeyDistribution::Uniform,
            seed: 7,
        };
        let r1 = build();
        let g1: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(r1.clone()).unwrap());
        run_workload(&g1, &cfg);
        let r2 = build();
        let g2: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(r2.clone()).unwrap());
        run_workload(&g2, &cfg);
        assert_eq!(r1.snapshot().unwrap(), r2.snapshot().unwrap());
    }
}
