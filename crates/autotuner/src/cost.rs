//! The online cost model: per-candidate feature vectors measured by short
//! calibration runs, persisted to JSON, and consulted at runtime to rank
//! candidate representations for an *observed* workload without
//! re-measuring.
//!
//! The §6.1 autotuner was offline: enumerate, measure every candidate,
//! pick the best. This module keeps the measurement (now at the
//! transaction layer, via [`crate::calibrate::calibrate_run`]) but makes
//! the result a reusable model: [`CostModel::calibrate`] builds a
//! per-(candidate, mix) [`FeatureVector`] table, [`CostModel::to_json`] /
//! [`CostModel::from_json`] persist it (hand-rolled JSON — the workspace
//! deliberately carries no serialization dependency), and
//! [`CostModel::advise`] matches live [`ObservedSignals`] against the
//! calibrated mixes and returns [`RankedCandidates`] when the model
//! [covers](CostModel::covers) the observed traffic. The closed loop —
//! observe, advise, [`relc::ConcurrentRelation::migrate_to`], re-measure —
//! lives in the `autotune` bench binary.

use std::fmt::Write as _;

use relc::StatsSnapshot;
use relc_containers::ContainerKind;

use crate::calibrate::{calibrate_run, CalibrationConfig, MixProfile, TxnMix};
use crate::candidates::{Candidate, PlacementKind, Structure};

/// Maximum profile distance at which the model considers a calibrated mix
/// to describe the observed traffic (beyond it, [`CostModel::advise`]
/// declines rather than extrapolate).
pub const COVERAGE_THRESHOLD: f64 = 0.35;

/// The measured features of one (candidate, mix) calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// The mix label ([`TxnMix::label`]).
    pub mix: String,
    /// Completed top-level operations per second.
    pub ops_per_sec: f64,
    /// Transaction restarts per commit.
    pub restart_rate: f64,
    /// Contended lock acquisitions per acquisition.
    pub contention: f64,
    /// Lock-free snapshot reads per operation.
    pub snapshot_read_rate: f64,
    /// MVCC version nodes created per operation.
    pub version_churn: f64,
    /// Deferred destructions not yet reclaimed at the end of the run.
    pub reclamation_in_flight: u64,
    /// Median per-operation latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-operation latency, microseconds.
    pub p99_us: f64,
}

/// Live workload signals derived from a [`StatsSnapshot`] delta — what the
/// closed loop observes about traffic it did not generate itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedSignals {
    /// Point/range/contains reads plus read-only transactions.
    pub reads: u64,
    /// Single-shot inserts, removes and updates.
    pub writes: u64,
    /// Multi-operation read-write transactions.
    pub txns: u64,
    /// Restarts per commit over the window.
    pub restart_rate: f64,
    /// Contended acquisitions per acquisition over the window.
    pub contention: f64,
    /// Snapshot reads per operation over the window.
    pub snapshot_read_rate: f64,
}

impl ObservedSignals {
    /// Derives the signals from two [`StatsSnapshot`]s bracketing an
    /// observation window on the same relation.
    pub fn from_delta(before: &StatsSnapshot, after: &StatsSnapshot) -> Self {
        let d = |a: u64, b: u64| a.saturating_sub(b);
        let reads = d(after.ops.queries, before.ops.queries)
            + d(after.ops.range_queries, before.ops.range_queries)
            + d(after.ops.contains_checks, before.ops.contains_checks)
            + d(after.ops.read_transactions, before.ops.read_transactions);
        let writes = d(after.ops.inserts, before.ops.inserts)
            + d(after.ops.removes, before.ops.removes)
            + d(after.ops.updates, before.ops.updates);
        let txns = d(after.ops.transactions, before.ops.transactions);
        let ops = (reads + writes + txns).max(1) as f64;
        ObservedSignals {
            reads,
            writes,
            txns,
            restart_rate: d(after.locks.restarts, before.locks.restarts) as f64
                / d(after.locks.commits, before.locks.commits).max(1) as f64,
            contention: d(after.locks.contended, before.locks.contended) as f64
                / d(after.locks.acquisitions, before.locks.acquisitions).max(1) as f64,
            snapshot_read_rate: d(after.locks.snapshot_reads, before.locks.snapshot_reads) as f64
                / ops,
        }
    }

    /// The observed operation-fraction profile, comparable to
    /// [`TxnMix::profile`].
    pub fn profile(&self) -> MixProfile {
        let total = (self.reads + self.writes + self.txns) as f64;
        if total == 0.0 {
            return MixProfile::new(0.0, 0.0, 0.0);
        }
        MixProfile::new(
            self.reads as f64 / total,
            self.writes as f64 / total,
            self.txns as f64 / total,
        )
    }
}

/// One candidate's calibrated features across the measured mixes.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The candidate representation.
    pub candidate: Candidate,
    /// One feature vector per mix the candidate could run.
    pub features: Vec<FeatureVector>,
}

/// A candidate ranked by predicted throughput for a matched mix.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// The candidate representation.
    pub candidate: Candidate,
    /// Its calibrated features under the matched mix.
    pub features: FeatureVector,
}

/// The advice [`CostModel::advise`] returns when the model covers the
/// observed traffic: candidates ranked fastest-first under the calibrated
/// mix nearest to the observation.
#[derive(Debug, Clone)]
pub struct RankedCandidates {
    /// Label of the calibrated mix matched to the observation.
    pub matched_mix: String,
    /// Profile distance between the observation and the matched mix.
    pub distance: f64,
    /// Candidates with features for the matched mix, fastest first.
    pub ranked: Vec<RankedCandidate>,
}

impl RankedCandidates {
    /// The predicted-fastest candidate.
    pub fn best(&self) -> &RankedCandidate {
        &self.ranked[0]
    }
}

/// The persisted cost model: calibrated mixes and per-candidate features.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// The calibrated mixes (label, nominal profile).
    pub mixes: Vec<(String, MixProfile)>,
    /// Per-candidate feature tables.
    pub entries: Vec<ModelEntry>,
}

impl CostModel {
    /// Calibrates `candidates` under `mixes`: builds each candidate,
    /// skips (candidate, mix) pairs the candidate's planner cannot
    /// execute ([`TxnMix::supported_by`] — e.g. scans over speculative
    /// edges), and measures the rest with [`calibrate_run`]. Candidates
    /// that fail to build, or support no mix at all, are dropped.
    pub fn calibrate(candidates: &[Candidate], mixes: &[TxnMix], cfg: &CalibrationConfig) -> Self {
        let mut model = CostModel {
            mixes: mixes.iter().map(|m| (m.label(), m.profile())).collect(),
            entries: Vec::new(),
        };
        for cand in candidates {
            let Ok(rel) = cand.build() else { continue };
            let mut features = Vec::new();
            for &mix in mixes {
                if !mix.supported_by(&rel) {
                    continue;
                }
                features.push(calibrate_run(&rel, mix, cfg));
            }
            if !features.is_empty() {
                model.entries.push(ModelEntry {
                    candidate: cand.clone(),
                    features,
                });
            }
        }
        model
    }

    /// The calibrated mix nearest to `signals`, with its profile distance.
    fn nearest_mix(&self, signals: &ObservedSignals) -> Option<(&str, f64)> {
        let p = signals.profile();
        self.mixes
            .iter()
            .map(|(label, profile)| (label.as_str(), profile.distance(&p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Whether the model's calibrated mixes describe the observed traffic
    /// closely enough ([`COVERAGE_THRESHOLD`]) to advise without
    /// re-measuring.
    pub fn covers(&self, signals: &ObservedSignals) -> bool {
        self.nearest_mix(signals)
            .is_some_and(|(_, d)| d <= COVERAGE_THRESHOLD)
    }

    /// Ranks the calibrated candidates for the observed traffic, fastest
    /// first, without re-measuring. Returns `None` when no calibrated mix
    /// covers the observation (the caller should fall back to a fresh
    /// calibration).
    pub fn advise(&self, signals: &ObservedSignals) -> Option<RankedCandidates> {
        let (label, distance) = self.nearest_mix(signals)?;
        if distance > COVERAGE_THRESHOLD {
            return None;
        }
        let mut ranked: Vec<RankedCandidate> = self
            .entries
            .iter()
            .filter_map(|e| {
                e.features
                    .iter()
                    .find(|f| f.mix == label)
                    .map(|f| RankedCandidate {
                        candidate: e.candidate.clone(),
                        features: f.clone(),
                    })
            })
            .collect();
        if ranked.is_empty() {
            return None;
        }
        let label = label.to_owned();
        ranked.sort_by(|a, b| b.features.ops_per_sec.total_cmp(&a.features.ops_per_sec));
        Some(RankedCandidates {
            matched_mix: label,
            distance,
            ranked,
        })
    }

    /// Serializes the model to JSON (stable field order, round-trips
    /// losslessly through [`CostModel::from_json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"mixes\": [");
        for (i, (label, p)) in self.mixes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"label\": {}, \"read\": {}, \"write\": {}, \"txn\": {}}}",
                json_str(label),
                json_num(p.read_fraction),
                json_num(p.write_fraction),
                json_num(p.txn_fraction)
            );
        }
        s.push_str("\n  ],\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"candidate\": ");
            candidate_to_json(&e.candidate, &mut s);
            s.push_str(", \"features\": [");
            for (j, f) in e.features.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n      {{\"mix\": {}, \"ops_per_sec\": {}, \"restart_rate\": {}, \
                     \"contention\": {}, \"snapshot_read_rate\": {}, \"version_churn\": {}, \
                     \"reclamation_in_flight\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                    json_str(&f.mix),
                    json_num(f.ops_per_sec),
                    json_num(f.restart_rate),
                    json_num(f.contention),
                    json_num(f.snapshot_read_rate),
                    json_num(f.version_churn),
                    f.reclamation_in_flight,
                    json_num(f.p50_us),
                    json_num(f.p99_us)
                );
            }
            s.push_str("\n    ]}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses a model previously produced by [`CostModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct (bad JSON,
    /// missing field, unknown structure/container/placement name).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let obj = root.as_obj("model")?;
        let mut mixes = Vec::new();
        for m in get(obj, "mixes")?.as_arr("mixes")? {
            let mo = m.as_obj("mix")?;
            mixes.push((
                get(mo, "label")?.as_str("label")?.to_owned(),
                MixProfile::new(
                    get(mo, "read")?.as_num("read")?,
                    get(mo, "write")?.as_num("write")?,
                    get(mo, "txn")?.as_num("txn")?,
                ),
            ));
        }
        let mut entries = Vec::new();
        for e in get(obj, "entries")?.as_arr("entries")? {
            let eo = e.as_obj("entry")?;
            let candidate = candidate_from_json(get(eo, "candidate")?)?;
            let mut features = Vec::new();
            for f in get(eo, "features")?.as_arr("features")? {
                let fo = f.as_obj("feature")?;
                features.push(FeatureVector {
                    mix: get(fo, "mix")?.as_str("mix")?.to_owned(),
                    ops_per_sec: get(fo, "ops_per_sec")?.as_num("ops_per_sec")?,
                    restart_rate: get(fo, "restart_rate")?.as_num("restart_rate")?,
                    contention: get(fo, "contention")?.as_num("contention")?,
                    snapshot_read_rate: get(fo, "snapshot_read_rate")?
                        .as_num("snapshot_read_rate")?,
                    version_churn: get(fo, "version_churn")?.as_num("version_churn")?,
                    reclamation_in_flight: get(fo, "reclamation_in_flight")?
                        .as_num("reclamation_in_flight")?
                        as u64,
                    p50_us: get(fo, "p50_us")?.as_num("p50_us")?,
                    p99_us: get(fo, "p99_us")?.as_num("p99_us")?,
                });
            }
            entries.push(ModelEntry {
                candidate,
                features,
            });
        }
        Ok(CostModel { mixes, entries })
    }
}

// ---------------------------------------------------------------------------
// Candidate (de)serialization by name.
// ---------------------------------------------------------------------------

fn candidate_to_json(c: &Candidate, s: &mut String) {
    let (family, stripes) = match c.placement {
        PlacementKind::Coarse => ("coarse", 0),
        PlacementKind::Fine => ("fine", 0),
        PlacementKind::Striped(k) => ("striped", k),
        PlacementKind::Speculative(k) => ("speculative", k),
    };
    let opt = |s: &mut String, v: Option<ContainerKind>| match v {
        Some(k) => {
            let _ = write!(s, "{}", json_str(&k.to_string()));
        }
        None => s.push_str("null"),
    };
    let _ = write!(
        s,
        "{{\"structure\": {}, \"top\": {}, \"second\": {}, \"top2\": ",
        json_str(&c.structure.to_string()),
        json_str(&c.top.to_string()),
        json_str(&c.second.to_string())
    );
    opt(s, c.top2);
    s.push_str(", \"second2\": ");
    opt(s, c.second2);
    let _ = write!(
        s,
        ", \"placement\": {}, \"stripes\": {stripes}}}",
        json_str(family)
    );
}

fn structure_from_name(s: &str) -> Result<Structure, String> {
    match s {
        "stick" => Ok(Structure::Stick),
        "split" => Ok(Structure::Split),
        "diamond" => Ok(Structure::Diamond),
        other => Err(format!("unknown structure `{other}`")),
    }
}

fn container_from_name(s: &str) -> Result<ContainerKind, String> {
    match s {
        "HashMap" => Ok(ContainerKind::HashMap),
        "TreeMap" => Ok(ContainerKind::TreeMap),
        "ConcurrentHashMap" => Ok(ContainerKind::ConcurrentHashMap),
        "ConcurrentSkipListMap" => Ok(ContainerKind::ConcurrentSkipListMap),
        "CopyOnWriteArrayList" => Ok(ContainerKind::CopyOnWriteArrayList),
        "SplayTreeMap" => Ok(ContainerKind::SplayTreeMap),
        "Singleton" => Ok(ContainerKind::Singleton),
        other => Err(format!("unknown container `{other}`")),
    }
}

fn candidate_from_json(v: &Json) -> Result<Candidate, String> {
    let o = v.as_obj("candidate")?;
    let opt = |name: &str| -> Result<Option<ContainerKind>, String> {
        match get(o, name)? {
            Json::Null => Ok(None),
            other => Ok(Some(container_from_name(other.as_str(name)?)?)),
        }
    };
    let stripes = get(o, "stripes")?.as_num("stripes")? as u32;
    let placement = match get(o, "placement")?.as_str("placement")? {
        "coarse" => PlacementKind::Coarse,
        "fine" => PlacementKind::Fine,
        "striped" => PlacementKind::Striped(stripes),
        "speculative" => PlacementKind::Speculative(stripes),
        other => return Err(format!("unknown placement `{other}`")),
    };
    Ok(Candidate {
        structure: structure_from_name(get(o, "structure")?.as_str("structure")?)?,
        top: container_from_name(get(o, "top")?.as_str("top")?)?,
        second: container_from_name(get(o, "second")?.as_str("second")?)?,
        top2: opt("top2")?,
        second2: opt("second2")?,
        placement,
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON: emitter helpers and a recursive-descent parser. Covers the
// subset the model emits (objects, arrays, strings with simple escapes,
// finite numbers, null) — not a general-purpose JSON library.
// ---------------------------------------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rust's shortest-round-trip float formatting, with a decimal point kept
/// so integers stay re-parseable as floats. Non-finite values have no
/// JSON number form, so they are encoded as tagged strings instead of
/// being silently clamped: `"Infinity"`, `"-Infinity"`, and
/// `"NaN:<16 hex digits>"` carrying the exact bit pattern (sign and
/// payload survive the round trip). [`Json::as_num`] decodes all three.
fn json_num(v: f64) -> String {
    if v.is_nan() {
        return format!("\"NaN:{:016x}\"", v.to_bits());
    }
    if v.is_infinite() {
        return if v > 0.0 {
            "\"Infinity\"".to_owned()
        } else {
            "\"-Infinity\"".to_owned()
        };
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Decodes the tagged-string forms [`json_num`] uses for values JSON
/// numbers cannot carry.
fn non_finite_from_str(s: &str) -> Option<f64> {
    match s {
        "Infinity" => Some(f64::INFINITY),
        "-Infinity" => Some(f64::NEG_INFINITY),
        _ => s
            .strip_prefix("NaN:")
            .filter(|hex| hex.len() == 16)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .map(f64::from_bits)
            .filter(|v| v.is_nan()),
    }
}

/// A parsed JSON value (the model's subset: no `true`/`false` needed, but
/// accepted for robustness).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            Json::Str(s) => non_finite_from_str(s)
                .ok_or_else(|| format!("{what}: expected number, got string `{s}`")),
            _ => Err(format!("{what}: expected number")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned())
            }
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape `\\{}`", *other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::calibrate::OpMix;

    fn small_candidates() -> Vec<Candidate> {
        vec![
            Candidate {
                structure: Structure::Stick,
                top: ContainerKind::ConcurrentHashMap,
                second: ContainerKind::TreeMap,
                top2: None,
                second2: None,
                placement: PlacementKind::Striped(8),
            },
            Candidate {
                structure: Structure::Stick,
                top: ContainerKind::HashMap,
                second: ContainerKind::TreeMap,
                top2: None,
                second2: None,
                placement: PlacementKind::Coarse,
            },
        ]
    }

    fn quick_cfg() -> CalibrationConfig {
        CalibrationConfig {
            threads: 2,
            ops_per_thread: 300,
            key_range: 32,
            ..Default::default()
        }
    }

    fn fake_feature(mix: &str, ops: f64) -> FeatureVector {
        FeatureVector {
            mix: mix.to_owned(),
            ops_per_sec: ops,
            restart_rate: 0.01,
            contention: 0.25,
            snapshot_read_rate: 0.9,
            version_churn: 0.05,
            reclamation_in_flight: 7,
            p50_us: 1.5,
            p99_us: 12.25,
        }
    }

    fn fake_model() -> CostModel {
        let cands = small_candidates();
        CostModel {
            mixes: vec![
                ("read_heavy".to_owned(), TxnMix::ReadHeavy.profile()),
                ("txn_transfer".to_owned(), TxnMix::TxnTransfer.profile()),
            ],
            entries: vec![
                ModelEntry {
                    candidate: cands[0].clone(),
                    features: vec![
                        fake_feature("read_heavy", 900_000.0),
                        fake_feature("txn_transfer", 200_000.0),
                    ],
                },
                ModelEntry {
                    candidate: cands[1].clone(),
                    features: vec![fake_feature("read_heavy", 400_000.0)],
                },
            ],
        }
    }

    #[test]
    fn calibration_measures_every_supported_pair() {
        let model = CostModel::calibrate(
            &small_candidates(),
            &[TxnMix::ReadHeavy, TxnMix::TxnTransfer],
            &quick_cfg(),
        );
        assert_eq!(model.entries.len(), 2);
        for e in &model.entries {
            assert_eq!(e.features.len(), 2, "{}", e.candidate.name());
            for f in &e.features {
                assert!(f.ops_per_sec > 0.0, "{}: {f:?}", e.candidate.name());
                assert!(f.p99_us >= f.p50_us, "{}: {f:?}", e.candidate.name());
            }
        }
    }

    #[test]
    fn graph_mix_routes_through_calibration() {
        let model = CostModel::calibrate(
            &small_candidates()[..1],
            &[TxnMix::Graph(OpMix::new(70, 0, 20, 10))],
            &quick_cfg(),
        );
        assert_eq!(model.entries.len(), 1);
        assert_eq!(model.entries[0].features[0].mix, "graph/70-0-20-10");
    }

    #[test]
    fn advise_ranks_covered_mix_without_remeasuring() {
        let model = fake_model();
        // Read-dominant observation: matches read_heavy, ranks the striped
        // concurrent candidate first.
        let obs = ObservedSignals {
            reads: 950,
            writes: 50,
            txns: 0,
            restart_rate: 0.0,
            contention: 0.1,
            snapshot_read_rate: 0.9,
        };
        assert!(model.covers(&obs));
        let advice = model.advise(&obs).unwrap();
        assert_eq!(advice.matched_mix, "read_heavy");
        assert!(advice.distance <= COVERAGE_THRESHOLD);
        assert_eq!(advice.ranked.len(), 2);
        assert!(advice.best().features.ops_per_sec >= advice.ranked[1].features.ops_per_sec);
        assert_eq!(advice.best().candidate.name(), small_candidates()[0].name());
        // Transfer-heavy observation: only the first entry is calibrated
        // for txn_transfer.
        let txn_obs = ObservedSignals {
            reads: 0,
            writes: 0,
            txns: 100,
            restart_rate: 0.2,
            contention: 0.3,
            snapshot_read_rate: 0.0,
        };
        let advice = model.advise(&txn_obs).unwrap();
        assert_eq!(advice.matched_mix, "txn_transfer");
        assert_eq!(advice.ranked.len(), 1);
    }

    #[test]
    fn advise_declines_uncovered_mix() {
        let model = fake_model();
        // Write-only traffic is nowhere near read_heavy or txn_transfer.
        let obs = ObservedSignals {
            reads: 0,
            writes: 1_000,
            txns: 0,
            restart_rate: 0.0,
            contention: 0.0,
            snapshot_read_rate: 0.0,
        };
        assert!(!model.covers(&obs));
        assert!(model.advise(&obs).is_none());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let model = fake_model();
        let text = model.to_json();
        let back = CostModel::from_json(&text).unwrap();
        assert_eq!(back.mixes.len(), model.mixes.len());
        for (a, b) in back.mixes.iter().zip(&model.mixes) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
        assert_eq!(back.entries.len(), model.entries.len());
        for (a, b) in back.entries.iter().zip(&model.entries) {
            assert_eq!(a.candidate.name(), b.candidate.name());
            assert_eq!(a.features, b.features);
        }
        // And a re-serialization is byte-identical (stable field order).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_round_trip_preserves_non_finite_features() {
        // A calibration run divided by a zero counter once produced NaN
        // and infinity features; the old emitter silently clamped them
        // to 0, corrupting the model on save/load. They must round-trip
        // bit-exactly now (including NaN payload bits and -0.0's sign).
        let mut model = fake_model();
        let f = &mut model.entries[0].features[0];
        f.ops_per_sec = f64::NAN;
        f.restart_rate = f64::INFINITY;
        f.contention = f64::NEG_INFINITY;
        f.snapshot_read_rate = f64::from_bits(0x7ff8_dead_beef_0001); // payload NaN
        f.version_churn = f64::MIN_POSITIVE / 2.0; // subnormal
        f.p50_us = -0.0;
        let text = model.to_json();
        let back = CostModel::from_json(&text).unwrap();
        let g = &back.entries[0].features[0];
        let bits = |v: f64| v.to_bits();
        let orig = &model.entries[0].features[0];
        assert_eq!(bits(g.ops_per_sec), bits(orig.ops_per_sec));
        assert_eq!(bits(g.restart_rate), bits(orig.restart_rate));
        assert_eq!(bits(g.contention), bits(orig.contention));
        assert_eq!(bits(g.snapshot_read_rate), bits(orig.snapshot_read_rate));
        assert_eq!(bits(g.version_churn), bits(orig.version_churn));
        assert_eq!(bits(g.p50_us), bits(orig.p50_us));
        assert_eq!(
            back.to_json(),
            text,
            "re-serialization must be byte-identical"
        );
    }

    proptest! {
        /// Every f64 bit pattern — finite, subnormal, ±0, ±inf, and NaNs
        /// with arbitrary payloads — survives emit → parse → re-emit with
        /// identical bits and identical text.
        #[test]
        fn json_num_round_trips_every_bit_pattern(
            bits in prop_oneof![
                4 => any::<u64>(),
                // Subnormals of both signs (mantissa-only patterns).
                2 => 1u64..1 << 52,
                2 => (1u64..1 << 52).prop_map(|m| m | (1 << 63)),
                // Non-finite: ±inf and arbitrary-payload NaNs.
                1 => Just(0x7ff0_0000_0000_0000u64),
                1 => Just(0xfff0_0000_0000_0000u64),
                2 => 0x7ff0_0000_0000_0001u64..0x8000_0000_0000_0000,
                2 => 0xfff0_0000_0000_0001u64..u64::MAX,
            ]
        ) {
            let v = f64::from_bits(bits);
            let text = json_num(v);
            let parsed = Json::parse(&text).unwrap();
            let back = parsed.as_num("v").unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
            prop_assert_eq!(json_num(back), text);
        }
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(CostModel::from_json("").is_err());
        assert!(CostModel::from_json("{\"version\": 1}").is_err());
        assert!(CostModel::from_json("{\"mixes\": [], \"entries\": [}").is_err());
        let bad_container = fake_model()
            .to_json()
            .replace("ConcurrentHashMap", "FooMap");
        assert!(CostModel::from_json(&bad_container).is_err());
    }

    #[test]
    fn observed_signals_profile_matches_counters() {
        let obs = ObservedSignals {
            reads: 30,
            writes: 50,
            txns: 20,
            restart_rate: 0.0,
            contention: 0.0,
            snapshot_read_rate: 0.0,
        };
        let p = obs.profile();
        assert!((p.read_fraction - 0.3).abs() < 1e-9);
        assert!((p.write_fraction - 0.5).abs() < 1e-9);
        assert!((p.txn_fraction - 0.2).abs() < 1e-9);
        // Identical to the MixedRmw nominal profile.
        assert!(p.distance(&TxnMix::MixedRmw.profile()) < 1e-9);
    }
}
