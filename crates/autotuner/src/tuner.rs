//! The autotuner proper (§6.1): measure every feasible candidate on a
//! training workload and report the ranking.

use std::fmt;
use std::sync::Arc;

use crate::candidates::Candidate;
use crate::graph::GraphOps;
use crate::workload::{run_workload, WorkloadConfig};

/// Measurement of one candidate on the training workload.
#[derive(Debug, Clone)]
pub struct TuneEntry {
    /// The candidate.
    pub candidate: Candidate,
    /// Aggregate throughput (operations per second).
    pub ops_per_sec: f64,
}

impl fmt::Display for TuneEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.0} ops/s  {}",
            self.ops_per_sec,
            self.candidate.name()
        )
    }
}

/// The autotuner's report: feasible candidates ranked by throughput, plus
/// the candidates that were skipped (no valid plan for the training mix).
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Feasible candidates, best first.
    pub ranked: Vec<TuneEntry>,
    /// Names of candidates with no valid plan for the training mix.
    pub infeasible: Vec<String>,
}

impl TuneReport {
    /// The best candidate.
    ///
    /// # Panics
    ///
    /// Panics if no candidate was feasible.
    pub fn best(&self) -> &TuneEntry {
        &self.ranked[0]
    }
}

/// Runs the autotuner: filters candidates that cannot implement the
/// training mix, measures the rest (building a fresh relation per
/// candidate, as the paper does per benchmark run), and ranks them.
pub fn autotune(candidates: &[Candidate], cfg: &WorkloadConfig) -> TuneReport {
    let mut ranked = Vec::new();
    let mut infeasible = Vec::new();
    for cand in candidates {
        if !cand.supports(cfg.mix) {
            infeasible.push(cand.name());
            continue;
        }
        let graph: Arc<dyn GraphOps> = Arc::new(
            cand.build_graph()
                .expect("supports() implies the candidate builds"),
        );
        let result = run_workload(&graph, cfg);
        ranked.push(TuneEntry {
            candidate: cand.clone(),
            ops_per_sec: result.ops_per_sec,
        });
    }
    ranked.sort_by(|a, b| b.ops_per_sec.total_cmp(&a.ops_per_sec));
    TuneReport { ranked, infeasible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate, PlacementKind, Structure};
    use crate::workload::{KeyDistribution, OpMix, FIGURE5_MIXES};
    use relc_containers::ContainerKind;

    /// A miniature end-to-end autotune: a handful of candidates, a tiny
    /// workload, and sanity checks on the ranking.
    #[test]
    fn tiny_autotune_ranks_candidates() {
        let candidates = vec![
            Candidate {
                structure: Structure::Split,
                top: ContainerKind::HashMap,
                second: ContainerKind::HashMap,
                top2: None,
                second2: None,
                placement: PlacementKind::Coarse,
            },
            Candidate {
                structure: Structure::Split,
                top: ContainerKind::ConcurrentHashMap,
                second: ContainerKind::HashMap,
                top2: None,
                second2: None,
                placement: PlacementKind::Striped(64),
            },
            Candidate {
                structure: Structure::Stick,
                top: ContainerKind::ConcurrentHashMap,
                second: ContainerKind::HashMap,
                top2: None,
                second2: None,
                placement: PlacementKind::Speculative(16),
            },
        ];
        let cfg = WorkloadConfig {
            mix: FIGURE5_MIXES[1], // 35-35-20-10: uses predecessors
            threads: 4,
            ops_per_thread: 300,
            key_range: 32,
            distribution: KeyDistribution::Uniform,
            seed: 3,
        };
        let report = autotune(&candidates, &cfg);
        // The speculative stick cannot answer predecessor queries.
        assert_eq!(report.infeasible.len(), 1);
        assert!(report.infeasible[0].contains("stick"));
        assert_eq!(report.ranked.len(), 2);
        assert!(report.best().ops_per_sec >= report.ranked[1].ops_per_sec);
        assert!(!report.best().to_string().is_empty());
    }

    #[test]
    fn enumerated_space_autotunes_on_insert_only_mix() {
        // A fast smoke run over a few enumerated candidates.
        let mut space = enumerate(&[16]);
        space.truncate(6);
        let cfg = WorkloadConfig {
            mix: OpMix::new(0, 0, 50, 50),
            threads: 2,
            ops_per_thread: 200,
            key_range: 16,
            distribution: KeyDistribution::Uniform,
            seed: 11,
        };
        let report = autotune(&space, &cfg);
        assert!(!report.ranked.is_empty());
    }
}
