//! The candidate space the autotuner searches (§6.1–6.2).
//!
//! "To enumerate decompositions, the autotuner first chooses an adequate
//! decomposition structure ... Next, the autotuner chooses a well-formed
//! lock placement ... Finally the autotuner chooses a data structure
//! implementation for each edge. If the chosen lock placement serializes
//! access to an edge, the autotuner picks a non-concurrent container,
//! whereas if concurrent access to a container is permitted by the lock
//! placement then the autotuner chooses a concurrency-safe container."
//!
//! The paper generated 448 variants over the three Fig. 3 structures, lock
//! placements, stripe factors {1, 1024} and four container kinds; this
//! module reproduces that enumeration (the exact count differs slightly
//! because our placement validator and container menu are not bit-identical
//! to theirs, but the dimensions are the same).

use std::fmt;
use std::sync::Arc;

use relc::decomp::library::stick;
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, CoreError, Decomposition};
use relc_containers::ContainerKind;

use crate::calibrate::OpMix;
use crate::graph::RelationGraph;

/// The three Fig. 3 decomposition structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Fig. 3(a): a single src→dst→weight chain.
    Stick,
    /// Fig. 3(b): independent src-first and dst-first chains.
    Split,
    /// Fig. 3(c): src and dst indexes sharing the (src, dst) node.
    Diamond,
}

impl Structure {
    /// All structures.
    pub const ALL: [Structure; 3] = [Structure::Stick, Structure::Split, Structure::Diamond];
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Structure::Stick => f.write_str("stick"),
            Structure::Split => f.write_str("split"),
            Structure::Diamond => f.write_str("diamond"),
        }
    }
}

/// The lock placement families of §4.3–§4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// ψ1: one lock at the root.
    Coarse,
    /// ψ2: one lock per container (at each edge's source).
    Fine,
    /// ψ3: root edges striped across `k` locks.
    Striped(u32),
    /// ψ4: root edges speculative with `k` fallback stripes.
    Speculative(u32),
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementKind::Coarse => f.write_str("coarse"),
            PlacementKind::Fine => f.write_str("fine"),
            PlacementKind::Striped(k) => write!(f, "striped({k})"),
            PlacementKind::Speculative(k) => write!(f, "speculative({k})"),
        }
    }
}

/// One point of the search space: structure × containers × placement.
///
/// `top`/`second` choose the containers of the src-side branch (and the
/// whole stick); `top2`/`second2`, when set, choose the dst-side branch of
/// splits and diamonds independently — the per-edge freedom that brings the
/// space to the paper's scale.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Decomposition structure.
    pub structure: Structure,
    /// Container for the first-level (root) edges.
    pub top: ContainerKind,
    /// Container for the second-level edges.
    pub second: ContainerKind,
    /// Optional distinct first-level container for the dst branch.
    pub top2: Option<ContainerKind>,
    /// Optional distinct second-level container for the dst branch.
    pub second2: Option<ContainerKind>,
    /// Lock placement family.
    pub placement: PlacementKind,
}

/// A split with independently chosen containers per branch.
fn split_mixed(
    top: ContainerKind,
    second: ContainerKind,
    top2: ContainerKind,
    second2: ContainerKind,
) -> Arc<Decomposition> {
    let schema = relc_spec::library::graph_schema();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let u = b.node("u");
    let w = b.node("w");
    let x = b.node("x");
    let v = b.node("v");
    let y = b.node("y");
    let z = b.node("z");
    b.edge(root, u, &["src"], top).expect("cols");
    b.edge(u, w, &["dst"], second).expect("cols");
    b.edge(w, x, &["weight"], ContainerKind::Singleton)
        .expect("cols");
    b.edge(root, v, &["dst"], top2).expect("cols");
    b.edge(v, y, &["src"], second2).expect("cols");
    b.edge(y, z, &["weight"], ContainerKind::Singleton)
        .expect("cols");
    b.build().expect("adequate")
}

/// A diamond with independently chosen containers per branch (the shared
/// `(src, dst)` node's weight edge stays a singleton).
fn diamond_mixed(
    top: ContainerKind,
    second: ContainerKind,
    top2: ContainerKind,
    second2: ContainerKind,
) -> Arc<Decomposition> {
    let schema = relc_spec::library::graph_schema();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let x = b.node("x");
    let y = b.node("y");
    let w = b.node("w");
    let z = b.node("z");
    b.edge(root, x, &["src"], top).expect("cols");
    b.edge(root, y, &["dst"], top2).expect("cols");
    b.edge(x, w, &["dst"], second).expect("cols");
    b.edge(y, w, &["src"], second2).expect("cols");
    b.edge(w, z, &["weight"], ContainerKind::Singleton)
        .expect("cols");
    b.build().expect("adequate")
}

impl Candidate {
    /// Builds the decomposition for this candidate.
    pub fn decomposition(&self) -> Arc<Decomposition> {
        let top2 = self.top2.unwrap_or(self.top);
        let second2 = self.second2.unwrap_or(self.second);
        match self.structure {
            Structure::Stick => stick(self.top, self.second),
            Structure::Split => split_mixed(self.top, self.second, top2, second2),
            Structure::Diamond => diamond_mixed(self.top, self.second, top2, second2),
        }
    }

    /// Builds and validates the placement for this candidate.
    ///
    /// # Errors
    ///
    /// Propagates placement validation failures (such candidates are
    /// filtered out of the space).
    pub fn placement_for(&self, d: &Arc<Decomposition>) -> Result<Arc<LockPlacement>, CoreError> {
        match self.placement {
            PlacementKind::Coarse => LockPlacement::coarse(d),
            PlacementKind::Fine => LockPlacement::fine(d),
            PlacementKind::Striped(k) => LockPlacement::striped_root(d, k),
            PlacementKind::Speculative(k) => LockPlacement::speculative(d, k),
        }
    }

    /// Synthesizes the relation for this candidate.
    ///
    /// # Errors
    ///
    /// Propagates decomposition/placement validation failures.
    pub fn build(&self) -> Result<Arc<ConcurrentRelation>, CoreError> {
        let d = self.decomposition();
        let p = self.placement_for(&d)?;
        Ok(Arc::new(ConcurrentRelation::new(d, p)?))
    }

    /// Builds the candidate and wraps it in the graph interface.
    ///
    /// # Errors
    ///
    /// As for [`Candidate::build`].
    pub fn build_graph(&self) -> Result<RelationGraph, CoreError> {
        RelationGraph::new(self.build()?)
    }

    /// Whether this candidate's plans support every operation of `mix` —
    /// e.g. speculative placements cannot answer queries that must scan a
    /// speculative edge.
    pub fn supports(&self, mix: OpMix) -> bool {
        let Ok(rel) = self.build() else { return false };
        let schema = rel.schema().clone();
        let planner = rel.planner();
        let src = schema.column_set(&["src"]).expect("graph schema");
        let dst = schema.column_set(&["dst"]).expect("graph schema");
        let key = schema.column_set(&["src", "dst"]).expect("graph schema");
        let dw = schema.column_set(&["dst", "weight"]).expect("graph schema");
        let sw = schema.column_set(&["src", "weight"]).expect("graph schema");
        if mix.successors > 0 && planner.plan_query(src, dw).is_err() {
            return false;
        }
        if mix.predecessors > 0 && planner.plan_query(dst, sw).is_err() {
            return false;
        }
        if mix.inserts > 0 && planner.plan_insert(key).is_err() {
            return false;
        }
        if mix.removes > 0 && planner.plan_remove(key).is_err() {
            return false;
        }
        true
    }

    /// A short display name, e.g. `split/striped(1024)/ConcurrentHashMap+HashMap`
    /// (with ` | top2+second2` appended when the dst branch differs).
    pub fn name(&self) -> String {
        let mut s = format!(
            "{}/{}/{}+{}",
            self.structure, self.placement, self.top, self.second
        );
        if self.top2.is_some() || self.second2.is_some() {
            s.push_str(&format!(
                " | {}+{}",
                self.top2.unwrap_or(self.top),
                self.second2.unwrap_or(self.second)
            ));
        }
        s
    }
}

/// Enumerates the candidate space: 3 structures × container menu² ×
/// placements (coarse, fine, striped/speculative × stripe factors),
/// keeping only candidates whose placement validates *and* whose container
/// choices are consistent with the placement (the §6.1 rule quoted above).
pub fn enumerate(stripe_factors: &[u32]) -> Vec<Candidate> {
    let mut placements = vec![PlacementKind::Coarse, PlacementKind::Fine];
    for &k in stripe_factors {
        placements.push(PlacementKind::Striped(k));
        placements.push(PlacementKind::Speculative(k));
    }
    let mut out = Vec::new();
    for structure in Structure::ALL {
        // Two-branch structures also enumerate the dst branch independently
        // (the per-edge container freedom the paper's 448 variants include).
        let branch2: Vec<Option<(ContainerKind, ContainerKind)>> = match structure {
            Structure::Stick => vec![None],
            _ => ContainerKind::AUTOTUNE_MENU
                .iter()
                .flat_map(|&t2| {
                    ContainerKind::AUTOTUNE_MENU
                        .iter()
                        .map(move |&s2| Some((t2, s2)))
                })
                .collect(),
        };
        for top in ContainerKind::AUTOTUNE_MENU {
            for second in ContainerKind::AUTOTUNE_MENU {
                for b2 in &branch2 {
                    for &placement in &placements {
                        let cand = Candidate {
                            structure,
                            top,
                            second,
                            top2: b2.map(|(t, _)| t),
                            second2: b2.map(|(_, s)| s),
                            placement,
                        };
                        let d = cand.decomposition();
                        let Ok(p) = cand.placement_for(&d) else {
                            continue; // ill-formed placement for these containers
                        };
                        // §6.1 consistency rule: concurrent containers
                        // exactly where the placement admits concurrency.
                        let consistent = d.edges().all(|(e, em)| {
                            if em.container == ContainerKind::Singleton {
                                return true; // weight edges stay singleton cells
                            }
                            em.container.props().is_concurrency_safe()
                                == p.admits_container_concurrency(e)
                        });
                        if consistent {
                            out.push(cand);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::FIGURE5_MIXES;

    #[test]
    fn space_has_paper_scale() {
        // Paper: 448 variants over stripe factors {1, 1024}. Our validated,
        // consistency-filtered space over the same dimensions lands in the
        // same order of magnitude.
        let space = enumerate(&[1, 1024]);
        // 216 = stick 24 + (split + diamond) × 96: the same dimensions as
        // the paper's 448 (its extra factor came from further per-edge
        // placement knobs we fold into the placement families).
        assert!(
            space.len() >= 200,
            "space too small: {} candidates",
            space.len()
        );
        // Every candidate builds.
        for c in &space {
            c.build().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        }
    }

    #[test]
    fn consistency_rule_holds() {
        for c in enumerate(&[4]) {
            let d = c.decomposition();
            let p = c.placement_for(&d).unwrap();
            for (e, em) in d.edges() {
                if em.container == ContainerKind::Singleton {
                    continue;
                }
                assert_eq!(
                    em.container.props().is_concurrency_safe(),
                    p.admits_container_concurrency(e),
                    "{}: edge {:?}",
                    c.name(),
                    e
                );
            }
        }
    }

    #[test]
    fn coarse_candidates_use_non_concurrent_containers() {
        let space = enumerate(&[1]);
        for c in space
            .iter()
            .filter(|c| c.placement == PlacementKind::Coarse)
        {
            assert!(!c.top.props().is_concurrency_safe(), "{}", c.name());
            assert!(!c.second.props().is_concurrency_safe(), "{}", c.name());
        }
        // And striped candidates use a concurrent top-level container.
        let striped = enumerate(&[64]);
        for c in striped
            .iter()
            .filter(|c| matches!(c.placement, PlacementKind::Striped(_)))
        {
            assert!(c.top.props().is_concurrency_safe(), "{}", c.name());
        }
    }

    #[test]
    fn speculative_stick_rejects_predecessor_mixes() {
        let cand = Candidate {
            structure: Structure::Stick,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::HashMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Speculative(4),
        };
        // 70-0-20-10 has no predecessor queries: supported.
        assert!(cand.supports(FIGURE5_MIXES[0]));
        // 35-35-20-10 queries predecessors, which on a stick must scan the
        // speculative root edge: unsupported.
        assert!(!cand.supports(FIGURE5_MIXES[1]));
    }
}
