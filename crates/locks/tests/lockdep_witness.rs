//! The `lockdep` runtime witness: acquiring two locks in reversed order —
//! bypassing the executor's global sort via the engine's out-of-order try
//! path — must record a cycle in the process-global acquisition-order
//! graph, even though neither run ever blocks.

#![cfg(feature = "lockdep")]

use std::sync::Arc;

use relc_locks::{lockdep, LockMode, LockStats, PhysicalLock, TwoPhaseEngine};

#[test]
fn reversed_two_lock_acquisition_fires_the_witness() {
    lockdep::reset_graph();
    let stats = Arc::new(LockStats::new());
    let a = Arc::new(PhysicalLock::new());
    let b = Arc::new(PhysicalLock::new());
    // Distinctive class keys: low = (node 1, stripe 3), high = (node 7,
    // stripe 0) in the (node_pos << 32 | stripe) encoding the synthesized
    // tokens use.
    let k_lo: u64 = (1 << 32) | 3;
    let k_hi: u64 = 7 << 32;

    // Transaction 1 follows the global order: low then high.
    let mut t1: TwoPhaseEngine<u64> = TwoPhaseEngine::new(Arc::clone(&stats));
    t1.acquire(k_lo, &a, LockMode::Exclusive).unwrap();
    t1.acquire(k_hi, &b, LockMode::Exclusive).unwrap();
    t1.finish();
    assert!(
        lockdep::cycle_reports().is_empty(),
        "a single consistent order must not report a cycle"
    );

    // Transaction 2 bypasses the sort and takes the same two locks in
    // reversed order. Uncontended, the out-of-order try succeeds — the
    // stress run sails through — but the witness must still fire.
    let mut t2: TwoPhaseEngine<u64> = TwoPhaseEngine::new(stats);
    t2.acquire(k_hi, &b, LockMode::Exclusive).unwrap();
    t2.acquire(k_lo, &a, LockMode::Exclusive).unwrap();
    t2.finish();

    let reports = lockdep::cycle_reports();
    assert!(
        !reports.is_empty(),
        "reversed acquisition order must be reported as a potential deadlock"
    );
    assert!(
        reports[0].contains("0x100000003") && reports[0].contains("0x700000000"),
        "the report must name both lock classes: {reports:?}"
    );
}
