//! The ordered two-phase locking engine (§4.2, §5.1).
//!
//! Transactions acquire physical locks through a [`TwoPhaseEngine`], which
//! enforces:
//!
//! * **Two-phase discipline**: all acquisitions (growing phase) precede all
//!   releases (shrinking phase). Violations are programming errors in the
//!   query planner and panic.
//! * **Global lock order**: every lock has a totally ordered key `O`
//!   (node topological index, instance key tuple, stripe index — built by
//!   the synthesis runtime). In-order acquisitions may block; out-of-order
//!   acquisitions (which arise from speculative guesses and upgrades) only
//!   *try*; on failure the transaction must release everything and restart.
//!   Since no thread ever blocks while violating the order, the wait-for
//!   graph cannot contain a cycle: **deadlock freedom by construction**.
//! * **Upgrade hints**: a shared→exclusive upgrade cannot be granted in
//!   place (two upgraders would deadlock); the engine records the needed
//!   mode and fails the transaction, so the retry acquires exclusive access
//!   up front.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::lockdep::LockdepClass;
use crate::mode::LockMode;
use crate::physical::PhysicalLock;
use crate::stats::{LocalStats, LockStats};

/// Why a transaction must restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartReason {
    /// An out-of-order lock was contended; blocking would risk deadlock.
    OutOfOrderContention,
    /// A held shared lock needed upgrading to exclusive.
    UpgradeRequired,
    /// A speculative lock guess (§4.5) failed validation.
    SpeculationFailed,
}

/// Error demanding that the caller roll back and re-run the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MustRestart {
    /// The reason for the restart.
    pub reason: RestartReason,
}

impl fmt::Display for MustRestart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            RestartReason::OutOfOrderContention => {
                f.write_str("transaction must restart: out-of-order lock was contended")
            }
            RestartReason::UpgradeRequired => {
                f.write_str("transaction must restart: shared lock requires exclusive upgrade")
            }
            RestartReason::SpeculationFailed => {
                f.write_str("transaction must restart: speculative lock guess failed")
            }
        }
    }
}

impl std::error::Error for MustRestart {}

#[derive(Debug)]
struct Held {
    lock: Arc<PhysicalLock>,
    mode: LockMode,
    /// Earlier physical locks held under the same key: when a transaction
    /// removes a node instance and re-creates it (remove + insert of the
    /// same key, or undo compensation), the *key* is unchanged but the
    /// physical lock is a fresh object. The engine keeps the dead
    /// object's lock (transactions blocked on it must stay blocked until
    /// we release) and additionally acquires the live object's lock —
    /// treating the new object as covered by the old acquisition would
    /// publish an instance whose lock was never taken.
    shadowed: Vec<(Arc<PhysicalLock>, LockMode)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Growing,
    Shrinking,
}

/// A deadlock-free, ordered, two-phase lock manager for one transaction at a
/// time (create one per worker thread and reuse it across transactions).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use relc_locks::{TwoPhaseEngine, PhysicalLock, LockMode, LockStats};
///
/// let stats = Arc::new(LockStats::new());
/// let a = Arc::new(PhysicalLock::new());
/// let b = Arc::new(PhysicalLock::new());
///
/// let mut txn: TwoPhaseEngine<u32> = TwoPhaseEngine::new(stats);
/// txn.acquire(1, &a, LockMode::Shared)?;
/// txn.acquire(2, &b, LockMode::Exclusive)?;
/// assert_eq!(txn.held_count(), 2);
/// txn.finish(); // shrinking phase: release everything
/// # Ok::<(), relc_locks::MustRestart>(())
/// ```
#[derive(Debug)]
pub struct TwoPhaseEngine<O: Ord + Clone + fmt::Debug + LockdepClass> {
    /// Held locks, sorted by key. A sorted vector beats a tree here: the
    /// §5.1 protocol makes *in-order* acquisition the hot path, which is
    /// an O(1) append (batched sweeps append hundreds of presorted
    /// tokens); lookups are binary searches over contiguous memory; and
    /// out-of-order inserts — already the slow try-only path — pay one
    /// memmove.
    held: Vec<(O, Held)>,
    hints: BTreeMap<O, LockMode>,
    phase: Phase,
    stats: Arc<LockStats>,
    /// Per-transaction deltas; flushed to `stats` at finish/rollback so the
    /// lock hot path never touches shared cache lines.
    local: LocalStats,
    /// When set, even in-order acquisitions only *try* (see
    /// [`TwoPhaseEngine::set_try_only`]): a coordinating layer has declared
    /// that this engine's keys are no longer the globally greatest
    /// coordinates the whole (multi-engine) transaction holds, so blocking
    /// here could close a wait cycle through another engine. Reset at
    /// finish/rollback.
    try_only: bool,
}

impl<O: Ord + Clone + fmt::Debug + LockdepClass> TwoPhaseEngine<O> {
    /// Creates an idle engine reporting to `stats`.
    pub fn new(stats: Arc<LockStats>) -> Self {
        TwoPhaseEngine {
            held: Vec::new(),
            hints: BTreeMap::new(),
            phase: Phase::Growing,
            stats,
            local: LocalStats::default(),
            try_only: false,
        }
    }

    /// Demotes every future acquisition of this transaction — in-order or
    /// not — to a *try*: on contention the transaction restarts instead of
    /// blocking.
    ///
    /// The §5.1 deadlock-freedom argument lets a transaction block only
    /// while requesting a coordinate greater than everything it already
    /// holds. A layer that composes several engines into one transaction
    /// (one per shard of a sharded relation) extends the order
    /// lexicographically to (engine index, key); once the transaction has
    /// acquired anything under a *higher* engine index, no acquisition in
    /// this engine is in global order anymore, whatever its key — the
    /// composing layer flags that here. Cleared automatically by
    /// [`TwoPhaseEngine::finish`] and [`TwoPhaseEngine::rollback`].
    ///
    /// Compensation (undo-log replay, which must never restart) is safe
    /// under this flag: by the transaction layer's pre-acquisition
    /// invariant, every lock an inverse operation needs is either already
    /// held — a covered re-acquisition that returns before any try — or
    /// belongs to a freshly materialized, not-yet-published instance no
    /// other thread can hold, where the try always succeeds (the same
    /// argument the same-key replacement path above relies on).
    pub fn set_try_only(&mut self) {
        self.try_only = true;
    }

    /// Index of `key` in the sorted held vector: `Ok(i)` if held,
    /// `Err(i)` with its insertion point otherwise. The common in-order
    /// case (`key` greater than everything held) resolves with one
    /// comparison against the last element.
    fn held_index(&self, key: &O) -> Result<usize, usize> {
        match self.held.last() {
            None => Err(0),
            Some((max, _)) if key > max => Err(self.held.len()),
            Some((max, _)) if key == max => Ok(self.held.len() - 1),
            _ => self.held[..self.held.len() - 1].binary_search_by(|(k, _)| k.cmp(key)),
        }
    }

    /// Acquires `lock` (identified by the globally ordered `key`) in `mode`.
    ///
    /// In-order requests (`key` greater than every held key) block;
    /// out-of-order requests only try, and on contention the transaction
    /// must restart.
    ///
    /// # Errors
    ///
    /// [`MustRestart`] if the lock could not be acquired without risking
    /// deadlock; the caller must [`TwoPhaseEngine::rollback`], back off, and
    /// re-run the transaction. Mode hints recorded by failed upgrades are
    /// applied automatically on the retry.
    ///
    /// # Panics
    ///
    /// Panics if called in the shrinking phase (a query-planner bug: plans
    /// are two-phase by construction).
    pub fn acquire(
        &mut self,
        key: O,
        lock: &Arc<PhysicalLock>,
        mode: LockMode,
    ) -> Result<(), MustRestart> {
        assert!(
            self.phase == Phase::Growing,
            "two-phase violation: acquire after release (planner bug)"
        );
        let mode = match self.hints.get(&key) {
            Some(hint) => mode.join(*hint),
            None => mode,
        };
        let pos = match self.held_index(&key) {
            Ok(i) => {
                let held = &mut self.held[i].1;
                if Arc::ptr_eq(&held.lock, lock) {
                    if held.mode.covers(mode) {
                        return Ok(());
                    }
                    // Upgrade required: remember and restart.
                    self.hints.insert(key, LockMode::Exclusive);
                    self.local.upgrades += 1;
                    self.local.restarts += 1;
                    return Err(MustRestart {
                        reason: RestartReason::UpgradeRequired,
                    });
                }
                // Same key, different physical lock: the instance was
                // replaced within this transaction (see `Held::shadowed`).
                // Acquire the new object's lock — try-only, since the key
                // sits at an arbitrary point of the held order. Replacement
                // objects are unpublished at this point (their subtree
                // links are written after their locks are taken), so the
                // try succeeds except under protocol bugs.
                let mode = mode.join(held.mode);
                if !lock.try_acquire(mode) {
                    self.local.contended += 1;
                    self.local.restarts += 1;
                    return Err(MustRestart {
                        reason: RestartReason::OutOfOrderContention,
                    });
                }
                self.local.acquisitions += 1;
                let old_lock = std::mem::replace(&mut held.lock, Arc::clone(lock));
                let old_mode = std::mem::replace(&mut held.mode, mode);
                held.shadowed.push((old_lock, old_mode));
                return Ok(());
            }
            Err(pos) => pos,
        };
        // Feed the lockdep witness before we can possibly block: a real
        // deadlock would otherwise never get its edge recorded.
        #[cfg(feature = "lockdep")]
        crate::lockdep::record_acquisition(
            self.held.iter().map(|(k, _)| k.lockdep_class()),
            key.lockdep_class(),
        );
        let in_order = pos == self.held.len() && !self.try_only;
        if in_order {
            lock.acquire(mode);
        } else if !lock.try_acquire(mode) {
            self.local.contended += 1;
            self.local.restarts += 1;
            return Err(MustRestart {
                reason: RestartReason::OutOfOrderContention,
            });
        }
        self.local.acquisitions += 1;
        self.held.insert(
            pos,
            (
                key,
                Held {
                    lock: Arc::clone(lock),
                    mode,
                    shadowed: Vec::new(),
                },
            ),
        );
        Ok(())
    }

    /// The mode in which `key` is currently held, if any.
    pub fn holds(&self, key: &O) -> Option<LockMode> {
        self.held_index(key).ok().map(|i| self.held[i].1.mode)
    }

    /// Number of currently held locks.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Records a mode hint for a future retry of this transaction (used by
    /// the speculative protocol when it discovers it will need stronger
    /// access).
    pub fn hint(&mut self, key: O, mode: LockMode) {
        let entry = self.hints.entry(key).or_insert(mode);
        *entry = entry.join(mode);
    }

    /// Fails the transaction with [`RestartReason::SpeculationFailed`],
    /// recording the statistic. Convenience for the speculation protocol.
    pub fn fail_speculation(&mut self) -> MustRestart {
        self.local.speculation_failures += 1;
        self.local.restarts += 1;
        MustRestart {
            reason: RestartReason::SpeculationFailed,
        }
    }

    /// Releases one lock, entering the shrinking phase: no further
    /// acquisitions are allowed until [`TwoPhaseEngine::finish`] or
    /// [`TwoPhaseEngine::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if `key` is not held.
    pub fn unlock(&mut self, key: &O) {
        let (_, held) = match self.held_index(key) {
            Ok(i) => self.held.remove(i),
            Err(_) => panic!("unlock of lock {key:?} that is not held"),
        };
        self.phase = Phase::Shrinking;
        // SAFETY: `held` records the exact modes we acquired.
        unsafe {
            held.lock.release(held.mode);
            for (lock, mode) in held.shadowed {
                lock.release(mode);
            }
        }
    }

    /// Commits the transaction: releases all remaining locks, clears mode
    /// hints, counts a commit, and resets to the growing phase for the next
    /// transaction.
    pub fn finish(&mut self) {
        self.local.commits += 1;
        self.release_all();
        self.hints.clear();
        self.phase = Phase::Growing;
        self.try_only = false;
        self.stats.flush(&mut self.local);
    }

    /// Rolls back after a [`MustRestart`]: releases all locks but *keeps*
    /// mode hints so the retry acquires adequate modes up front, and
    /// resets to growing. The conflict itself was already counted (in
    /// `restarts`) when the restart was issued; this adds nothing, so
    /// retry storms and application aborts stay distinguishable in the
    /// statistics.
    pub fn rollback(&mut self) {
        self.release_all();
        self.phase = Phase::Growing;
        self.try_only = false;
        self.stats.flush(&mut self.local);
    }

    /// Rolls back an explicitly aborted transaction (an application-level
    /// abort, not a conflict): like [`TwoPhaseEngine::rollback`], but
    /// counted in the `user_rollbacks` statistic.
    pub fn rollback_user(&mut self) {
        self.local.user_rollbacks += 1;
        self.rollback();
    }

    /// Whether the transaction has entered the shrinking phase (released a
    /// lock without committing). Multi-operation transaction layers use
    /// this to assert that every operation runs with two-phase discipline
    /// intact.
    pub fn in_shrinking_phase(&self) -> bool {
        self.phase == Phase::Shrinking
    }

    fn release_all(&mut self) {
        for (_, held) in self.held.drain(..) {
            // SAFETY: `held` records the exact modes we acquired.
            unsafe {
                held.lock.release(held.mode);
                for (lock, mode) in held.shadowed {
                    lock.release(mode);
                }
            }
        }
    }

    /// The statistics sink shared by this engine.
    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }
}

impl<O: Ord + Clone + fmt::Debug + LockdepClass> Drop for TwoPhaseEngine<O> {
    fn drop(&mut self) {
        self.release_all();
        self.stats.flush(&mut self.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::time::Duration;

    fn engine() -> TwoPhaseEngine<u32> {
        TwoPhaseEngine::new(Arc::new(LockStats::new()))
    }

    fn lock() -> Arc<PhysicalLock> {
        Arc::new(PhysicalLock::new())
    }

    #[test]
    fn in_order_acquire_and_finish() {
        let (a, b) = (lock(), lock());
        let mut e = engine();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.acquire(2, &b, LockMode::Exclusive).unwrap();
        assert_eq!(e.holds(&1), Some(LockMode::Shared));
        assert_eq!(e.holds(&2), Some(LockMode::Exclusive));
        e.finish();
        assert_eq!(e.held_count(), 0);
        // Locks are actually free again.
        assert!(a.try_acquire(LockMode::Exclusive));
        unsafe { a.release(LockMode::Exclusive) };
    }

    #[test]
    fn reacquire_covered_is_noop() {
        let a = lock();
        let mut e = engine();
        e.acquire(1, &a, LockMode::Exclusive).unwrap();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.acquire(1, &a, LockMode::Exclusive).unwrap();
        assert_eq!(e.held_count(), 1);
        e.finish(); // stats flush at commit
        assert_eq!(e.stats().snapshot().acquisitions, 1);
    }

    #[test]
    fn upgrade_restarts_with_hint() {
        let a = lock();
        let mut e = engine();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        let err = e.acquire(1, &a, LockMode::Exclusive).unwrap_err();
        assert_eq!(err.reason, RestartReason::UpgradeRequired);
        e.rollback();
        // Retry: the hint upgrades the first acquisition to exclusive.
        e.acquire(1, &a, LockMode::Shared).unwrap();
        assert_eq!(e.holds(&1), Some(LockMode::Exclusive));
        e.acquire(1, &a, LockMode::Exclusive).unwrap();
        e.finish();
        assert_eq!(e.stats().snapshot().upgrades, 1);
    }

    #[test]
    fn finish_clears_hints_rollback_keeps_them() {
        let a = lock();
        let mut e = engine();
        e.hint(1, LockMode::Exclusive);
        e.rollback();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        assert_eq!(
            e.holds(&1),
            Some(LockMode::Exclusive),
            "hint survives rollback"
        );
        e.finish();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        assert_eq!(e.holds(&1), Some(LockMode::Shared), "finish clears hints");
        e.finish();
    }

    #[test]
    fn replaced_lock_object_under_same_key_is_really_acquired() {
        // A transaction that unlinks an instance and re-creates it holds
        // the same *key* but must also hold the fresh object's lock —
        // otherwise the new instance is published unlocked.
        let (old, new) = (lock(), lock());
        let mut e = engine();
        e.acquire(1, &old, LockMode::Exclusive).unwrap();
        e.acquire(1, &new, LockMode::Exclusive).unwrap();
        assert_eq!(e.held_count(), 1, "one key");
        // Both objects are exclusively held.
        assert!(!old.try_acquire(LockMode::Shared));
        assert!(!new.try_acquire(LockMode::Shared));
        // Covered re-acquisition of the live object is a no-op.
        e.acquire(1, &new, LockMode::Shared).unwrap();
        e.finish();
        // Both released at commit.
        assert!(old.try_acquire(LockMode::Exclusive));
        assert!(new.try_acquire(LockMode::Exclusive));
        unsafe {
            old.release(LockMode::Exclusive);
            new.release(LockMode::Exclusive);
        }

        // A contended replacement object forces a restart (never blocks).
        let (a, b) = (lock(), lock());
        assert!(b.try_acquire(LockMode::Shared)); // someone else reads b
        let mut e = engine();
        e.acquire(7, &a, LockMode::Exclusive).unwrap();
        let err = e.acquire(7, &b, LockMode::Exclusive).unwrap_err();
        assert_eq!(err.reason, RestartReason::OutOfOrderContention);
        e.rollback();
        unsafe { b.release(LockMode::Shared) };
    }

    #[test]
    fn out_of_order_contention_restarts() {
        let (a, b) = (lock(), lock());
        // Another party holds `a` exclusively.
        assert!(a.try_acquire(LockMode::Exclusive));
        let mut e = engine();
        e.acquire(2, &b, LockMode::Shared).unwrap();
        // Key 1 < max held key 2: out of order, must not block.
        let start = std::time::Instant::now();
        let err = e.acquire(1, &a, LockMode::Shared).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "must not block"
        );
        assert_eq!(err.reason, RestartReason::OutOfOrderContention);
        e.rollback();
        unsafe { a.release(LockMode::Exclusive) };
        // Retry in order now succeeds.
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.acquire(2, &b, LockMode::Shared).unwrap();
        e.finish();
    }

    #[test]
    fn try_only_never_blocks_and_resets_on_release() {
        let (a, b) = (lock(), lock());
        // Another party holds `b` exclusively.
        assert!(b.try_acquire(LockMode::Exclusive));
        let mut e = engine();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.set_try_only();
        // Key 2 > max held key 1 — in order, but try-only must not block.
        let start = std::time::Instant::now();
        let err = e.acquire(2, &b, LockMode::Shared).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "must not block"
        );
        assert_eq!(err.reason, RestartReason::OutOfOrderContention);
        e.rollback();
        unsafe { b.release(LockMode::Exclusive) };
        // Rollback cleared the flag: uncontended in-order blocking
        // acquisition works again, and try-only succeeds when free.
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.set_try_only();
        e.acquire(2, &b, LockMode::Exclusive).unwrap();
        e.finish();
        e.acquire(2, &b, LockMode::Exclusive).unwrap();
        e.finish();
    }

    #[test]
    fn out_of_order_uncontended_succeeds() {
        let (a, b) = (lock(), lock());
        let mut e = engine();
        e.acquire(2, &b, LockMode::Shared).unwrap();
        e.acquire(1, &a, LockMode::Exclusive).unwrap();
        assert_eq!(e.held_count(), 2);
        e.finish();
    }

    #[test]
    #[should_panic(expected = "two-phase violation")]
    fn acquire_after_unlock_panics() {
        let (a, b) = (lock(), lock());
        let mut e = engine();
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.unlock(&1);
        let _ = e.acquire(2, &b, LockMode::Shared);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn unlock_unheld_panics() {
        let mut e = engine();
        e.acquire(1, &lock(), LockMode::Shared).unwrap();
        e.unlock(&99);
    }

    #[test]
    fn drop_releases_held_locks() {
        let a = lock();
        {
            let mut e = engine();
            e.acquire(1, &a, LockMode::Exclusive).unwrap();
        }
        assert!(a.try_acquire(LockMode::Exclusive));
        unsafe { a.release(LockMode::Exclusive) };
    }

    #[test]
    fn restart_and_user_rollbacks_are_distinguished() {
        let a = lock();
        let mut e = engine();
        // Conflict-driven restart: counted in `restarts`, not in
        // `user_rollbacks`.
        e.acquire(1, &a, LockMode::Shared).unwrap();
        let _ = e.acquire(1, &a, LockMode::Exclusive).unwrap_err();
        e.rollback();
        // Application abort: counted in `user_rollbacks` only.
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.rollback_user();
        let snap = e.stats().snapshot();
        assert_eq!(snap.restarts, 1);
        assert_eq!(snap.user_rollbacks, 1);
        assert!(snap.to_string().contains("user-rollbacks=1"), "{snap}");
    }

    #[test]
    fn speculation_failure_is_counted() {
        let mut e = engine();
        let err = e.fail_speculation();
        assert_eq!(err.reason, RestartReason::SpeculationFailed);
        e.rollback(); // stats flush at abort
        assert_eq!(e.stats().snapshot().speculation_failures, 1);
        assert_eq!(e.stats().snapshot().restarts, 1);
    }

    /// End-to-end deadlock-freedom stress: many threads run transactions
    /// over a shared pool of locks. Each transaction wants a random subset
    /// in a random *request* order; the engine's order/try/restart protocol
    /// must guarantee global progress. A watchdog fails the test on a hang.
    #[test]
    fn stress_no_deadlock_under_adversarial_orders() {
        const LOCKS: usize = 12;
        const THREADS: usize = 8;
        const TXNS: usize = 300;

        let locks: Arc<Vec<Arc<PhysicalLock>>> = Arc::new((0..LOCKS).map(|_| lock()).collect());
        let barrier = Arc::new(Barrier::new(THREADS));
        let stats = Arc::new(LockStats::new());

        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let locks = locks.clone();
                let barrier = barrier.clone();
                let stats = stats.clone();
                std::thread::spawn(move || {
                    let mut e: TwoPhaseEngine<usize> = TwoPhaseEngine::new(stats);
                    let mut rng = (tid as u64 + 1) * 0x9e37_79b9;
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    barrier.wait();
                    for _ in 0..TXNS {
                        // Pick 3 distinct lock indices in arbitrary order.
                        let mut want = [0usize; 3];
                        for w in &mut want {
                            *w = (next() % LOCKS as u64) as usize;
                        }
                        let mut backoff = crate::backoff::Backoff::new();
                        'txn: loop {
                            for &w in &want {
                                let mode = if next() % 2 == 0 {
                                    LockMode::Shared
                                } else {
                                    LockMode::Exclusive
                                };
                                if e.acquire(w, &locks[w], mode).is_err() {
                                    e.rollback();
                                    backoff.wait();
                                    continue 'txn;
                                }
                            }
                            // "Commit".
                            e.finish();
                            break;
                        }
                    }
                })
            })
            .collect();

        // Watchdog: the whole stress must complete well within 60s.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for h in handles {
                h.join().unwrap();
            }
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(60))
            .expect("deadlock: stress test did not complete");
    }
}
