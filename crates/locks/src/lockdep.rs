//! Runtime lock-ordering witness (`lockdep` feature).
//!
//! The static analyzer (`relc::analysis`) proves the *planned* acquisition
//! order sound; this module watches what the engine *actually does*. Every
//! acquisition is reported against the set of locks the transaction
//! already holds, keyed by a coarse **lockdep class** — for synthesized
//! relations, the `(node position, stripe)` pair of the lock token, so all
//! instances of one decomposition level share a class. The classes form a
//! process-global acquisition-order graph: an edge `a → b` means "some
//! transaction acquired a class-`b` lock while holding a class-`a` lock".
//! A cycle in that graph is a *potential* deadlock — two transactions
//! interleaving the two orders could block each other — even if no stress
//! run ever manifests it. Cycles are detected incrementally at edge
//! insertion and recorded (not panicked), so a test harness can assert on
//! [`cycle_reports`] after driving the workload.
//!
//! The graph deliberately ignores whether an acquisition blocked or only
//! *tried*: a try-only inversion cannot deadlock by itself (nobody blocks),
//! but it witnesses an ordering the engine believes is out of line, and a
//! second transaction running the opposite order is exactly the §5.1
//! near-miss this instrument exists to catch.
//!
//! Everything here is debug tooling: the feature is off by default and the
//! engine hot path compiles to nothing without it.

/// The coarse equivalence class a lock key maps to in the acquisition-order
/// graph.
///
/// This trait is *always* available (the engine's key type must implement
/// it so the `lockdep`-gated hook can be compiled in without changing
/// bounds); the graph itself only exists under the feature.
pub trait LockdepClass {
    /// A stable class id: keys that should share ordering constraints must
    /// collapse to the same value (e.g. every instance of one
    /// decomposition level × stripe).
    fn lockdep_class(&self) -> u64;
}

macro_rules! impl_lockdep_for_uint {
    ($($t:ty),*) => {
        $(impl LockdepClass for $t {
            fn lockdep_class(&self) -> u64 {
                *self as u64
            }
        })*
    };
}

impl_lockdep_for_uint!(u8, u16, u32, u64, usize);

#[cfg(feature = "lockdep")]
mod graph {
    use std::collections::{HashMap, HashSet};
    use std::sync::OnceLock;

    use parking_lot::Mutex;

    #[derive(Default)]
    struct Graph {
        /// Adjacency: class → classes acquired while it was held.
        after: HashMap<u64, Vec<u64>>,
        /// Edge dedup, so each ordered class pair is analyzed once.
        edges: HashSet<(u64, u64)>,
        /// Human-readable cycle descriptions, in detection order.
        reports: Vec<String>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    impl Graph {
        /// Is `to` reachable from `from` along recorded edges?
        fn reachable(&self, from: u64, to: u64) -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(v) = stack.pop() {
                if v == to {
                    return true;
                }
                if !seen.insert(v) {
                    continue;
                }
                if let Some(next) = self.after.get(&v) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        }
    }

    /// Records one acquisition of class `new` while the classes in `held`
    /// are held, inserting the `held → new` order edges and checking each
    /// fresh edge for a cycle.
    pub fn record_acquisition(held: impl Iterator<Item = u64>, new: u64) {
        let mut g = graph().lock();
        for h in held {
            if h == new || !g.edges.insert((h, new)) {
                continue;
            }
            // Inserting h → new closes a cycle iff h was already
            // reachable from new.
            if g.reachable(new, h) {
                g.reports.push(format!(
                    "lock-order cycle: class {h:#x} held while acquiring class \
                     {new:#x}, but class {h:#x} is also acquired after class \
                     {new:#x} on another path"
                ));
            }
            g.after.entry(h).or_default().push(new);
        }
    }

    /// Every cycle detected since the last [`reset_graph`], in detection
    /// order. Empty means the observed acquisition orders are consistent
    /// with *some* global total order.
    pub fn cycle_reports() -> Vec<String> {
        graph().lock().reports.clone()
    }

    /// Clears the process-global graph (test isolation).
    pub fn reset_graph() {
        let mut g = graph().lock();
        g.after.clear();
        g.edges.clear();
        g.reports.clear();
    }
}

#[cfg(feature = "lockdep")]
pub use graph::{cycle_reports, record_acquisition, reset_graph};
