//! The global commit clock and snapshot registry backing MVCC reads.
//!
//! Writers keep the paper's two-phase locking pipeline untouched; what
//! this module adds is a *publication order* at commit: every version a
//! transaction wrote shares one [`CommitStamp`], and
//! [`CommitClock::commit`] (called with the transaction's locks still
//! held, strictly before the engine releases them) allocates the commit
//! timestamp, stores it into the stamp — making every version of the
//! transaction visible atomically — and then advances the *visible*
//! watermark gap-free. Snapshot readers capture `visible` as their
//! snapshot timestamp: every version stamped `≤ visible` is fully
//! published, and no later committer can ever receive a smaller
//! timestamp, so a snapshot is a consistent cut without any locking.
//!
//! Like the epoch collector the clock is process-global: one timestamp
//! domain serves every relation (and every shard), which is what makes a
//! cross-shard fan-out read at a single snapshot trivially consistent.
//!
//! # Why two counters
//!
//! `alloc` hands out timestamps; `visible` publishes them *in order*. A
//! committer stores its stamp first and only then waits for
//! `visible == ts - 1` before bumping `visible` to `ts`. A reader that
//! captures `snap = visible` therefore knows that every transaction with
//! timestamp `≤ snap` has already stamped all of its versions — there are
//! no "holes" below the watermark, so "newest version `≤ snap`" is
//! well-defined and torn-free.
//!
//! # Why registration validates
//!
//! [`SnapshotRegistry::register`] publishes the reader's snapshot into a
//! per-registration slot and then re-reads `visible`; if the watermark moved,
//! it retries with the newer value. This closes the classic race against
//! [`SnapshotRegistry::min_active`]: a committer that scanned the slots
//! *before* the reader's store published its snapshot must — in the
//! `SeqCst` total order — have advanced `visible` before the reader's
//! re-read, so the reader observes the change and re-registers at a
//! timestamp the committer's retirement decision already covers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// The timestamp value of a not-yet-committed [`CommitStamp`]: larger
/// than every possible snapshot, so tentative versions are invisible to
/// all readers.
pub const TENTATIVE_TS: u64 = u64::MAX;

/// One transaction attempt's shared commit timestamp.
///
/// Every version written by the attempt holds an `Arc` of the same
/// stamp; committing is a single atomic store, which is what makes all
/// of a transaction's versions become visible at once (no torn
/// multi-entry visibility). Aborted attempts commit their stamp too —
/// after compensation, so the stamped state equals the pre-transaction
/// state — because a forever-tentative head would shadow the entry from
/// writers' version chains ever becoming visible in order.
#[derive(Debug)]
pub struct CommitStamp(AtomicU64);

impl CommitStamp {
    /// A fresh, tentative stamp.
    pub fn new() -> Arc<Self> {
        Arc::new(CommitStamp(AtomicU64::new(TENTATIVE_TS)))
    }

    /// The current value: [`TENTATIVE_TS`] until committed.
    pub fn load(&self) -> u64 {
        self.0.load(SeqCst)
    }

    /// Whether the stamp has been committed.
    pub fn is_committed(&self) -> bool {
        self.load() != TENTATIVE_TS
    }
}

/// The process-global commit timestamp authority. See the
/// [module docs](self).
#[derive(Debug)]
pub struct CommitClock {
    /// Last timestamp handed out.
    alloc: AtomicU64,
    /// Largest timestamp whose transaction (and all before it) has fully
    /// stamped its versions.
    visible: AtomicU64,
    /// Committers currently parked waiting for their predecessor to
    /// publish. Checked by every publisher so the uncontended commit path
    /// stays a pair of atomic ops — the wake mutex is only touched when a
    /// waiter actually parked.
    parked: AtomicUsize,
    /// Guards the park/wake handshake (never held across the publication
    /// itself).
    park_mutex: Mutex<()>,
    /// Signalled after every `visible` advance while `parked > 0`.
    park_cv: std::sync::Condvar,
}

/// Publication-wait spin policy: busy-spin this many iterations first
/// (the predecessor's window is a handful of straight-line instructions),
/// then yield the CPU this many times (the predecessor is probably
/// runnable on another core), then park on the condvar (the predecessor
/// is descheduled — spinning would burn exactly the CPU it needs).
const PUBLISH_SPINS: u32 = 64;
const PUBLISH_YIELDS: u32 = 128;

impl CommitClock {
    fn new() -> Self {
        CommitClock {
            alloc: AtomicU64::new(0),
            visible: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            park_mutex: Mutex::new(()),
            park_cv: std::sync::Condvar::new(),
        }
    }

    /// The current snapshot watermark: every version stamped `≤ now()` is
    /// fully published.
    pub fn now(&self) -> u64 {
        self.visible.load(SeqCst)
    }

    /// Commits `stamp`: allocates the next timestamp, stores it into the
    /// stamp (atomically publishing every version that shares it), and
    /// advances the visible watermark gap-free. Must be called while the
    /// committing transaction still holds its locks — that ordering is
    /// what lets a snapshot reader treat "stamp ≤ snap" as "fully
    /// committed before my snapshot".
    ///
    /// Returns the allocated timestamp.
    ///
    /// # Oversubscription hazard
    ///
    /// Publication is strictly in allocation order, so a committer
    /// descheduled between its `alloc` fetch-add and its `visible` store
    /// convoys every later committer (and rollback, which stamps too)
    /// until the scheduler runs it again. The window is a handful of
    /// straight-line instructions — no locks, no I/O — so in practice it
    /// closes in nanoseconds, and because each committer only ever waits
    /// on *smaller* timestamps the wait-for order is acyclic (no
    /// deadlock). On a heavily oversubscribed box (threads ≫ cores) the
    /// stall is scheduler-bound, not instruction-bound, so the wait is
    /// **bounded**: [`PUBLISH_SPINS`] busy iterations, then
    /// [`PUBLISH_YIELDS`] yields, then the waiter *parks* on a condvar
    /// and is woken by whichever publisher advances `visible` — parked
    /// waiters consume no CPU, which is exactly what lets the descheduled
    /// predecessor run. The uncontended path never touches the mutex:
    /// publishers only take it when `parked > 0`.
    pub fn commit(&self, stamp: &CommitStamp) -> u64 {
        let ts = self.alloc.fetch_add(1, SeqCst) + 1;
        stamp.0.store(ts, SeqCst);
        let mut spins = 0u32;
        while self.visible.load(SeqCst) != ts - 1 {
            spins += 1;
            if spins <= PUBLISH_SPINS {
                std::hint::spin_loop();
            } else if spins <= PUBLISH_SPINS + PUBLISH_YIELDS {
                std::thread::yield_now();
            } else {
                self.park_until_predecessor(ts);
                break;
            }
        }
        self.visible.store(ts, SeqCst);
        if self.parked.load(SeqCst) > 0 {
            // Take-and-drop the mutex before notifying: a waiter that has
            // incremented `parked` but not yet blocked is still inside the
            // critical section re-checking `visible`, so it either sees
            // our store or is already blocked when the notification fires
            // — never a lost wakeup.
            drop(self.park_mutex.lock().unwrap_or_else(|e| e.into_inner()));
            self.park_cv.notify_all();
        }
        ts
    }

    /// Advances the clock to at least `ts` without publishing any
    /// versions — crash recovery's re-seed: after replaying a log whose
    /// highest record carries stamp `ts`, the clock must resume
    /// *strictly above* it so post-recovery commits never reuse a
    /// replayed timestamp. A no-op if the clock already passed `ts`.
    ///
    /// Only takes effect from a quiescent state (`alloc == visible`,
    /// i.e. no committer between its allocation and its publication):
    /// jumping `alloc` while a committer is in flight would strand that
    /// committer waiting for a predecessor watermark that no longer
    /// exists. Recovery runs before the relation is shared, so the loop
    /// terminates as soon as concurrent committers (of *other*
    /// relations on the same process-global clock) drain.
    pub fn advance_to(&self, ts: u64) {
        loop {
            let visible = self.visible.load(SeqCst);
            if visible >= ts {
                return;
            }
            let alloc = self.alloc.load(SeqCst);
            if alloc != visible {
                // In-flight committers: let them publish, then retry.
                std::thread::yield_now();
                continue;
            }
            if self
                .alloc
                .compare_exchange(visible, ts, SeqCst, SeqCst)
                .is_err()
            {
                continue;
            }
            self.visible.store(ts, SeqCst);
            if self.parked.load(SeqCst) > 0 {
                drop(self.park_mutex.lock().unwrap_or_else(|e| e.into_inner()));
                self.park_cv.notify_all();
            }
            return;
        }
    }

    /// Blocks until `visible == ts - 1`. The timeout is belt-and-braces:
    /// a publisher that raced past the `parked` increment re-checks at
    /// most 1 ms later, keeping the wait bounded by the scheduler rather
    /// than by luck.
    #[cold]
    fn park_until_predecessor(&self, ts: u64) {
        let mut guard = self.park_mutex.lock().unwrap_or_else(|e| e.into_inner());
        self.parked.fetch_add(1, SeqCst);
        while self.visible.load(SeqCst) != ts - 1 {
            guard = self
                .park_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        self.parked.fetch_sub(1, SeqCst);
    }
}

/// The process-global clock instance.
pub fn commit_clock() -> &'static CommitClock {
    static CLOCK: OnceLock<CommitClock> = OnceLock::new();
    CLOCK.get_or_init(CommitClock::new)
}

/// An active-snapshot slot: [`TENTATIVE_TS`] when idle, the reader's
/// snapshot timestamp while a read transaction is running.
type Slot = Arc<AtomicU64>;

/// Registry of in-flight snapshot readers, consulted by committers to
/// decide how far version chains may be truncated
/// ([`SnapshotRegistry::min_active`]).
///
/// Registries are **per relation**: each `ConcurrentRelation` owns one
/// (shards of one sharded relation share one), so a long-lived reader
/// pins version retirement only for the relation it is actually reading
/// — an idle reader on relation A must not make relation B's dead
/// version cells immortal. The [`snapshot_registry`] process-global
/// instance remains for callers without a relation at hand.
///
/// Every registration claims its **own** slot — nested registrations on
/// one thread (a `relB.query()` inside `relA.read_transaction(..)`
/// routes through `read_transaction` again) therefore occupy distinct
/// slots and can never clobber each other, regardless of drop order.
/// Released slot indexes return to the owning registry's free list, so
/// the slot table stays as small as the registry's peak reader
/// concurrency.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    slots: RwLock<Vec<Slot>>,
    free: Mutex<Vec<usize>>,
}

/// The process-global snapshot registry (for registrations not tied to
/// any particular relation).
pub fn snapshot_registry() -> &'static Arc<SnapshotRegistry> {
    static REGISTRY: OnceLock<Arc<SnapshotRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(SnapshotRegistry::new)
}

/// RAII registration of one snapshot read; dropping it marks the slot
/// idle again and returns it to the owning registry's free list.
#[derive(Debug)]
pub struct SnapshotGuard {
    owner: Arc<SnapshotRegistry>,
    slot: Slot,
    index: usize,
    snap: u64,
}

impl SnapshotGuard {
    /// The registered snapshot timestamp.
    pub fn snap(&self) -> u64 {
        self.snap
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.slot.store(TENTATIVE_TS, SeqCst);
        self.owner.free.lock().expect("free list").push(self.index);
    }
}

impl SnapshotRegistry {
    /// Creates a fresh registry (one per relation; see the type docs).
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<SnapshotRegistry> {
        Arc::new(SnapshotRegistry::default())
    }

    /// Claims an idle slot: the free list first, then a fresh slot.
    /// Distinct live registrations always hold distinct slots.
    fn claim_slot(&self) -> (Slot, usize) {
        if let Some(index) = self.free.lock().expect("free list").pop() {
            let slot = Arc::clone(&self.slots.read().expect("slots")[index]);
            return (slot, index);
        }
        let mut slots = self.slots.write().expect("slots");
        let index = slots.len();
        let slot = Arc::new(AtomicU64::new(TENTATIVE_TS));
        slots.push(Arc::clone(&slot));
        (slot, index)
    }

    /// Registers the calling thread as reading at the clock's current
    /// watermark, using publish-then-validate (see the [module docs](self))
    /// so a concurrent committer's [`SnapshotRegistry::min_active`] can
    /// never miss the registration.
    pub fn register(self: &Arc<Self>, clock: &CommitClock) -> SnapshotGuard {
        let (slot, index) = self.claim_slot();
        loop {
            let snap = clock.now();
            slot.store(snap, SeqCst);
            if clock.now() == snap {
                return SnapshotGuard {
                    owner: Arc::clone(self),
                    slot,
                    index,
                    snap,
                };
            }
            // The watermark moved between publish and validate: retry so
            // the registered value is never below what a concurrent
            // truncation decision assumed.
        }
    }

    /// The oldest snapshot any in-flight reader of **this registry**
    /// holds, or the clock's current watermark when no reader is active.
    /// Versions strictly older than the newest version `≤ min_active` of
    /// their chain can never be observed again and are safe to retire;
    /// entries whose newest version is a tombstone stamped `≤ min_active`
    /// are invisible to every present and future reader and are safe to
    /// unlink.
    pub fn min_active(&self, clock: &CommitClock) -> u64 {
        // Read the watermark FIRST: a reader that registers after this
        // load observes (SeqCst) a visible ≥ our value, so its snapshot
        // is ≥ the bound we return even though we never saw its slot.
        let now = clock.now();
        let slots = self.slots.read().expect("slots");
        slots
            .iter()
            .map(|s| s.load(SeqCst))
            .min()
            .map_or(now, |m| m.min(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn stamps_publish_in_order() {
        let clock = commit_clock();
        let before = clock.now();
        let s1 = CommitStamp::new();
        assert!(!s1.is_committed());
        let t1 = clock.commit(&s1);
        assert!(t1 > before);
        assert_eq!(s1.load(), t1);
        assert!(clock.now() >= t1);
    }

    #[test]
    fn concurrent_commits_never_leave_gaps() {
        let clock = commit_clock();
        let threads = 8;
        let per = 200;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let mut last = 0;
                    for _ in 0..per {
                        let s = CommitStamp::new();
                        let ts = clock.commit(&s);
                        assert!(ts > last);
                        last = ts;
                        // The watermark includes us by the time commit
                        // returns — and never runs ahead of alloc.
                        let now = clock.now();
                        assert!(now >= ts);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn registry_bounds_truncation() {
        let clock = commit_clock();
        let reg = snapshot_registry();
        let s = CommitStamp::new();
        clock.commit(&s);
        let g = reg.register(clock);
        assert!(g.snap() >= s.load());
        // While the reader is live, min_active cannot pass its snapshot.
        let s2 = CommitStamp::new();
        clock.commit(&s2);
        assert!(reg.min_active(clock) <= g.snap());
        let snap = g.snap();
        drop(g);
        // Released: the floor may advance again (other tests' readers on
        // other threads may still hold older snapshots, so only check
        // against our own).
        assert!(reg.min_active(clock) >= snap.min(reg.min_active(clock)));
    }

    #[test]
    fn nested_registrations_hold_distinct_slots() {
        let clock = commit_clock();
        let reg = snapshot_registry();
        let outer = reg.register(clock);
        // Advance the clock so an inner registration lands on a strictly
        // newer snapshot.
        let s = CommitStamp::new();
        clock.commit(&s);
        let inner = reg.register(clock);
        assert!(inner.snap() >= outer.snap());
        // Both snapshots must bound min_active while both are live: the
        // inner registration may not overwrite the outer's slot.
        assert!(reg.min_active(clock) <= outer.snap());
        // Dropping the inner guard must not deregister the outer reader.
        drop(inner);
        let s2 = CommitStamp::new();
        clock.commit(&s2);
        assert!(reg.min_active(clock) <= outer.snap());
        drop(outer);
    }

    #[test]
    fn out_of_order_guard_drop_keeps_live_reader_registered() {
        let clock = commit_clock();
        let reg = snapshot_registry();
        let outer = reg.register(clock);
        let s = CommitStamp::new();
        clock.commit(&s);
        let inner = reg.register(clock);
        let inner_snap = inner.snap();
        // Drop the guards in registration (non-LIFO) order: the inner
        // reader must stay protected after the outer slot is released.
        drop(outer);
        let s2 = CommitStamp::new();
        clock.commit(&s2);
        assert!(reg.min_active(clock) <= inner_snap);
        drop(inner);
    }

    #[test]
    fn oversubscribed_commits_publish_with_bounded_latency() {
        // 4x hardware oversubscription: with the old unbounded spin, a
        // descheduled next-watermark holder convoys every later committer
        // on a busy loop and this test crawls (or times out under a
        // starved scheduler). The spin -> yield -> park ladder keeps
        // publication latency bounded by scheduler wakeups instead.
        let clock = commit_clock();
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        let threads = 4 * cores;
        let per = 50;
        let barrier = Arc::new(Barrier::new(threads));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    for _ in 0..per {
                        let s = CommitStamp::new();
                        let ts = clock.commit(&s);
                        assert!(clock.now() >= ts);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Generous liveness bound: the whole oversubscribed run must
        // finish well inside CI timeouts.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(60),
            "publication convoyed: {} threads x {} commits took {:?}",
            threads,
            per,
            start.elapsed()
        );
        // No committer may be left unpublished.
        assert!(clock.parked.load(SeqCst) == 0);
    }

    #[test]
    fn slots_are_recycled_across_threads() {
        let clock = commit_clock();
        let reg = snapshot_registry();
        for _ in 0..64 {
            std::thread::spawn(move || {
                let g = reg.register(clock);
                let _ = g.snap();
            })
            .join()
            .unwrap();
        }
        // 64 sequential short-lived threads must not grow the slot table
        // by 64: exited threads return their slot to the free list.
        assert!(reg.slots.read().unwrap().len() < 64);
    }
}
