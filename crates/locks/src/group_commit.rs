//! Group-commit fsync batching for write-ahead logs.
//!
//! A [`GroupCommit`] owns one append-only log file and amortizes `fsync`
//! across concurrent committers: every committer appends its record to an
//! in-memory buffer (cheap, under a short mutex) and then waits for its
//! record to become durable. The first waiter to find no flush in flight
//! elects itself **leader**, drains the *entire* buffer — its own record
//! plus every record appended since the last flush — writes it with one
//! `write` + one `fsync`, and wakes every follower whose record the batch
//! covered. Committers that arrive while a flush is in flight simply
//! buffer and wait: the *next* leader picks them all up in one batch, so
//! under concurrency the steady state is one fsync per batch of N
//! commits, not one per commit.
//!
//! Ordering: callers serialize their appends through [`Self::lock_order`]
//! (held across timestamp allocation *and* the buffer append), so buffer
//! order equals commit-timestamp order and every flush makes a
//! **timestamp-prefix** of the commit history durable. Durability is
//! therefore prefix-closed per log: if a record is durable, so is every
//! record with a smaller timestamp in the same log — the property crash
//! recovery relies on to replay a consistent committed prefix.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Mutable flush state shared by every committer on one log.
#[derive(Debug, Default)]
struct State {
    /// Records appended since the last flush, in append (= timestamp)
    /// order, already framed by the caller.
    buf: Vec<u8>,
    /// Sequence number of the last appended record (0 = none yet).
    next_seq: u64,
    /// Highest sequence number sitting in `buf` (== `next_seq`).
    buffered_through: u64,
    /// Records appended since the last flush (for batch accounting).
    buffered_records: u64,
    /// Highest sequence number known durable on disk.
    durable_seq: u64,
    /// Whether a leader is currently writing + fsyncing.
    syncing: bool,
    /// Set to the first flush failure's description. A failed flush may
    /// have torn a record mid-log (partial `write_all`), making every
    /// byte appended after it unrecoverable — so once set, every
    /// [`GroupCommit::wait_durable`] for a not-yet-durable record fails
    /// until [`GroupCommit::truncate_and_reset`] wipes the file.
    poisoned: Option<String>,
}

/// Counters describing how well fsync batching amortized; see
/// [`GroupCommit::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Records appended (one per committed transaction).
    pub appends: u64,
    /// Flush batches written (each is one `write` + at most one `fsync`).
    pub flushes: u64,
    /// `fsync` calls actually issued (equals `flushes` unless fsync is
    /// disabled).
    pub fsyncs: u64,
    /// Largest number of records covered by a single flush.
    pub max_batch: u64,
}

/// One append-only log file with group-commit fsync batching. See the
/// [module docs](self).
#[derive(Debug)]
pub struct GroupCommit {
    /// The log file; touched only by the elected leader (and by
    /// [`Self::truncate_and_reset`], which excludes leaders first).
    file: Mutex<File>,
    path: PathBuf,
    /// External ordering lock: held by committers across timestamp
    /// allocation + append so buffer order equals timestamp order.
    order: Mutex<()>,
    state: Mutex<State>,
    cv: Condvar,
    /// Whether flushes actually `fsync` (false = buffered durability for
    /// benchmarks and tests that only need the ordering machinery).
    fsync: bool,
    /// Leader micro-delay before draining: a deliberate wait that lets
    /// concurrent committers join the batch. Zero by default (lowest
    /// latency); benchmarks and the batching test set a millisecond or
    /// two to make ≥2-commits-per-fsync deterministic on few-core boxes.
    group_window: Duration,
    appends: AtomicU64,
    flushes: AtomicU64,
    fsyncs: AtomicU64,
    max_batch: AtomicU64,
    /// Test-only fault injection: number of upcoming flushes forced to
    /// fail before any byte reaches the file.
    #[cfg(test)]
    fail_flushes: AtomicU64,
}

impl GroupCommit {
    /// Opens (creating if absent) the log at `path` in append position.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open(path: impl AsRef<Path>, fsync: bool) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(GroupCommit {
            file: Mutex::new(file),
            path,
            order: Mutex::new(()),
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            fsync,
            group_window: Duration::ZERO,
            appends: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            #[cfg(test)]
            fail_flushes: AtomicU64::new(0),
        })
    }

    /// Sets the leader micro-delay (see the `group_window` field docs).
    pub fn set_group_window(&mut self, window: Duration) {
        self.group_window = window;
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether flushes fsync.
    pub fn fsync_enabled(&self) -> bool {
        self.fsync
    }

    /// The external ordering lock. Committers hold the returned guard
    /// across commit-timestamp allocation *and* [`Self::append`] so the
    /// buffer is in timestamp order; nothing inside this type takes it.
    pub fn lock_order(&self) -> std::sync::MutexGuard<'_, ()> {
        self.order.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one framed record to the in-memory buffer and returns its
    /// sequence number for [`Self::wait_durable`]. Does not block on I/O.
    pub fn append(&self, bytes: &[u8]) -> u64 {
        self.appends.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.next_seq += 1;
        st.buf.extend_from_slice(bytes);
        st.buffered_through = st.next_seq;
        st.buffered_records += 1;
        st.next_seq
    }

    /// Blocks until record `seq` is durable, electing this thread as the
    /// flush leader if no flush is in flight. A flush failure **poisons**
    /// the log: the failed batch was drained but may be torn mid-file, so
    /// the leader, every follower of that batch, and every later caller
    /// whose record is not already durable all get an error —
    /// `durable_seq` never advances past bytes actually synced, and
    /// nothing is ever reported durable that could vanish (or sit behind
    /// a torn record) after a crash. Only
    /// [`Self::truncate_and_reset`] — which wipes the file — clears the
    /// poison. Records that were durable *before* the failure still
    /// return `Ok`: they are genuinely on disk and recovery's torn-tail
    /// scan stops before anything written afterwards.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or syncing the log, or a previous flush
    /// failure that poisoned the log.
    pub fn wait_durable(&self, seq: u64) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.durable_seq >= seq {
                return Ok(());
            }
            if let Some(msg) = &st.poisoned {
                return Err(io::Error::other(format!(
                    "log poisoned by earlier flush failure: {msg}"
                )));
            }
            if st.syncing {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Leader election: this thread flushes everything buffered.
            st.syncing = true;
            if !self.group_window.is_zero() {
                drop(st);
                std::thread::sleep(self.group_window);
                st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            }
            let batch = std::mem::take(&mut st.buf);
            let upto = st.buffered_through;
            let records = std::mem::take(&mut st.buffered_records);
            drop(st);
            let res = self.flush_batch(&batch, records);
            st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.syncing = false;
            match &res {
                Ok(()) => st.durable_seq = st.durable_seq.max(upto),
                Err(e) => st.poisoned = Some(e.to_string()),
            }
            self.cv.notify_all();
            res?;
        }
    }

    /// Leader-only: one write + one (optional) fsync for a drained batch.
    fn flush_batch(&self, batch: &[u8], records: u64) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        #[cfg(test)]
        if self.fail_flushes.load(Ordering::Relaxed) > 0 {
            self.fail_flushes.fetch_sub(1, Ordering::Relaxed);
            return Err(io::Error::other("injected flush failure"));
        }
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(batch)?;
        if self.fsync {
            file.sync_all()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(records, Ordering::Relaxed);
        Ok(())
    }

    /// Truncates the log file to empty and resets the batching state —
    /// the checkpoint path, called with writers quiescent (no concurrent
    /// [`Self::append`]; a leader mid-flush is waited out). Any records
    /// still buffered are discarded and their waiters released as durable:
    /// the checkpoint that triggers truncation supersedes them. A poison
    /// left by a failed flush is cleared on success — truncation wipes
    /// any torn bytes, so the file is clean again.
    ///
    /// # Errors
    ///
    /// Any I/O error truncating or syncing the log.
    pub fn truncate_and_reset(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.syncing {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.syncing = true;
        drop(st);
        let res: io::Result<()> = (|| {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            if self.fsync {
                file.sync_all()?;
            }
            Ok(())
        })();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.syncing = false;
        st.buf.clear();
        st.buffered_records = 0;
        st.buffered_through = st.next_seq;
        match &res {
            // Truncation wiped any torn bytes: the file is clean again
            // and the (discarded, superseded) records count as durable.
            Ok(()) => {
                st.durable_seq = st.next_seq;
                st.poisoned = None;
            }
            // A failed truncation leaves the file in an unknown state
            // *and* just discarded the buffered records — keep
            // `durable_seq` where it was and poison, so their waiters
            // (and every later commit) fail instead of reporting
            // durability that was never achieved.
            Err(e) => st.poisoned = Some(e.to_string()),
        }
        self.cv.notify_all();
        res
    }

    /// Current batching counters.
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            appends: self.appends.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("relc-gc-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn append_then_wait_is_durable_on_disk() {
        let path = temp_path("basic");
        let _ = std::fs::remove_file(&path);
        let gc = GroupCommit::open(&path, true).unwrap();
        let s1 = gc.append(b"hello ");
        let s2 = gc.append(b"world");
        gc.wait_durable(s2).unwrap();
        assert!(s1 < s2);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        let st = gc.stats();
        assert_eq!(st.appends, 2);
        assert!(st.fsyncs >= 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_commits_batch_fsyncs() {
        let path = temp_path("batch");
        let _ = std::fs::remove_file(&path);
        let mut gc = GroupCommit::open(&path, true).unwrap();
        gc.set_group_window(Duration::from_millis(2));
        let gc = Arc::new(gc);
        const THREADS: usize = 8;
        const PER: usize = 16;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let rec = format!("t{t}i{i};");
                        let _guard = gc.lock_order();
                        let seq = gc.append(rec.as_bytes());
                        drop(_guard);
                        gc.wait_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = gc.stats();
        assert_eq!(st.appends, (THREADS * PER) as u64);
        assert!(
            st.max_batch >= 2,
            "group window must batch at least one pair: {st:?}"
        );
        assert!(st.fsyncs < st.appends, "fsyncs must amortize: {st:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_flush_poisons_until_truncate() {
        let path = temp_path("poison");
        let _ = std::fs::remove_file(&path);
        let gc = GroupCommit::open(&path, true).unwrap();
        let s1 = gc.append(b"good;");
        gc.wait_durable(s1).unwrap();
        gc.fail_flushes.store(1, Ordering::Relaxed);
        let s2 = gc.append(b"lost;");
        // The leader hits the injected failure...
        assert!(gc.wait_durable(s2).is_err());
        // ...and it is sticky: the drained batch is gone, so no later
        // leader may ever report s2 (or anything after it) durable.
        assert!(gc.wait_durable(s2).is_err());
        let s3 = gc.append(b"after;");
        assert!(gc.wait_durable(s3).is_err());
        // Records durable before the failure stay truthfully durable.
        gc.wait_durable(s1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"good;");
        // Truncation wipes the file and clears the poison.
        gc.truncate_and_reset().unwrap();
        let s4 = gc.append(b"fresh;");
        gc.wait_durable(s4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"fresh;");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_resets_and_releases_waiters() {
        let path = temp_path("trunc");
        let _ = std::fs::remove_file(&path);
        let gc = GroupCommit::open(&path, false).unwrap();
        let seq = gc.append(b"doomed");
        gc.truncate_and_reset().unwrap();
        // The buffered record was superseded: waiting is a no-op.
        gc.wait_durable(seq).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        let s2 = gc.append(b"fresh");
        gc.wait_durable(s2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"fresh");
        std::fs::remove_file(&path).unwrap();
    }
}
