//! Physical reader-writer locks attached to decomposition node instances
//! (§4.3).
//!
//! A [`PhysicalLock`] guards no data of its own — it *implements a set of
//! logical locks* chosen by the lock placement, and the data it protects
//! (container entries) lives elsewhere in the decomposition instance.
//!
//! The lock is a single atomic word (`0` = free, `u32::MAX` = exclusively
//! held, otherwise the reader count), so the uncontended
//! acquire/release pair — the overwhelmingly common case on the
//! transaction hot path, where every instance's lock is taken for every
//! operation that touches it — is two compare-exchanges, with no queue,
//! mutex, or condition variable behind it. Contended blocking acquisitions
//! spin briefly, then yield, then sleep with escalating backoff; fairness
//! niceties are deliberately traded for throughput (the two-phase
//! engine's ordered protocol already prevents starvation cycles, and the
//! randomized transaction backoff spreads retry storms).

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::mode::LockMode;

/// Word value marking an exclusive holder (all bits set — distinct from
/// any reader-count/pending combination, since counts stay below 2³¹).
const EXCLUSIVE: u32 = u32::MAX;
/// A writer is blocked waiting for the readers to drain: new shared
/// acquisitions fail while this is set, so a steady stream of readers
/// cannot starve a blocking writer.
const WRITER_PENDING: u32 = 1 << 31;
/// Pure spins before the first yield.
const SPINS: u32 = 64;
/// Yields before escalating to timed sleeps.
const YIELDS: u32 = 64;

/// A physical reader-writer lock with contention accounting.
pub struct PhysicalLock {
    /// `0` = free, [`EXCLUSIVE`] = one writer, else the reader count in
    /// the low bits plus an optional [`WRITER_PENDING`] flag.
    state: AtomicU32,
    contended: AtomicU64,
}

impl PhysicalLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        PhysicalLock {
            state: AtomicU32::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Acquires the lock in `mode`, blocking if necessary.
    ///
    /// A blocking exclusive acquisition raises [`WRITER_PENDING`], which
    /// turns away newly arriving readers while the current ones drain —
    /// writer preference, so read-heavy traffic cannot starve writers.
    /// (Blocked *readers* then wait for that writer; the wait-for edges
    /// this adds stay within one lock and point from the waiter to
    /// holders that only ever block on higher-ordered locks, so the §5.1
    /// deadlock-freedom argument is unaffected.)
    pub fn acquire(&self, mode: LockMode) {
        if self.try_acquire(mode) {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0u32;
        loop {
            if mode == LockMode::Exclusive {
                // Flag our wait so the reader population only shrinks.
                // The flag may be cleared by another writer winning and
                // releasing (its `swap(0)`); just re-raise it.
                let cur = self.state.load(Ordering::Relaxed);
                if cur != EXCLUSIVE && cur & WRITER_PENDING == 0 {
                    let _ = self.state.compare_exchange_weak(
                        cur,
                        cur | WRITER_PENDING,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                // Claim once the readers are gone (only the flag remains).
                if self
                    .state
                    .compare_exchange(
                        WRITER_PENDING,
                        EXCLUSIVE,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
            } else if self.try_acquire(mode) {
                return;
            }
            attempts += 1;
            if attempts <= SPINS {
                std::hint::spin_loop();
            } else if attempts <= SPINS + YIELDS {
                std::thread::yield_now();
            } else {
                // Escalating sleep, capped at 1ms: long waits stop burning
                // the CPU the holder needs to finish.
                let exp = (attempts - SPINS - YIELDS).min(10);
                std::thread::sleep(std::time::Duration::from_micros(1 << exp));
            }
        }
    }

    /// Attempts to acquire the lock in `mode` without blocking. Fails for
    /// either mode while a blocking writer is flagged ([`WRITER_PENDING`])
    /// — try-only callers restart rather than queue-jump.
    pub fn try_acquire(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                let mut cur = self.state.load(Ordering::Relaxed);
                loop {
                    if cur == EXCLUSIVE || cur & WRITER_PENDING != 0 {
                        return false;
                    }
                    match self.state.compare_exchange_weak(
                        cur,
                        cur + 1,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(now) => cur = now,
                    }
                }
            }
            LockMode::Exclusive => self
                .state
                .compare_exchange(0, EXCLUSIVE, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
        }
    }

    /// Releases the lock previously acquired in `mode`.
    ///
    /// # Safety
    ///
    /// The caller must currently hold this lock in exactly `mode` (the
    /// two-phase engine tracks held modes and upholds this).
    pub unsafe fn release(&self, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                // Leaves any WRITER_PENDING flag intact for the waiter.
                let prev = self.state.fetch_sub(1, Ordering::Release);
                debug_assert!(
                    prev != EXCLUSIVE && prev & !WRITER_PENDING > 0,
                    "release without holders"
                );
            }
            LockMode::Exclusive => {
                // Also clears WRITER_PENDING: waiting writers re-raise it.
                let prev = self.state.swap(0, Ordering::Release);
                debug_assert_eq!(prev, EXCLUSIVE, "exclusive release without writer");
            }
        }
    }

    /// How many acquisitions found the lock already contended.
    pub fn contention_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

impl Default for PhysicalLock {
    fn default() -> Self {
        PhysicalLock::new()
    }
}

impl fmt::Debug for PhysicalLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalLock")
            .field("contended", &self.contention_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_excludes_everyone() {
        let l = PhysicalLock::new();
        assert!(l.try_acquire(LockMode::Exclusive));
        assert!(!l.try_acquire(LockMode::Exclusive));
        assert!(!l.try_acquire(LockMode::Shared));
        unsafe { l.release(LockMode::Exclusive) };
        assert!(l.try_acquire(LockMode::Shared));
        unsafe { l.release(LockMode::Shared) };
    }

    #[test]
    fn shared_admits_readers_excludes_writers() {
        let l = PhysicalLock::new();
        assert!(l.try_acquire(LockMode::Shared));
        assert!(l.try_acquire(LockMode::Shared));
        assert!(!l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Shared) };
        assert!(!l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Shared) };
        assert!(l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Exclusive) };
    }

    #[test]
    fn blocking_acquire_hands_over() {
        let l = Arc::new(PhysicalLock::new());
        l.acquire(LockMode::Exclusive);
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            l2.acquire(LockMode::Exclusive); // blocks until main releases
            unsafe { l2.release(LockMode::Exclusive) };
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        unsafe { l.release(LockMode::Exclusive) };
        t.join().unwrap();
        assert!(l.contention_count() >= 1);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", PhysicalLock::new()).is_empty());
    }
}
