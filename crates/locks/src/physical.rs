//! Physical reader-writer locks attached to decomposition node instances
//! (§4.3).
//!
//! A [`PhysicalLock`] is a thin wrapper over `parking_lot`'s raw
//! reader-writer lock: unlike `RwLock<T>`, it guards no data of its own —
//! it *implements a set of logical locks* chosen by the lock placement, and
//! the data it protects (container entries) lives elsewhere in the
//! decomposition instance.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::lock_api::RawRwLock as RawRwLockApi;
use parking_lot::RawRwLock;

use crate::mode::LockMode;

/// A physical reader-writer lock with contention accounting.
pub struct PhysicalLock {
    raw: RawRwLock,
    contended: AtomicU64,
}

impl PhysicalLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        PhysicalLock {
            raw: RawRwLockApi::INIT,
            contended: AtomicU64::new(0),
        }
    }

    /// Acquires the lock in `mode`, blocking if necessary.
    pub fn acquire(&self, mode: LockMode) {
        if !self.try_acquire(mode) {
            self.contended.fetch_add(1, Ordering::Relaxed);
            match mode {
                LockMode::Shared => self.raw.lock_shared(),
                LockMode::Exclusive => self.raw.lock_exclusive(),
            }
        }
    }

    /// Attempts to acquire the lock in `mode` without blocking.
    pub fn try_acquire(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self.raw.try_lock_shared(),
            LockMode::Exclusive => self.raw.try_lock_exclusive(),
        }
    }

    /// Releases the lock previously acquired in `mode`.
    ///
    /// # Safety
    ///
    /// The caller must currently hold this lock in exactly `mode` (the
    /// two-phase engine tracks held modes and upholds this).
    pub unsafe fn release(&self, mode: LockMode) {
        match mode {
            // SAFETY: forwarded contract.
            LockMode::Shared => unsafe { self.raw.unlock_shared() },
            // SAFETY: forwarded contract.
            LockMode::Exclusive => unsafe { self.raw.unlock_exclusive() },
        }
    }

    /// How many acquisitions found the lock already contended.
    pub fn contention_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

impl Default for PhysicalLock {
    fn default() -> Self {
        PhysicalLock::new()
    }
}

impl fmt::Debug for PhysicalLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalLock")
            .field("contended", &self.contention_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_excludes_everyone() {
        let l = PhysicalLock::new();
        assert!(l.try_acquire(LockMode::Exclusive));
        assert!(!l.try_acquire(LockMode::Exclusive));
        assert!(!l.try_acquire(LockMode::Shared));
        unsafe { l.release(LockMode::Exclusive) };
        assert!(l.try_acquire(LockMode::Shared));
        unsafe { l.release(LockMode::Shared) };
    }

    #[test]
    fn shared_admits_readers_excludes_writers() {
        let l = PhysicalLock::new();
        assert!(l.try_acquire(LockMode::Shared));
        assert!(l.try_acquire(LockMode::Shared));
        assert!(!l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Shared) };
        assert!(!l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Shared) };
        assert!(l.try_acquire(LockMode::Exclusive));
        unsafe { l.release(LockMode::Exclusive) };
    }

    #[test]
    fn blocking_acquire_hands_over() {
        let l = Arc::new(PhysicalLock::new());
        l.acquire(LockMode::Exclusive);
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            l2.acquire(LockMode::Exclusive); // blocks until main releases
            unsafe { l2.release(LockMode::Exclusive) };
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        unsafe { l.release(LockMode::Exclusive) };
        t.join().unwrap();
        assert!(l.contention_count() >= 1);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", PhysicalLock::new()).is_empty());
    }
}
