//! Lock modes.
//!
//! "By 'lock' we mean a class of pessimistic synchronization primitives that
//! may be held by a transaction in either of two different modes, namely
//! shared or exclusive" (§4.2).

use std::fmt;

/// The mode in which a transaction holds a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared access: multiple transactions may hold the lock concurrently.
    /// Required to *observe* the state (presence or absence) of an edge.
    Shared,
    /// Exclusive access: no other transaction may hold the lock in any mode.
    /// Required to *add, remove, or update* an edge.
    Exclusive,
}

impl LockMode {
    /// Whether holding `self` satisfies a request for `other`.
    ///
    /// Exclusive access subsumes shared access; the converse does not hold.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc_locks::LockMode;
    /// assert!(LockMode::Exclusive.covers(LockMode::Shared));
    /// assert!(!LockMode::Shared.covers(LockMode::Exclusive));
    /// assert!(LockMode::Shared.covers(LockMode::Shared));
    /// ```
    pub fn covers(self, other: LockMode) -> bool {
        self >= other
    }

    /// The join of two modes: the weakest mode covering both.
    #[must_use]
    pub fn join(self, other: LockMode) -> LockMode {
        self.max(other)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => f.write_str("shared"),
            LockMode::Exclusive => f.write_str("exclusive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_a_partial_order_on_strength() {
        assert!(LockMode::Exclusive.covers(LockMode::Exclusive));
        assert!(LockMode::Exclusive.covers(LockMode::Shared));
        assert!(LockMode::Shared.covers(LockMode::Shared));
        assert!(!LockMode::Shared.covers(LockMode::Exclusive));
    }

    #[test]
    fn join_is_max() {
        assert_eq!(
            LockMode::Shared.join(LockMode::Exclusive),
            LockMode::Exclusive
        );
        assert_eq!(LockMode::Shared.join(LockMode::Shared), LockMode::Shared);
        assert_eq!(
            LockMode::Exclusive.join(LockMode::Shared),
            LockMode::Exclusive
        );
    }

    #[test]
    fn display() {
        assert_eq!(LockMode::Shared.to_string(), "shared");
        assert_eq!(LockMode::Exclusive.to_string(), "exclusive");
    }
}
