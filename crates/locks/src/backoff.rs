//! Randomized exponential backoff for transaction restarts.
//!
//! When a transaction must restart (an out-of-order `try_lock` failed, or a
//! shared→exclusive upgrade was needed), immediately retrying against the
//! same contended locks livelocks. [`Backoff`] spins briefly, then yields,
//! then sleeps with deterministic-per-thread jitter.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;
const MAX_SLEEP_US: u64 = 1_000;

/// Per-transaction restart backoff state.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

fn jitter(bound: u64) -> u64 {
    // xorshift64 seeded per thread; avoids a rand dependency in the hot path.
    static SEED: AtomicU64 = AtomicU64::new(0x853c_49e6_748f_ea9b);
    thread_local! {
        static STATE: Cell<u64> =
            Cell::new(SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed) | 1);
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        if bound == 0 {
            0
        } else {
            x % bound
        }
    })
}

impl Backoff {
    /// Creates a fresh backoff (first waits are spins).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Waits an amount appropriate for the current step, then escalates.
    pub fn wait(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - YIELD_LIMIT).min(10);
            let bound = (1u64 << exp).min(MAX_SLEEP_US);
            std::thread::sleep(Duration::from_micros(1 + jitter(bound)));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Number of waits performed so far.
    pub fn retries(&self) -> u32 {
        self.step
    }

    /// Resets to the initial (spinning) state.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.wait();
        }
        assert_eq!(b.retries(), 20);
        b.reset();
        assert_eq!(b.retries(), 0);
    }

    #[test]
    fn jitter_is_bounded() {
        for bound in [1u64, 2, 100] {
            for _ in 0..100 {
                assert!(jitter(bound) < bound);
            }
        }
        assert_eq!(jitter(0), 0);
    }

    #[test]
    fn long_backoff_terminates_quickly_enough() {
        let start = std::time::Instant::now();
        let mut b = Backoff::new();
        for _ in 0..30 {
            b.wait();
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
