//! # relc-locks — the lock-placement substrate
//!
//! Physical locks and the deadlock-free ordered two-phase locking engine
//! used by `relc` (a Rust reproduction of *Concurrent Data Representation
//! Synthesis*, PLDI 2012; the lock theory follows the companion ESOP 2012
//! paper *Reasoning about Lock Placements*).
//!
//! * [`LockMode`] — shared/exclusive modes (§4.2);
//! * [`PhysicalLock`] — raw reader-writer locks attached to decomposition
//!   node instances (§4.3), with contention accounting;
//! * [`TwoPhaseEngine`] — per-thread transaction lock manager enforcing
//!   two-phase discipline and the global lock order of §5.1, with
//!   try-and-restart handling for out-of-order needs (speculation §4.5,
//!   upgrades) — deadlock freedom by construction;
//! * [`Backoff`] — randomized restart backoff;
//! * [`LockStats`] — counters consumed by the ablation benchmarks.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use relc_locks::{Backoff, LockMode, LockStats, PhysicalLock, TwoPhaseEngine};
//!
//! let stats = Arc::new(LockStats::new());
//! let locks: Vec<Arc<PhysicalLock>> =
//!     (0..3).map(|_| Arc::new(PhysicalLock::new())).collect();
//!
//! let mut txn: TwoPhaseEngine<usize> = TwoPhaseEngine::new(stats);
//! let mut backoff = Backoff::new();
//! loop {
//!     let ok = (|| {
//!         txn.acquire(0, &locks[0], LockMode::Shared)?;
//!         txn.acquire(2, &locks[2], LockMode::Exclusive)?;
//!         Ok::<_, relc_locks::MustRestart>(())
//!     })();
//!     match ok {
//!         Ok(()) => { /* read/write the protected data here */ break; }
//!         Err(_) => { txn.rollback(); backoff.wait(); }
//!     }
//! }
//! txn.finish();
//! ```

#![warn(missing_docs)]

mod backoff;
mod clock;
mod engine;
mod group_commit;
pub mod lockdep;
mod mode;
mod physical;
mod stats;

pub use backoff::Backoff;
pub use clock::{
    commit_clock, snapshot_registry, CommitClock, CommitStamp, SnapshotGuard, SnapshotRegistry,
    TENTATIVE_TS,
};
pub use engine::{MustRestart, RestartReason, TwoPhaseEngine};
pub use group_commit::{GroupCommit, GroupCommitStats};
pub use lockdep::LockdepClass;
pub use mode::LockMode;
pub use physical::PhysicalLock;
pub use stats::{LockStats, LockStatsSnapshot};
