//! Lock-engine statistics, used by the ablation benchmarks and tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing lock traffic for one synthesized relation.
///
/// All counters use relaxed atomics: they are diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    restarts: AtomicU64,
    upgrades: AtomicU64,
    speculation_failures: AtomicU64,
    commits: AtomicU64,
    user_rollbacks: AtomicU64,
    snapshot_reads: AtomicU64,
}

/// Per-transaction counter deltas, accumulated locally (no shared-cache
/// traffic on the lock hot path) and flushed into [`LockStats`] at commit
/// or rollback.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LocalStats {
    pub acquisitions: u64,
    pub contended: u64,
    pub restarts: u64,
    pub upgrades: u64,
    pub speculation_failures: u64,
    pub commits: u64,
    pub user_rollbacks: u64,
}

impl LocalStats {
    pub(crate) fn is_empty(&self) -> bool {
        self.acquisitions == 0
            && self.contended == 0
            && self.restarts == 0
            && self.upgrades == 0
            && self.speculation_failures == 0
            && self.commits == 0
            && self.user_rollbacks == 0
    }
}

impl LockStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        LockStats::default()
    }

    /// Merges a transaction's local deltas (one shared add per touched
    /// counter, instead of one per lock acquisition).
    pub(crate) fn flush(&self, local: &mut LocalStats) {
        if local.is_empty() {
            return;
        }
        if local.acquisitions > 0 {
            self.acquisitions
                .fetch_add(local.acquisitions, Ordering::Relaxed);
        }
        if local.contended > 0 {
            self.contended.fetch_add(local.contended, Ordering::Relaxed);
        }
        if local.restarts > 0 {
            self.restarts.fetch_add(local.restarts, Ordering::Relaxed);
        }
        if local.upgrades > 0 {
            self.upgrades.fetch_add(local.upgrades, Ordering::Relaxed);
        }
        if local.speculation_failures > 0 {
            self.speculation_failures
                .fetch_add(local.speculation_failures, Ordering::Relaxed);
        }
        if local.commits > 0 {
            self.commits.fetch_add(local.commits, Ordering::Relaxed);
        }
        if local.user_rollbacks > 0 {
            self.user_rollbacks
                .fetch_add(local.user_rollbacks, Ordering::Relaxed);
        }
        *local = LocalStats::default();
    }

    /// Records `n` completed MVCC snapshot read operations. Snapshot
    /// reads never enter the lock engine (that is the point), so they
    /// bypass the [`LocalStats`] flush path and record directly.
    pub fn record_snapshot_reads(&self, n: u64) {
        if n > 0 {
            self.snapshot_reads.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            speculation_failures: self.speculation_failures.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            user_rollbacks: self.user_rollbacks.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Total physical lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that could not be satisfied immediately.
    pub contended: u64,
    /// Transaction restarts (out-of-order try-lock failures or upgrades).
    pub restarts: u64,
    /// Restarts caused specifically by shared→exclusive upgrades.
    pub upgrades: u64,
    /// Failed speculative lock guesses (§4.5).
    pub speculation_failures: u64,
    /// Transactions committed (engine `finish` calls).
    pub commits: u64,
    /// Transactions rolled back by an explicit application abort (engine
    /// `rollback_user` calls — `tx.abort(..)` in the transaction layer).
    /// Conflict-driven retries are *not* counted here (they appear in
    /// `restarts`), and neither are validation errors that never applied
    /// an effect, so a retry storm is distinguishable from application
    /// aborts.
    pub user_rollbacks: u64,
    /// Lock-free MVCC snapshot read operations (queries/membership tests
    /// served from version chains without touching the lock engine).
    pub snapshot_reads: u64,
}

impl fmt::Display for LockStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acquisitions={} contended={} restarts={} upgrades={} \
             spec-failures={} commits={} user-rollbacks={} snapshot-reads={}",
            self.acquisitions,
            self.contended,
            self.restarts,
            self.upgrades,
            self.speculation_failures,
            self.commits,
            self.user_rollbacks,
            self.snapshot_reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = LockStats::new();
        let mut local = LocalStats {
            acquisitions: 2,
            contended: 1,
            restarts: 1,
            upgrades: 1,
            speculation_failures: 1,
            commits: 1,
            user_rollbacks: 2,
        };
        s.flush(&mut local);
        assert!(local.is_empty(), "flush drains the local deltas");
        s.flush(&mut local); // no-op
        s.record_snapshot_reads(3);
        s.record_snapshot_reads(0); // no-op
        let snap = s.snapshot();
        assert_eq!(snap.acquisitions, 2);
        assert_eq!(snap.contended, 1);
        assert_eq!(snap.restarts, 1);
        assert_eq!(snap.upgrades, 1);
        assert_eq!(snap.speculation_failures, 1);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.user_rollbacks, 2);
        assert_eq!(snap.snapshot_reads, 3);
        assert!(snap.to_string().contains("acquisitions=2"));
        assert!(snap.to_string().contains("commits=1"));
        assert!(snap.to_string().contains("snapshot-reads=3"));
    }
}
