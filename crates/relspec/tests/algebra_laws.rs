//! Property tests for the relational algebra substrate: column-set lattice
//! laws, tuple projection/extension/matching laws, and FD closure laws —
//! the §2 identities the compiler silently relies on everywhere.

use proptest::prelude::*;
use relc_spec::{ColumnId, ColumnSet, FdSet, FunctionalDependency, Tuple, Value};

const MAX_COL: usize = 10;

fn colset_strategy() -> impl Strategy<Value = ColumnSet> {
    proptest::collection::vec(0usize..MAX_COL, 0..MAX_COL)
        .prop_map(|v| v.into_iter().map(ColumnId::from_index).collect())
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::btree_map(0usize..MAX_COL, -4i64..4, 0..MAX_COL).prop_map(|m| {
        Tuple::from_pairs(
            m.into_iter()
                .map(|(c, v)| (ColumnId::from_index(c), Value::from(v))),
        )
    })
}

fn fdset_strategy() -> impl Strategy<Value = FdSet> {
    proptest::collection::vec((colset_strategy(), colset_strategy()), 0..5).prop_map(|v| {
        v.into_iter()
            .map(|(l, r)| FunctionalDependency::new(l, r))
            .collect()
    })
}

proptest! {
    #[test]
    fn columnset_lattice_laws(a in colset_strategy(), b in colset_strategy(), c in colset_strategy()) {
        // Commutativity, associativity, absorption, distributivity.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(b.union(c)), a.union(b).union(c));
        prop_assert_eq!(a.intersection(b.intersection(c)), a.intersection(b).intersection(c));
        prop_assert_eq!(a.union(a.intersection(b)), a);
        prop_assert_eq!(a.intersection(a.union(b)), a);
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
        // Difference laws.
        prop_assert_eq!(a.difference(b).intersection(b), ColumnSet::EMPTY);
        prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
        // Subset is a partial order compatible with union.
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert!(a.intersection(b).is_subset(a));
        prop_assert_eq!(a.is_disjoint(b), a.intersection(b).is_empty());
        // Cardinality.
        prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
    }

    #[test]
    fn tuple_projection_laws(t in tuple_strategy(), a in colset_strategy(), b in colset_strategy()) {
        // Projection is idempotent and commutes with intersection.
        prop_assert_eq!(t.project(a).project(a), t.project(a));
        prop_assert_eq!(t.project(a).project(b), t.project(a.intersection(b)));
        // dom(π_A t) = dom t ∩ A.
        prop_assert_eq!(t.project(a).dom(), t.dom().intersection(a));
        // t extends all of its projections; projections match t.
        prop_assert!(t.extends(&t.project(a)));
        prop_assert!(t.matches(&t.project(a)));
        // Full projection is identity.
        prop_assert_eq!(t.project(t.dom()), t.clone());
        prop_assert_eq!(t.project(ColumnSet::EMPTY), Tuple::empty());
    }

    #[test]
    fn tuple_extends_matches_union_laws(s in tuple_strategy(), t in tuple_strategy()) {
        // extends ⇒ matches.
        if t.extends(&s) {
            prop_assert!(t.matches(&s));
        }
        // matches is symmetric and exactly characterizes union success.
        prop_assert_eq!(s.matches(&t), t.matches(&s));
        prop_assert_eq!(s.union(&t).is_ok(), s.matches(&t));
        if let Ok(u) = s.union(&t) {
            prop_assert!(u.extends(&s));
            prop_assert!(u.extends(&t));
            prop_assert_eq!(u.dom(), s.dom().union(t.dom()));
            // Union is the least upper bound: projecting back recovers the
            // originals.
            prop_assert_eq!(u.project(s.dom()), s.clone());
            prop_assert_eq!(u.project(t.dom()), t.clone());
            // And commutative.
            prop_assert_eq!(u, t.union(&s).unwrap());
        }
        // The empty tuple is a unit.
        prop_assert!(s.extends(&Tuple::empty()));
        prop_assert_eq!(s.union(&Tuple::empty()).unwrap(), s.clone());
    }

    #[test]
    fn fd_closure_laws(fds in fdset_strategy(), a in colset_strategy(), b in colset_strategy()) {
        let ca = fds.closure(a);
        // Extensive, monotone, idempotent: a closure operator.
        prop_assert!(a.is_subset(ca));
        if a.is_subset(b) {
            prop_assert!(ca.is_subset(fds.closure(b)));
        }
        prop_assert_eq!(fds.closure(ca), ca);
        // determines() agrees with closure membership.
        prop_assert!(fds.determines(a, ca));
        // Keys: the full closure set is always a key of itself.
        prop_assert!(fds.is_key(ca, ca));
    }

    #[test]
    fn tuple_order_is_total_and_consistent_with_eq(
        s in tuple_strategy(), t in tuple_strategy(), u in tuple_strategy())
    {
        use std::cmp::Ordering;
        // Totality + antisymmetry.
        match s.cmp(&t) {
            Ordering::Equal => prop_assert_eq!(s.clone(), t.clone()),
            Ordering::Less => prop_assert_eq!(t.cmp(&s), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(t.cmp(&s), Ordering::Less),
        }
        // Transitivity (spot form).
        if s <= t && t <= u {
            prop_assert!(s <= u);
        }
    }

    #[test]
    fn stable_hash_is_a_function_of_the_projection(
        t in tuple_strategy(), a in colset_strategy())
    {
        prop_assert_eq!(t.stable_hash_of(a), t.project(a).stable_hash_of(a));
    }
}
