//! Error types for relational specifications.

use std::fmt;

/// Errors arising from misuse of a relational specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A column name was not found in the schema's catalog.
    UnknownColumn(String),
    /// A tuple was expected to be a valuation for a specific column set.
    NotAValuation {
        /// Rendered domain of the offending tuple.
        dom: String,
        /// Rendered expected column set.
        expected: String,
    },
    /// `insert r s t` requires `s` and `t` to have disjoint domains (§2).
    OverlappingInsertDomains {
        /// Rendered shared columns.
        shared: String,
    },
    /// An operation would violate a declared functional dependency.
    ///
    /// The paper makes FD preservation a *client* obligation; the oracle
    /// checks it eagerly so tests catch violations.
    FdViolation {
        /// Rendered functional dependency that failed.
        fd: String,
    },
    /// `remove r s` requires `s` to be a key for the relation (§2).
    RemoveNotByKey {
        /// Rendered domain of the offending tuple.
        dom: String,
    },
    /// `update r s t` requires `t` to assign at least one column.
    EmptyUpdate,
    /// `update r s t` requires the updated columns to be disjoint from the
    /// key pattern (the key names *which* tuple changes; to move a tuple to
    /// a different key, remove and re-insert it).
    UpdateOverlapsPattern {
        /// Rendered shared columns.
        shared: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            SpecError::NotAValuation { dom, expected } => {
                write!(
                    f,
                    "tuple with domain {dom} is not a valuation for {expected}"
                )
            }
            SpecError::OverlappingInsertDomains { shared } => {
                write!(f, "insert key and payload tuples share columns {shared}")
            }
            SpecError::FdViolation { fd } => {
                write!(f, "operation violates functional dependency {fd}")
            }
            SpecError::RemoveNotByKey { dom } => {
                write!(f, "remove pattern {dom} is not a key for the relation")
            }
            SpecError::EmptyUpdate => {
                write!(f, "update assigns no columns")
            }
            SpecError::UpdateOverlapsPattern { shared } => {
                write!(
                    f,
                    "update assignment overlaps the key pattern on columns {shared}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errs: Vec<SpecError> = vec![
            SpecError::UnknownColumn("zap".into()),
            SpecError::NotAValuation {
                dom: "{a}".into(),
                expected: "{a, b}".into(),
            },
            SpecError::OverlappingInsertDomains {
                shared: "{a}".into(),
            },
            SpecError::FdViolation {
                fd: "a → b".into()
            },
            SpecError::RemoveNotByKey { dom: "{b}".into() },
            SpecError::EmptyUpdate,
            SpecError::UpdateOverlapsPattern {
                shared: "{a}".into(),
            },
        ];
        for e in errs {
            let msg = format!("{e}");
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
            // Error trait object usable
            let _boxed: Box<dyn std::error::Error> = Box::new(e);
        }
    }
}
