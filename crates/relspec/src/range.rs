//! Range patterns: the one-column interval predicate behind
//! `query_range` (the IndexRange access path).
//!
//! A [`RangePattern`] names a single column and an interval of values
//! over it — each end independently open, closed, or unbounded — plus an
//! optional `limit` for top-k queries. It extends the paper's §2 query
//! language, which binds columns by equality only: a range query matches
//! every tuple whose value in the range column falls inside the
//! interval, *in addition to* whatever equality pattern accompanies it.
//!
//! Ordering matters: range results are returned sorted by the range
//! column first (then by the projected tuple), which is what makes `limit`
//! meaningful (the k smallest matches) and what sorted containers can
//! serve natively with a bounded in-order scan.

use std::fmt;
use std::ops::Bound;

use crate::column::ColumnId;
use crate::value::Value;

/// An interval predicate over one column: `lo ≤/< col ≤/< hi`, with
/// either end optionally unbounded, plus an optional result `limit`
/// (top-k in range order).
///
/// # Examples
///
/// ```
/// use relc_spec::{library, RangePattern, Value};
///
/// let schema = library::graph_schema();
/// let dst = schema.column("dst").unwrap();
/// // 2 ≤ dst < 7
/// let r = RangePattern::half_open(dst, Value::from(2), Value::from(7));
/// assert!(r.contains(&Value::from(2)));
/// assert!(!r.contains(&Value::from(7)));
/// // the 3 smallest dst values ≥ 10
/// let topk = RangePattern::at_least(dst, Value::from(10)).with_limit(3);
/// assert_eq!(topk.limit(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePattern {
    col: ColumnId,
    lo: Bound<Value>,
    hi: Bound<Value>,
    limit: Option<usize>,
}

impl RangePattern {
    /// A range with explicit bounds on both ends.
    pub fn new(col: ColumnId, lo: Bound<Value>, hi: Bound<Value>) -> Self {
        RangePattern {
            col,
            lo,
            hi,
            limit: None,
        }
    }

    /// The half-open interval `lo ≤ col < hi` (the conventional paging
    /// shape).
    pub fn half_open(col: ColumnId, lo: Value, hi: Value) -> Self {
        Self::new(col, Bound::Included(lo), Bound::Excluded(hi))
    }

    /// The closed interval `lo ≤ col ≤ hi`.
    pub fn closed(col: ColumnId, lo: Value, hi: Value) -> Self {
        Self::new(col, Bound::Included(lo), Bound::Included(hi))
    }

    /// The lower-bounded ray `col ≥ lo`.
    pub fn at_least(col: ColumnId, lo: Value) -> Self {
        Self::new(col, Bound::Included(lo), Bound::Unbounded)
    }

    /// The upper-bounded ray `col < hi`.
    pub fn below(col: ColumnId, hi: Value) -> Self {
        Self::new(col, Bound::Unbounded, Bound::Excluded(hi))
    }

    /// The unbounded range over `col`: matches every tuple, but still
    /// imposes range order (useful with [`Self::with_limit`] for plain
    /// top-k).
    pub fn all(col: ColumnId) -> Self {
        Self::new(col, Bound::Unbounded, Bound::Unbounded)
    }

    /// Caps the result at the `k` smallest matches in range order.
    #[must_use]
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// This range with the result cap removed (a sharded fan-out reads
    /// each shard uncapped and applies the cap after the global merge —
    /// a per-shard cap could starve projections that dedup across
    /// shards).
    #[must_use]
    pub fn without_limit(&self) -> Self {
        RangePattern {
            limit: None,
            ..self.clone()
        }
    }

    /// The column the interval constrains.
    pub fn col(&self) -> ColumnId {
        self.col
    }

    /// The lower bound.
    pub fn lo(&self) -> Bound<&Value> {
        self.lo.as_ref()
    }

    /// The upper bound.
    pub fn hi(&self) -> Bound<&Value> {
        self.hi.as_ref()
    }

    /// The result cap, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: &Value) -> bool {
        let above_lo = match &self.lo {
            Bound::Included(lo) => v >= lo,
            Bound::Excluded(lo) => v > lo,
            Bound::Unbounded => true,
        };
        let below_hi = match &self.hi {
            Bound::Included(hi) => v <= hi,
            Bound::Excluded(hi) => v < hi,
            Bound::Unbounded => true,
        };
        above_lo && below_hi
    }

    /// Whether the interval is syntactically empty (`lo > hi`, or equal
    /// with an open end). Containers may skip the traversal entirely.
    pub fn is_empty_interval(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Included(lo), Bound::Included(hi)) => lo > hi,
            (Bound::Included(lo), Bound::Excluded(hi))
            | (Bound::Excluded(lo), Bound::Included(hi))
            | (Bound::Excluded(lo), Bound::Excluded(hi)) => lo >= hi,
            _ => false,
        }
    }
}

impl fmt::Display for RangePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::Included(v) => write!(f, "{v} <= ")?,
            Bound::Excluded(v) => write!(f, "{v} < ")?,
            Bound::Unbounded => {}
        }
        write!(f, "col#{}", self.col.index())?;
        match &self.hi {
            Bound::Included(v) => write!(f, " <= {v}")?,
            Bound::Excluded(v) => write!(f, " < {v}")?,
            Bound::Unbounded => {}
        }
        if let Some(k) = self.limit {
            write!(f, " limit {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::library::graph_schema;

    #[test]
    fn containment_respects_bound_kinds() {
        let c = graph_schema().column("dst").unwrap();
        let half = RangePattern::half_open(c, Value::from(2), Value::from(5));
        assert!(!half.contains(&Value::from(1)));
        assert!(half.contains(&Value::from(2)));
        assert!(half.contains(&Value::from(4)));
        assert!(!half.contains(&Value::from(5)));

        let closed = RangePattern::closed(c, Value::from(2), Value::from(5));
        assert!(closed.contains(&Value::from(5)));

        let open = RangePattern::new(c, Bound::Excluded(Value::from(2)), Bound::Unbounded);
        assert!(!open.contains(&Value::from(2)));
        assert!(open.contains(&Value::from(3)));

        assert!(RangePattern::all(c).contains(&Value::from(i64::MIN)));
    }

    #[test]
    fn empty_intervals_detected() {
        let c = graph_schema().column("dst").unwrap();
        assert!(RangePattern::half_open(c, Value::from(5), Value::from(5)).is_empty_interval());
        assert!(RangePattern::closed(c, Value::from(6), Value::from(5)).is_empty_interval());
        assert!(!RangePattern::closed(c, Value::from(5), Value::from(5)).is_empty_interval());
        assert!(!RangePattern::all(c).is_empty_interval());
    }
}
