//! Untyped relational values.
//!
//! The paper assumes "a set of untyped values `v` drawn from a universe `V`
//! that includes the integers". [`Value`] is that universe: a small dynamic
//! enum with a total order and a hash, so it can serve both as container key
//! material and as lock-ordering material (lock order on node instances is
//! lexicographic on key-column values, §5.1 of the paper).

use std::fmt;
use std::sync::Arc;

/// A single untyped relational value.
///
/// `Value` is cheap to clone: strings are reference counted.
///
/// # Examples
///
/// ```
/// use relc_spec::Value;
///
/// let a = Value::from(42);
/// let b = Value::from("fs-node");
/// assert!(a < b); // integers order before strings
/// assert_eq!(a.as_int(), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// A unit value; used for columns that carry no data (e.g. set-like
    /// relations) and as the key of singleton container entries.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer. The common case in the paper's benchmarks
    /// (graph node ids, weights).
    Int(i64),
    /// An interned string (reference-counted, cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    ///
    /// # Examples
    ///
    /// ```
    /// use relc_spec::Value;
    /// assert_eq!(Value::from(7).as_int(), Some(7));
    /// assert_eq!(Value::from("x").as_int(), None);
    /// ```
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A stable small-integer tag used for cross-variant ordering and
    /// hashing-based lock striping.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// A cheap, deterministic 64-bit hash of the value, independent of the
    /// process's hash-map randomization. Used for lock striping (§4.4), where
    /// the stripe index must be a pure function of the tuple.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc_spec::Value;
    /// assert_eq!(Value::from(3).stable_hash(), Value::from(3).stable_hash());
    /// ```
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over the tag and payload bytes: deterministic across runs.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut step = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        step(self.tag());
        match self {
            Value::Unit => {}
            Value::Bool(b) => step(u8::from(*b)),
            Value::Int(i) => {
                for b in i.to_le_bytes() {
                    step(b);
                }
            }
            Value::Str(s) => {
                for b in s.as_bytes() {
                    step(*b);
                }
            }
        }
        h
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(5).as_int(), Some(5));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::from(5).as_str(), None);
        assert_eq!(Value::from(5).as_bool(), None);
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let vals = [
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(7),
            Value::from("a"),
            Value::from("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        assert_eq!(Value::from(3).stable_hash(), Value::from(3).stable_hash());
        assert_ne!(Value::from(3).stable_hash(), Value::from(4).stable_hash());
        assert_ne!(
            Value::from("3").stable_hash(),
            Value::from(3).stable_hash(),
            "string and int with same digits must differ"
        );
        assert_ne!(Value::Unit.stable_hash(), Value::Bool(false).stable_hash());
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            Value::Unit,
            Value::from(1),
            Value::from("x"),
            Value::from(true),
        ] {
            assert!(!format!("{v}").is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
    }
}
