//! The reference (oracle) relation: the paper's §2 semantics, executed
//! literally under one global lock.
//!
//! [`OracleRelation`] implements the four relational operations exactly as
//! specified ("we represent relations as ML-style references to a set of
//! tuples"), making every operation trivially linearizable. The synthesis
//! pipeline's tests compare every synthesized representation against this
//! oracle, and the linearizability checker uses it as the sequential
//! specification.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use crate::column::ColumnSet;
use crate::error::SpecError;
use crate::range::RangePattern;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A reference implementation of a concurrent relation: a mutex around a set
/// of tuples, with the §2 operation semantics.
///
/// # Examples
///
/// ```
/// use relc_spec::{library, OracleRelation, Value};
///
/// let schema = library::graph_schema();
/// let r = OracleRelation::empty(schema.clone());
/// let key = schema.tuple(&[("src", Value::from(1)), ("dst", Value::from(2))]).unwrap();
/// let payload = schema.tuple(&[("weight", Value::from(42))]).unwrap();
/// assert!(r.insert(&key, &payload).unwrap());
/// // A second insert with the same (src, dst) is a no-op: put-if-absent.
/// let payload2 = schema.tuple(&[("weight", Value::from(101))]).unwrap();
/// assert!(!r.insert(&key, &payload2).unwrap());
/// assert_eq!(r.len(), 1);
/// ```
#[derive(Debug)]
pub struct OracleRelation {
    schema: Arc<RelationSchema>,
    tuples: Mutex<BTreeSet<Tuple>>,
}

impl OracleRelation {
    /// `empty ()`: creates a new empty relation (§2).
    pub fn empty(schema: Arc<RelationSchema>) -> Self {
        OracleRelation {
            schema,
            tuples: Mutex::new(BTreeSet::new()),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// `insert r s t`: inserts `s ∪ t` provided no existing tuple extends
    /// `s`; returns whether the insertion happened (§2).
    ///
    /// This generalizes put-if-absent: the caller can test whether the
    /// functional dependencies would be preserved even under concurrency by
    /// putting the FD left-hand side in `s`.
    ///
    /// # Errors
    ///
    /// * [`SpecError::OverlappingInsertDomains`] if `s` and `t` share columns.
    /// * [`SpecError::NotAValuation`] if `s ∪ t` is not a full valuation.
    /// * [`SpecError::FdViolation`] if inserting would violate a declared FD
    ///   (eager check; the paper makes this a client obligation).
    pub fn insert(&self, s: &Tuple, t: &Tuple) -> Result<bool, SpecError> {
        if !s.dom().is_disjoint(t.dom()) {
            return Err(SpecError::OverlappingInsertDomains {
                shared: self
                    .schema
                    .catalog()
                    .render_set(s.dom().intersection(t.dom())),
            });
        }
        let merged = s.union(t).expect("disjoint domains cannot conflict");
        self.schema.check_valuation(&merged)?;

        let mut guard = self.tuples.lock().expect("oracle lock poisoned");
        if guard.iter().any(|u| u.extends(s)) {
            return Ok(false);
        }
        // Eager FD validation against the rest of the relation.
        for fd in self.schema.fds().iter() {
            let lhs = merged.project(fd.lhs());
            for u in guard.iter() {
                if u.project(fd.lhs()) == lhs && u.project(fd.rhs()) != merged.project(fd.rhs()) {
                    return Err(SpecError::FdViolation {
                        fd: fd.render(self.schema.catalog()),
                    });
                }
            }
        }
        guard.insert(merged);
        Ok(true)
    }

    /// `remove r s`: removes all tuples extending `s`, returning how many
    /// were removed (§2).
    ///
    /// The paper's implementation requires `s` to be a key; the oracle
    /// accepts any pattern so it can also serve as the sequential
    /// specification for generalized removals.
    pub fn remove(&self, s: &Tuple) -> usize {
        let mut guard = self.tuples.lock().expect("oracle lock poisoned");
        let before = guard.len();
        guard.retain(|t| !t.extends(s));
        before - guard.len()
    }

    /// `update r s t`: replaces the unique tuple `u ⊇ s` with `u ⊕ t`
    /// (right-biased override), returning the replaced tuple, or `None` if
    /// no tuple extends `s` (§2).
    ///
    /// Like the paper's implementation of `remove`, `s` must be a key, so
    /// at most one tuple matches; the updated columns must be disjoint
    /// from the key pattern (a tuple's identity does not change under
    /// `update` — remove and re-insert to move it).
    ///
    /// # Errors
    ///
    /// * [`SpecError::RemoveNotByKey`] if `dom s` is not a key;
    /// * [`SpecError::EmptyUpdate`] if `t` assigns nothing;
    /// * [`SpecError::UpdateOverlapsPattern`] if `t` assigns a column of
    ///   `dom s`.
    pub fn update(&self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, SpecError> {
        if t.is_empty() {
            return Err(SpecError::EmptyUpdate);
        }
        if !s.dom().is_disjoint(t.dom()) {
            return Err(SpecError::UpdateOverlapsPattern {
                shared: self
                    .schema
                    .catalog()
                    .render_set(s.dom().intersection(t.dom())),
            });
        }
        if !self.schema.is_key(s.dom()) {
            return Err(SpecError::RemoveNotByKey {
                dom: self.schema.catalog().render_set(s.dom()),
            });
        }
        let mut guard = self.tuples.lock().expect("oracle lock poisoned");
        let Some(old) = guard.iter().find(|u| u.extends(s)).cloned() else {
            return Ok(None);
        };
        guard.remove(&old);
        guard.insert(old.override_with(t));
        Ok(Some(old))
    }

    /// `query r s C`: returns `π_C {t ∈ r | t ⊇ s}` as a deduplicated,
    /// sorted vector (§2).
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Vec<Tuple> {
        let guard = self.tuples.lock().expect("oracle lock poisoned");
        let set: BTreeSet<Tuple> = guard
            .iter()
            .filter(|t| t.extends(s))
            .map(|t| t.project(cols))
            .collect();
        set.into_iter().collect()
    }

    /// `query_range r s ρ C`: the range-query reference semantics every
    /// synthesized representation must match.
    ///
    /// Matches every tuple `u ⊇ s` whose value in the range column lies
    /// inside `range`'s interval, orders the matches by **range-column
    /// value first, then projected tuple**, projects each onto `cols` in
    /// that order, deduplicates keeping first occurrences, and truncates
    /// at `range.limit()`. The ordering step is what distinguishes this
    /// from `query` + filter: `limit` selects the k *smallest* matches in
    /// range order, and projections are emitted in range order rather
    /// than projected-tuple order. The tie-break is the *projection*, not
    /// the full tuple, so a representation whose access path binds only
    /// the queried columns can reproduce the order exactly.
    pub fn query_range(&self, s: &Tuple, range: &RangePattern, cols: ColumnSet) -> Vec<Tuple> {
        let guard = self.tuples.lock().expect("oracle lock poisoned");
        let mut matched: Vec<(Value, Tuple)> = guard
            .iter()
            .filter(|t| t.extends(s))
            .filter_map(|t| {
                let v = t.get(range.col()).filter(|v| range.contains(v))?;
                Some((v.clone(), t.project(cols)))
            })
            .collect();
        matched.sort();
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (_, p) in matched {
            if seen.insert(p.clone()) {
                out.push(p);
                if range.limit().is_some_and(|k| out.len() >= k) {
                    break;
                }
            }
        }
        out
    }

    /// Number of tuples currently in the relation.
    pub fn len(&self) -> usize {
        self.tuples.lock().expect("oracle lock poisoned").len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the full tuple set, sorted.
    pub fn snapshot(&self) -> Vec<Tuple> {
        self.tuples
            .lock()
            .expect("oracle lock poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Replaces the contents wholesale (test setup helper).
    pub fn load<I: IntoIterator<Item = Tuple>>(&self, tuples: I) {
        let mut guard = self.tuples.lock().expect("oracle lock poisoned");
        guard.clear();
        guard.extend(tuples);
    }

    /// Checks that the current contents satisfy every declared FD.
    ///
    /// # Errors
    ///
    /// Returns the first violated FD as a [`SpecError::FdViolation`].
    pub fn check_fds(&self) -> Result<(), SpecError> {
        let guard = self.tuples.lock().expect("oracle lock poisoned");
        let tuples: Vec<&Tuple> = guard.iter().collect();
        for fd in self.schema.fds().iter() {
            for (i, a) in tuples.iter().enumerate() {
                for b in &tuples[i + 1..] {
                    if a.project(fd.lhs()) == b.project(fd.lhs())
                        && a.project(fd.rhs()) != b.project(fd.rhs())
                    {
                        return Err(SpecError::FdViolation {
                            fd: fd.render(self.schema.catalog()),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::library::graph_schema;
    use crate::value::Value;

    fn edge_key(r: &OracleRelation, s: i64, d: i64) -> Tuple {
        r.schema()
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
            .unwrap()
    }

    fn weight(r: &OracleRelation, w: i64) -> Tuple {
        r.schema().tuple(&[("weight", Value::from(w))]).unwrap()
    }

    #[test]
    fn paper_running_example() {
        // §2: insert ⟨src:1,dst:2⟩ ⟨weight:42⟩ then a conflicting insert is a no-op.
        let r = OracleRelation::empty(graph_schema());
        assert!(r.insert(&edge_key(&r, 1, 2), &weight(&r, 42)).unwrap());
        assert!(!r.insert(&edge_key(&r, 1, 2), &weight(&r, 101)).unwrap());
        assert_eq!(r.len(), 1);
        let snap = r.snapshot();
        assert_eq!(
            snap[0].get(r.schema().column("weight").unwrap()),
            Some(&Value::from(42))
        );
    }

    #[test]
    fn query_projects_and_dedupes() {
        let r = OracleRelation::empty(graph_schema());
        r.insert(&edge_key(&r, 1, 2), &weight(&r, 10)).unwrap();
        r.insert(&edge_key(&r, 1, 3), &weight(&r, 10)).unwrap();
        r.insert(&edge_key(&r, 2, 3), &weight(&r, 10)).unwrap();
        let src1 = r.schema().tuple(&[("src", Value::from(1))]).unwrap();
        let dw = r.schema().column_set(&["dst", "weight"]).unwrap();
        let res = r.query(&src1, dw);
        assert_eq!(res.len(), 2);
        // projecting to just weight dedupes
        let w = r.schema().column_set(&["weight"]).unwrap();
        let res = r.query(&Tuple::empty(), w);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn remove_by_pattern() {
        let r = OracleRelation::empty(graph_schema());
        r.insert(&edge_key(&r, 1, 2), &weight(&r, 10)).unwrap();
        r.insert(&edge_key(&r, 3, 2), &weight(&r, 11)).unwrap();
        r.insert(&edge_key(&r, 3, 4), &weight(&r, 12)).unwrap();
        // §2: "delete edges with a dst of 2"
        let dst2 = r.schema().tuple(&[("dst", Value::from(2))]).unwrap();
        assert_eq!(r.remove(&dst2), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.remove(&dst2), 0);
    }

    #[test]
    fn insert_rejects_overlapping_domains() {
        let r = OracleRelation::empty(graph_schema());
        let s = r
            .schema()
            .tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])
            .unwrap();
        let t = r
            .schema()
            .tuple(&[("dst", Value::from(2)), ("weight", Value::from(3))])
            .unwrap();
        assert!(matches!(
            r.insert(&s, &t),
            Err(SpecError::OverlappingInsertDomains { .. })
        ));
    }

    #[test]
    fn insert_rejects_partial_tuples() {
        let r = OracleRelation::empty(graph_schema());
        let s = r.schema().tuple(&[("src", Value::from(1))]).unwrap();
        let t = r.schema().tuple(&[("weight", Value::from(3))]).unwrap();
        assert!(matches!(
            r.insert(&s, &t),
            Err(SpecError::NotAValuation { .. })
        ));
    }

    #[test]
    fn insert_detects_fd_violation_when_key_not_in_s() {
        let r = OracleRelation::empty(graph_schema());
        r.insert(&edge_key(&r, 1, 2), &weight(&r, 10)).unwrap();
        // keying only on src: (1,3) does not clash with (1,2) on the FD,
        // inserting is fine
        let s = r.schema().tuple(&[("src", Value::from(1))]).unwrap();
        let t = r
            .schema()
            .tuple(&[("dst", Value::from(3)), ("weight", Value::from(9))])
            .unwrap();
        // no tuple extends ⟨src:1⟩? one does — put-if-absent refuses.
        assert!(!r.insert(&s, &t).unwrap());
        // keying on weight only: (1,2,77) violates src,dst→weight vs (1,2,10)
        let s = r.schema().tuple(&[("weight", Value::from(77))]).unwrap();
        let t = edge_key(&r, 1, 2);
        assert!(matches!(
            r.insert(&s, &t),
            Err(SpecError::FdViolation { .. })
        ));
    }

    #[test]
    fn check_fds_detects_violations_after_load() {
        let r = OracleRelation::empty(graph_schema());
        let mk = |s: i64, d: i64, w: i64| {
            r.schema()
                .tuple(&[
                    ("src", Value::from(s)),
                    ("dst", Value::from(d)),
                    ("weight", Value::from(w)),
                ])
                .unwrap()
        };
        r.load([mk(1, 2, 10), mk(1, 2, 20)]);
        assert!(r.check_fds().is_err());
        r.load([mk(1, 2, 10), mk(2, 1, 20)]);
        assert!(r.check_fds().is_ok());
    }

    #[test]
    fn query_range_orders_limits_and_dedupes() {
        let r = OracleRelation::empty(graph_schema());
        r.insert(&edge_key(&r, 1, 5), &weight(&r, 50)).unwrap();
        r.insert(&edge_key(&r, 1, 2), &weight(&r, 20)).unwrap();
        r.insert(&edge_key(&r, 2, 3), &weight(&r, 20)).unwrap();
        r.insert(&edge_key(&r, 1, 3), &weight(&r, 30)).unwrap();
        let dst = r.schema().column("dst").unwrap();
        let src1 = r.schema().tuple(&[("src", Value::from(1))]).unwrap();
        let dcols = r.schema().column_set(&["dst"]).unwrap();
        // 2 ≤ dst < 5 with src = 1: dst ∈ {2, 3}, in range order.
        let rng = crate::RangePattern::half_open(dst, Value::from(2), Value::from(5));
        let got = r.query_range(&src1, &rng, dcols);
        let dval = |t: &Tuple| t.get(dst).unwrap().as_int().unwrap();
        assert_eq!(got.iter().map(dval).collect::<Vec<_>>(), vec![2, 3]);
        // Projection onto weight dedupes: dst ∈ {2,3} over all srcs maps
        // to weights {20, 20, 30} → [20, 30] in range order.
        let wcols = r.schema().column_set(&["weight"]).unwrap();
        let got = r.query_range(&Tuple::empty(), &rng, wcols);
        assert_eq!(got.len(), 2);
        // limit takes the smallest matches in range order.
        let top1 = crate::RangePattern::all(dst).with_limit(1);
        let got = r.query_range(&src1, &top1, dcols);
        assert_eq!(got.iter().map(dval).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn empty_relation_properties() {
        let r = OracleRelation::empty(graph_schema());
        assert!(r.is_empty());
        assert_eq!(r.query(&Tuple::empty(), r.schema().columns()), vec![]);
        assert_eq!(r.remove(&Tuple::empty()), 0);
    }
}
