//! # relc-spec — relational specifications for data representation synthesis
//!
//! This crate is the foundation of `relc-rs`, a Rust reproduction of
//! *Concurrent Data Representation Synthesis* (Hawkins, Aiken, Fisher,
//! Rinard, Sagiv — PLDI 2012). It defines the *relational specification*
//! layer (§2 of the paper):
//!
//! * [`Value`] — the untyped value universe;
//! * [`ColumnId`], [`ColumnSet`], [`Catalog`] — interned column names and
//!   bitmask column sets;
//! * [`Tuple`] — finite maps from columns to values, with the paper's
//!   `⊇` (extends) and `∼` (matches) relations;
//! * [`RangePattern`] — one-column interval predicates (with optional
//!   top-k limit) for range queries;
//! * [`FunctionalDependency`], [`FdSet`] — FDs with attribute closure and
//!   key inference;
//! * [`RelationSchema`] — a specification (columns + FDs), built with
//!   [`SchemaBuilder`];
//! * [`OracleRelation`] — the literal §2 semantics under one global lock,
//!   used as the test/linearizability oracle for every synthesized
//!   representation.
//!
//! # Example
//!
//! ```
//! use relc_spec::{library, OracleRelation, Tuple, Value};
//!
//! let schema = library::graph_schema(); // {src, dst, weight}, src,dst → weight
//! let r = OracleRelation::empty(schema.clone());
//!
//! let key = schema.tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
//! let payload = schema.tuple(&[("weight", Value::from(42))])?;
//! assert!(r.insert(&key, &payload)?);
//!
//! let successors_of_1 = r.query(
//!     &schema.tuple(&[("src", Value::from(1))])?,
//!     schema.column_set(&["dst", "weight"])?,
//! );
//! assert_eq!(successors_of_1.len(), 1);
//! # Ok::<(), relc_spec::SpecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod column;
mod error;
mod fd;
mod oracle;
mod range;
mod schema;
mod tuple;
mod value;

pub use column::{Catalog, ColumnId, ColumnSet, ColumnSetIter};
pub use error::SpecError;
pub use fd::{FdSet, FunctionalDependency};
pub use oracle::OracleRelation;
pub use range::RangePattern;
pub use schema::{library, RelationSchema, SchemaBuilder};
pub use tuple::{Tuple, TupleMergeError};
pub use value::Value;
