//! Relational specifications: a column catalog plus functional dependencies.
//!
//! "A relational specification is a set of column names C together with a set
//! of functional dependencies Δ" (§2). The specification is the contract
//! between the client and the synthesized code.

use std::fmt;
use std::sync::Arc;

use crate::column::{Catalog, ColumnId, ColumnSet};
use crate::error::SpecError;
use crate::fd::{FdSet, FunctionalDependency};
use crate::tuple::Tuple;
use crate::value::Value;

/// A relational specification (schema): columns and functional dependencies.
///
/// Schemas are immutable once built (see [`SchemaBuilder`]) and shared via
/// [`Arc`] between the compiler, decompositions, and runtime relations.
///
/// # Examples
///
/// ```
/// use relc_spec::{RelationSchema, Value};
///
/// let schema = RelationSchema::builder()
///     .column("src")
///     .column("dst")
///     .column("weight")
///     .fd(&["src", "dst"], &["weight"])
///     .build();
/// let t = schema.tuple(&[("src", Value::from(1)), ("dst", Value::from(2))]).unwrap();
/// assert!(schema.is_key(t.dom())); // src, dst → weight makes (src, dst) a key
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    catalog: Catalog,
    columns: ColumnSet,
    fds: FdSet,
}

impl RelationSchema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// The column catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All columns of the relation.
    pub fn columns(&self) -> ColumnSet {
        self.columns
    }

    /// The functional dependencies.
    pub fn fds(&self) -> &FdSet {
        &self.fds
    }

    /// Looks up a column id by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownColumn`] if `name` is not in the catalog.
    pub fn column(&self, name: &str) -> Result<ColumnId, SpecError> {
        self.catalog
            .lookup(name)
            .ok_or_else(|| SpecError::UnknownColumn(name.to_owned()))
    }

    /// Builds a [`ColumnSet`] from column names.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownColumn`] for any unknown name.
    pub fn column_set(&self, names: &[&str]) -> Result<ColumnSet, SpecError> {
        let mut s = ColumnSet::new();
        for n in names {
            s.insert(self.column(n)?);
        }
        Ok(s)
    }

    /// Builds a [`Tuple`] from `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownColumn`] for any unknown name.
    pub fn tuple(&self, fields: &[(&str, Value)]) -> Result<Tuple, SpecError> {
        let mut pairs = Vec::with_capacity(fields.len());
        for (n, v) in fields {
            pairs.push((self.column(n)?, v.clone()));
        }
        Ok(Tuple::from_pairs(pairs))
    }

    /// Whether `cols` functionally determines all columns (i.e. is a key).
    pub fn is_key(&self, cols: ColumnSet) -> bool {
        self.fds.is_key(cols, self.columns)
    }

    /// The attribute closure of `cols` under the schema's FDs, intersected
    /// with the schema's columns.
    pub fn closure(&self, cols: ColumnSet) -> ColumnSet {
        self.fds.closure(cols).intersection(self.columns)
    }

    /// A canonical minimal key: the deterministic result of dropping, in
    /// column order, every column whose removal leaves a key. Shard
    /// routers partition on this set — any tuple's placement is a pure
    /// function of its projection onto the canonical key, and any
    /// operation that binds all of these columns can be routed to exactly
    /// one partition.
    pub fn canonical_key(&self) -> ColumnSet {
        let mut key = self.columns;
        for c in self.columns.iter() {
            let without = key.difference(ColumnSet::single(c));
            if self.fds.is_key(without, self.columns) {
                key = without;
            }
        }
        key
    }

    /// Validates that `t` is a full valuation of the schema's columns.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NotAValuation`] otherwise.
    pub fn check_valuation(&self, t: &Tuple) -> Result<(), SpecError> {
        if t.is_valuation_for(self.columns) {
            Ok(())
        } else {
            Err(SpecError::NotAValuation {
                dom: self.catalog.render_set(t.dom()),
                expected: self.catalog.render_set(self.columns),
            })
        }
    }

    /// Human-readable description of the schema.
    pub fn describe(&self) -> String {
        let mut s = format!("columns {}", self.catalog.render_set(self.columns));
        for fd in self.fds.iter() {
            s.push_str(&format!("; {}", fd.render(&self.catalog)));
        }
        s
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Builder for [`RelationSchema`] (see [`RelationSchema::builder`]).
#[derive(Debug, Clone, Default)]
pub struct SchemaBuilder {
    catalog: Catalog,
    fds: Vec<(Vec<String>, Vec<String>)>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Declares a column.
    pub fn column(mut self, name: &str) -> Self {
        self.catalog.intern(name);
        self
    }

    /// Declares a functional dependency `lhs → rhs` by column names.
    /// Columns mentioned here are interned if not yet declared.
    pub fn fd(mut self, lhs: &[&str], rhs: &[&str]) -> Self {
        for n in lhs.iter().chain(rhs) {
            self.catalog.intern(n);
        }
        self.fds.push((
            lhs.iter().map(|s| (*s).to_owned()).collect(),
            rhs.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Arc<RelationSchema> {
        let columns = self.catalog.all();
        let mut fds = FdSet::new();
        for (lhs, rhs) in &self.fds {
            let to_set = |names: &Vec<String>| {
                names
                    .iter()
                    .map(|n| self.catalog.lookup(n).expect("interned above"))
                    .collect::<ColumnSet>()
            };
            fds.push(FunctionalDependency::new(to_set(lhs), to_set(rhs)));
        }
        Arc::new(RelationSchema {
            catalog: self.catalog,
            columns,
            fds,
        })
    }
}

/// Ready-made schemas used throughout the paper and this repository.
pub mod library {
    use super::*;

    /// The paper's running example (§2): a directed, weighted graph.
    ///
    /// Columns `{src, dst, weight}` with FD `src, dst → weight`.
    pub fn graph_schema() -> Arc<RelationSchema> {
        RelationSchema::builder()
            .column("src")
            .column("dst")
            .column("weight")
            .fd(&["src", "dst"], &["weight"])
            .build()
    }

    /// The filesystem directory-tree relation of Fig. 2: columns
    /// `{parent, name, child}` with FD `parent, name → child`.
    pub fn dcache_schema() -> Arc<RelationSchema> {
        RelationSchema::builder()
            .column("parent")
            .column("name")
            .column("child")
            .fd(&["parent", "name"], &["child"])
            .build()
    }

    /// A simple concurrent key-value map, the degenerate relation the paper
    /// uses to explain `insert` as put-if-absent: columns `{key, value}` with
    /// FD `key → value`.
    pub fn kv_schema() -> Arc<RelationSchema> {
        RelationSchema::builder()
            .column("key")
            .column("value")
            .fd(&["key"], &["value"])
            .build()
    }

    /// A process-scheduler relation in the spirit of the sequential RelC
    /// paper's motivating example: `{pid, cpu, state}` with FD `pid → cpu,
    /// state`.
    pub fn scheduler_schema() -> Arc<RelationSchema> {
        RelationSchema::builder()
            .column("pid")
            .column("cpu")
            .column("state")
            .fd(&["pid"], &["cpu", "state"])
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    #[test]
    fn builder_interns_and_orders_columns() {
        let s = graph_schema();
        assert_eq!(s.catalog().len(), 3);
        assert_eq!(s.column("src").unwrap().index(), 0);
        assert_eq!(s.column("weight").unwrap().index(), 2);
        assert!(s.column("nope").is_err());
        assert_eq!(s.columns().len(), 3);
    }

    #[test]
    fn fd_and_keys() {
        let s = graph_schema();
        let sd = s.column_set(&["src", "dst"]).unwrap();
        assert!(s.is_key(sd));
        assert!(!s.is_key(s.column_set(&["src"]).unwrap()));
        assert_eq!(s.closure(sd), s.columns());
    }

    #[test]
    fn tuple_builder_and_valuation_check() {
        let s = graph_schema();
        let full = s
            .tuple(&[
                ("src", Value::from(1)),
                ("dst", Value::from(2)),
                ("weight", Value::from(42)),
            ])
            .unwrap();
        assert!(s.check_valuation(&full).is_ok());
        let partial = s.tuple(&[("src", Value::from(1))]).unwrap();
        let err = s.check_valuation(&partial).unwrap_err();
        assert!(format!("{err}").contains("valuation"));
    }

    #[test]
    fn fd_declares_columns_implicitly() {
        let s = RelationSchema::builder().fd(&["a"], &["b"]).build();
        assert_eq!(s.catalog().len(), 2);
        assert!(s.is_key(s.column_set(&["a"]).unwrap()));
    }

    #[test]
    fn library_schemas_are_well_formed() {
        for s in [
            graph_schema(),
            dcache_schema(),
            kv_schema(),
            scheduler_schema(),
        ] {
            assert!(!s.columns().is_empty());
            assert!(!s.describe().is_empty());
            assert!(!format!("{s}").is_empty());
        }
        // dcache: parent,name is a key
        let d = dcache_schema();
        assert!(d.is_key(d.column_set(&["parent", "name"]).unwrap()));
        // scheduler: pid determines everything
        let sch = scheduler_schema();
        assert!(sch.is_key(sch.column_set(&["pid"]).unwrap()));
    }
}
