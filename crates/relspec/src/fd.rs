//! Functional dependencies and their closure.
//!
//! "A relation r has a functional dependency C1 → C2 if any pair of tuples in
//! r that are equal on columns C1 are also equal on columns C2" (§2). The
//! synthesis compiler uses FDs in two places: to decide which decomposition
//! edges are singletons (at most one entry per container), and to check that
//! `remove`'s argument is a key.

use std::fmt;

use crate::column::{Catalog, ColumnSet};

/// A functional dependency `lhs → rhs`.
///
/// # Examples
///
/// ```
/// use relc_spec::{Catalog, ColumnSet, FunctionalDependency};
///
/// let mut cat = Catalog::new();
/// let src = cat.intern("src");
/// let dst = cat.intern("dst");
/// let weight = cat.intern("weight");
/// let fd = FunctionalDependency::new(
///     ColumnSet::from_iter([src, dst]),
///     ColumnSet::single(weight),
/// );
/// assert_eq!(fd.lhs().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    lhs: ColumnSet,
    rhs: ColumnSet,
}

impl FunctionalDependency {
    /// Creates `lhs → rhs`.
    pub fn new(lhs: ColumnSet, rhs: ColumnSet) -> Self {
        FunctionalDependency { lhs, rhs }
    }

    /// The determining columns.
    pub fn lhs(&self) -> ColumnSet {
        self.lhs
    }

    /// The determined columns.
    pub fn rhs(&self) -> ColumnSet {
        self.rhs
    }

    /// Whether the dependency is trivial (`rhs ⊆ lhs`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// Renders with column names, e.g. `src, dst → weight`.
    pub fn render(&self, catalog: &Catalog) -> String {
        let side = |s: ColumnSet| {
            s.iter()
                .map(|c| catalog.name(c).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!("{} → {}", side(self.lhs), side(self.rhs))
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} → {:?}", self.lhs, self.rhs)
    }
}

/// A set of functional dependencies with closure queries.
///
/// # Examples
///
/// ```
/// use relc_spec::{Catalog, ColumnSet, FdSet, FunctionalDependency};
///
/// let mut cat = Catalog::new();
/// let (a, b, c) = (cat.intern("a"), cat.intern("b"), cat.intern("c"));
/// let fds = FdSet::from_iter([
///     FunctionalDependency::new(ColumnSet::single(a), ColumnSet::single(b)),
///     FunctionalDependency::new(ColumnSet::single(b), ColumnSet::single(c)),
/// ]);
/// // a⁺ = {a, b, c} by transitivity
/// let closure = fds.closure(ColumnSet::single(a));
/// assert!(closure.contains(b) && closure.contains(c));
/// assert!(fds.is_key(ColumnSet::single(a), cat.all()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<FunctionalDependency>,
}

impl FdSet {
    /// Creates an empty FD set.
    pub fn new() -> Self {
        FdSet { fds: Vec::new() }
    }

    /// Adds a dependency.
    pub fn push(&mut self, fd: FunctionalDependency) {
        self.fds.push(fd);
    }

    /// The dependencies, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionalDependency> + '_ {
        self.fds.iter()
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The attribute closure `cols⁺` under these dependencies (the standard
    /// fixpoint over Armstrong's axioms).
    pub fn closure(&self, cols: ColumnSet) -> ColumnSet {
        let mut acc = cols;
        loop {
            let mut changed = false;
            for fd in &self.fds {
                if fd.lhs.is_subset(acc) && !fd.rhs.is_subset(acc) {
                    acc = acc.union(fd.rhs);
                    changed = true;
                }
            }
            if !changed {
                return acc;
            }
        }
    }

    /// Whether `cols` functionally determines `target` (`target ⊆ cols⁺`).
    pub fn determines(&self, cols: ColumnSet, target: ColumnSet) -> bool {
        target.is_subset(self.closure(cols))
    }

    /// Whether `cols` is a key for a relation over `all_columns`.
    ///
    /// A tuple `t` is a key for `r` if `dom t` functionally determines all
    /// columns of `r` (§2).
    pub fn is_key(&self, cols: ColumnSet, all_columns: ColumnSet) -> bool {
        all_columns.is_subset(self.closure(cols))
    }

    /// Whether `cols` is a *minimal* key for `all_columns`: a key none of
    /// whose proper subsets is a key.
    pub fn is_minimal_key(&self, cols: ColumnSet, all_columns: ColumnSet) -> bool {
        if !self.is_key(cols, all_columns) {
            return false;
        }
        for c in cols.iter() {
            let mut smaller = cols;
            smaller.remove(c);
            if self.is_key(smaller, all_columns) {
                return false;
            }
        }
        true
    }
}

impl FromIterator<FunctionalDependency> for FdSet {
    fn from_iter<T: IntoIterator<Item = FunctionalDependency>>(iter: T) -> Self {
        FdSet {
            fds: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnId;

    fn cs(ids: &[usize]) -> ColumnSet {
        ids.iter().map(|&i| ColumnId::from_index(i)).collect()
    }

    fn fd(l: &[usize], r: &[usize]) -> FunctionalDependency {
        FunctionalDependency::new(cs(l), cs(r))
    }

    #[test]
    fn closure_reflexive() {
        let fds = FdSet::new();
        assert_eq!(fds.closure(cs(&[0, 1])), cs(&[0, 1]));
    }

    #[test]
    fn closure_transitive_chain() {
        let fds = FdSet::from_iter([fd(&[0], &[1]), fd(&[1], &[2]), fd(&[2], &[3])]);
        assert_eq!(fds.closure(cs(&[0])), cs(&[0, 1, 2, 3]));
        assert_eq!(fds.closure(cs(&[2])), cs(&[2, 3]));
    }

    #[test]
    fn closure_requires_full_lhs() {
        let fds = FdSet::from_iter([fd(&[0, 1], &[2])]);
        assert_eq!(fds.closure(cs(&[0])), cs(&[0]));
        assert_eq!(fds.closure(cs(&[0, 1])), cs(&[0, 1, 2]));
    }

    #[test]
    fn graph_spec_keys() {
        // src, dst → weight  (the paper's running example)
        let fds = FdSet::from_iter([fd(&[0, 1], &[2])]);
        let all = cs(&[0, 1, 2]);
        assert!(fds.is_key(cs(&[0, 1]), all));
        assert!(fds.is_key(cs(&[0, 1, 2]), all));
        assert!(!fds.is_key(cs(&[0]), all));
        assert!(!fds.is_key(cs(&[2]), all));
        assert!(fds.is_minimal_key(cs(&[0, 1]), all));
        assert!(!fds.is_minimal_key(cs(&[0, 1, 2]), all));
    }

    #[test]
    fn determines() {
        let fds = FdSet::from_iter([fd(&[0], &[1, 2])]);
        assert!(fds.determines(cs(&[0]), cs(&[2])));
        assert!(!fds.determines(cs(&[1]), cs(&[0])));
        assert!(fds.determines(cs(&[1]), cs(&[])), "anything determines ∅");
    }

    #[test]
    fn trivial_fd() {
        assert!(fd(&[0, 1], &[1]).is_trivial());
        assert!(!fd(&[0], &[1]).is_trivial());
    }

    #[test]
    fn render_uses_names() {
        let mut cat = Catalog::new();
        cat.intern("src");
        cat.intern("dst");
        cat.intern("weight");
        let f = fd(&[0, 1], &[2]);
        assert_eq!(f.render(&cat), "src, dst → weight");
    }
}
