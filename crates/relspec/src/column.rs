//! Column names, interned column identifiers, and column sets.
//!
//! A relational specification is "a set of column names C together with a set
//! of functional dependencies Δ" (§2). Column names are interned into dense
//! [`ColumnId`]s by a [`Catalog`] so that sets of columns can be represented
//! as 64-bit masks ([`ColumnSet`]), which the planner manipulates constantly.

use std::fmt;
use std::sync::Arc;

/// An interned column identifier, dense from `0..Catalog::len()`.
///
/// # Examples
///
/// ```
/// use relc_spec::Catalog;
///
/// let mut cat = Catalog::new();
/// let src = cat.intern("src");
/// assert_eq!(cat.name(src), "src");
/// assert_eq!(cat.intern("src"), src); // idempotent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId(pub(crate) u8);

impl ColumnId {
    /// The dense index of this column within its [`Catalog`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ColumnId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ColumnSet::MAX_COLUMNS`.
    pub fn from_index(index: usize) -> Self {
        assert!(
            index < ColumnSet::MAX_COLUMNS,
            "column index {index} out of range"
        );
        ColumnId(index as u8)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A set of columns, represented as a 64-bit mask.
///
/// Supports the usual set algebra; iteration yields columns in ascending
/// `ColumnId` order, which is also the canonical order of tuple fields.
///
/// # Examples
///
/// ```
/// use relc_spec::{ColumnId, ColumnSet};
///
/// let a = ColumnSet::from_iter([ColumnId::from_index(0), ColumnId::from_index(2)]);
/// let b = ColumnSet::single(ColumnId::from_index(2));
/// assert!(b.is_subset(a));
/// assert_eq!(a.difference(b).len(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColumnSet(u64);

impl ColumnSet {
    /// Maximum number of distinct columns a catalog may hold.
    pub const MAX_COLUMNS: usize = 64;

    /// The empty column set.
    pub const EMPTY: ColumnSet = ColumnSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        ColumnSet(0)
    }

    /// Creates a singleton set.
    pub fn single(c: ColumnId) -> Self {
        ColumnSet(1u64 << c.0)
    }

    /// Creates the set of the first `n` columns `{0, 1, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_COLUMNS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::MAX_COLUMNS);
        if n == 64 {
            ColumnSet(u64::MAX)
        } else {
            ColumnSet((1u64 << n) - 1)
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of columns in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `c` is a member.
    pub fn contains(self, c: ColumnId) -> bool {
        self.0 & (1u64 << c.0) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 & !other.0)
    }

    /// Adds a column, returning the new set.
    #[must_use]
    pub fn with(self, c: ColumnId) -> ColumnSet {
        ColumnSet(self.0 | (1u64 << c.0))
    }

    /// Inserts a column in place.
    pub fn insert(&mut self, c: ColumnId) {
        self.0 |= 1u64 << c.0;
    }

    /// Removes a column in place.
    pub fn remove(&mut self, c: ColumnId) {
        self.0 &= !(1u64 << c.0);
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(self, other: ColumnSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(self, other: ColumnSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets share no columns.
    pub fn is_disjoint(self, other: ColumnSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over members in ascending order.
    pub fn iter(self) -> ColumnSetIter {
        ColumnSetIter(self.0)
    }

    /// The raw bitmask (stable; used by tests and debugging tools).
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl FromIterator<ColumnId> for ColumnSet {
    fn from_iter<T: IntoIterator<Item = ColumnId>>(iter: T) -> Self {
        let mut s = ColumnSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl IntoIterator for ColumnSet {
    type Item = ColumnId;
    type IntoIter = ColumnSetIter;
    fn into_iter(self) -> ColumnSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`ColumnSet`], ascending.
#[derive(Debug, Clone)]
pub struct ColumnSetIter(u64);

impl Iterator for ColumnSetIter {
    type Item = ColumnId;
    fn next(&mut self) -> Option<ColumnId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as u8;
            self.0 &= self.0 - 1;
            Some(ColumnId(i))
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ColumnSetIter {}

impl fmt::Debug for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// An interning catalog of column names.
///
/// Shared (via `Arc`) between a schema, its decompositions, and its runtime
/// relations so that `ColumnId`s mean the same thing everywhere.
///
/// # Examples
///
/// ```
/// use relc_spec::Catalog;
///
/// let mut cat = Catalog::new();
/// let src = cat.intern("src");
/// let dst = cat.intern("dst");
/// assert_ne!(src, dst);
/// assert_eq!(cat.len(), 2);
/// assert_eq!(cat.lookup("src"), Some(src));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    names: Vec<Arc<str>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog { names: Vec::new() }
    }

    /// Interns `name`, returning its id; idempotent.
    ///
    /// # Panics
    ///
    /// Panics if more than [`ColumnSet::MAX_COLUMNS`] distinct names are
    /// interned.
    pub fn intern(&mut self, name: &str) -> ColumnId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        assert!(
            self.names.len() < ColumnSet::MAX_COLUMNS,
            "catalog overflow: more than {} columns",
            ColumnSet::MAX_COLUMNS
        );
        self.names.push(Arc::from(name));
        ColumnId((self.names.len() - 1) as u8)
    }

    /// Finds an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<ColumnId> {
        self.names
            .iter()
            .position(|n| &**n == name)
            .map(|i| ColumnId(i as u8))
    }

    /// The name of a column id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this catalog.
    pub fn name(&self, id: ColumnId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned columns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The set of all columns in the catalog.
    pub fn all(&self) -> ColumnSet {
        ColumnSet::first_n(self.names.len())
    }

    /// Renders a column set with human-readable names, e.g. `{src, dst}`.
    pub fn render_set(&self, set: ColumnSet) -> String {
        let mut s = String::from("{");
        for (i, c) in set.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(self.name(c));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(ids: &[usize]) -> ColumnSet {
        ids.iter().map(|&i| ColumnId::from_index(i)).collect()
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let b = cat.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(cat.intern("a"), a);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.name(a), "a");
    }

    #[test]
    fn set_algebra() {
        let a = cols(&[0, 1, 2]);
        let b = cols(&[1, 3]);
        assert_eq!(a.union(b), cols(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), cols(&[1]));
        assert_eq!(a.difference(b), cols(&[0, 2]));
        assert!(cols(&[1]).is_subset(a));
        assert!(!b.is_subset(a));
        assert!(a.is_superset(cols(&[0])));
        assert!(cols(&[0]).is_disjoint(cols(&[1])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn iteration_is_sorted_and_exact() {
        let s = cols(&[5, 1, 9]);
        let v: Vec<usize> = s.iter().map(ColumnId::index).collect();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(s.iter().len(), 3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn first_n_and_all() {
        assert_eq!(ColumnSet::first_n(0), ColumnSet::EMPTY);
        assert_eq!(ColumnSet::first_n(3), cols(&[0, 1, 2]));
        assert_eq!(ColumnSet::first_n(64).len(), 64);
        let mut cat = Catalog::new();
        cat.intern("x");
        cat.intern("y");
        assert_eq!(cat.all(), cols(&[0, 1]));
    }

    #[test]
    fn insert_remove() {
        let mut s = ColumnSet::new();
        assert!(s.is_empty());
        s.insert(ColumnId::from_index(4));
        assert!(s.contains(ColumnId::from_index(4)));
        s.remove(ColumnId::from_index(4));
        assert!(s.is_empty());
    }

    #[test]
    fn render_set_names() {
        let mut cat = Catalog::new();
        let a = cat.intern("src");
        let b = cat.intern("dst");
        assert_eq!(cat.render_set(ColumnSet::from_iter([a, b])), "{src, dst}");
        assert_eq!(cat.render_set(ColumnSet::EMPTY), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_index_range_checked() {
        let _ = ColumnId::from_index(64);
    }

    #[test]
    fn debug_set_formatting() {
        let s = cols(&[0, 2]);
        let dbg = format!("{s:?}");
        assert!(
            dbg.contains("ColumnId(0)") && dbg.contains("ColumnId(2)"),
            "{dbg}"
        );
    }
}
