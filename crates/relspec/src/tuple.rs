//! Tuples: finite maps from columns to values.
//!
//! A tuple `t = ⟨c1: v1, c2: v2, ...⟩` maps a set of columns to values (§2).
//! [`Tuple`] stores fields sorted by [`ColumnId`], giving canonical equality,
//! a total order (used for the lexicographic part of the global lock order,
//! §5.1), and O(log n) field access.

use std::cmp::Ordering;
use std::fmt;

use crate::column::{Catalog, ColumnId, ColumnSet};
use crate::value::Value;

/// A tuple: a finite map from columns to [`Value`]s, sorted by column.
///
/// # Examples
///
/// ```
/// use relc_spec::{Tuple, Value, ColumnId};
///
/// let src = ColumnId::from_index(0);
/// let dst = ColumnId::from_index(1);
/// let t = Tuple::from_pairs([(src, Value::from(1)), (dst, Value::from(2))]);
/// assert_eq!(t.get(src), Some(&Value::from(1)));
/// assert_eq!(t.dom().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    /// Sorted by `ColumnId`, no duplicates.
    fields: Vec<(ColumnId, Value)>,
}

impl Tuple {
    /// The empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// Builds a tuple from `(column, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same column appears twice with different values.
    pub fn from_pairs<I: IntoIterator<Item = (ColumnId, Value)>>(pairs: I) -> Self {
        let mut fields: Vec<(ColumnId, Value)> = pairs.into_iter().collect();
        fields.sort_by_key(|(c, _)| *c);
        for w in fields.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 == w[1].1,
                    "duplicate column {:?} with conflicting values",
                    w[0].0
                );
            }
        }
        fields.dedup_by(|a, b| a.0 == b.0);
        Tuple { fields }
    }

    /// The columns of the tuple, `dom t`.
    pub fn dom(&self) -> ColumnSet {
        self.fields.iter().map(|(c, _)| *c).collect()
    }

    /// Whether the tuple is a valuation for `cols`, i.e. `dom t = cols`.
    pub fn is_valuation_for(&self, cols: ColumnSet) -> bool {
        self.dom() == cols
    }

    /// The value of column `c`, if present.
    pub fn get(&self, c: ColumnId) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&c, |(k, _)| *k)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over `(column, value)` pairs in ascending column order.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &Value)> + '_ {
        self.fields.iter().map(|(c, v)| (*c, v))
    }

    /// Projection `π_C t`: restricts the tuple to the columns in `cols`.
    ///
    /// Columns in `cols` that are absent from `t` are silently dropped
    /// (standard relational projection semantics on partial tuples).
    #[must_use]
    pub fn project(&self, cols: ColumnSet) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .filter(|(c, _)| cols.contains(*c))
                .cloned()
                .collect(),
        }
    }

    /// Whether `self ⊇ other`: `self` extends `other`, agreeing on all of
    /// `other`'s columns.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc_spec::{Tuple, Value, ColumnId};
    /// let c0 = ColumnId::from_index(0);
    /// let c1 = ColumnId::from_index(1);
    /// let big = Tuple::from_pairs([(c0, Value::from(1)), (c1, Value::from(2))]);
    /// let small = Tuple::from_pairs([(c0, Value::from(1))]);
    /// assert!(big.extends(&small));
    /// assert!(!small.extends(&big));
    /// ```
    pub fn extends(&self, other: &Tuple) -> bool {
        other.fields.iter().all(|(c, v)| self.get(*c) == Some(v))
    }

    /// Whether `self ∼ other`: the tuples agree on all *common* columns.
    pub fn matches(&self, other: &Tuple) -> bool {
        // Merge-walk both sorted field lists.
        let (mut i, mut j) = (0, 0);
        while i < self.fields.len() && j < other.fields.len() {
            match self.fields[i].0.cmp(&other.fields[j].0) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    if self.fields[i].1 != other.fields[j].1 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Union of two tuples with disjoint or agreeing domains.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the tuples disagree on a shared column.
    pub fn union(&self, other: &Tuple) -> Result<Tuple, TupleMergeError> {
        if !self.matches(other) {
            return Err(TupleMergeError {
                left: self.clone(),
                right: other.clone(),
            });
        }
        let mut fields = self.fields.clone();
        for (c, v) in &other.fields {
            if self.get(*c).is_none() {
                fields.push((*c, v.clone()));
            }
        }
        fields.sort_by_key(|(c, _)| *c);
        Ok(Tuple { fields })
    }

    /// Union of two tuples whose domains the *caller* guarantees disjoint
    /// — one sorted merge, no conflict scan, no re-sort. The batched
    /// operation hot path builds one full tuple per row this way after
    /// validating the (shared) domains once per batch.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the domains overlap.
    #[must_use]
    pub fn union_disjoint(&self, other: &Tuple) -> Tuple {
        debug_assert!(
            self.dom().is_disjoint(other.dom()),
            "union_disjoint requires disjoint domains"
        );
        let (a, b) = (&self.fields, &other.fields);
        let mut fields = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].0 < b[j].0 {
                fields.push(a[i].clone());
                i += 1;
            } else {
                fields.push(b[j].clone());
                j += 1;
            }
        }
        fields.extend_from_slice(&a[i..]);
        fields.extend_from_slice(&b[j..]);
        Tuple { fields }
    }

    /// Right-biased override: the fields of `self`, with every column of
    /// `other` taking `other`'s value (columns new in `other` are added).
    /// This is the §2 `update` combinator: `update r s t` replaces the
    /// tuple `u ⊇ s` with `u ⊕ t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc_spec::{Tuple, Value, ColumnId};
    /// let c0 = ColumnId::from_index(0);
    /// let c1 = ColumnId::from_index(1);
    /// let u = Tuple::from_pairs([(c0, Value::from(1)), (c1, Value::from(2))]);
    /// let t = Tuple::from_pairs([(c1, Value::from(9))]);
    /// let got = u.override_with(&t);
    /// assert_eq!(got.get(c0), Some(&Value::from(1)));
    /// assert_eq!(got.get(c1), Some(&Value::from(9)));
    /// ```
    #[must_use]
    pub fn override_with(&self, other: &Tuple) -> Tuple {
        let mut fields: Vec<(ColumnId, Value)> = self
            .fields
            .iter()
            .filter(|(c, _)| other.get(*c).is_none())
            .cloned()
            .collect();
        fields.extend(other.fields.iter().cloned());
        fields.sort_by_key(|(c, _)| *c);
        Tuple { fields }
    }

    /// A deterministic 64-bit hash of the projection of this tuple onto
    /// `cols`, for lock striping (§4.4): the stripe is `hash mod k`.
    pub fn stable_hash_of(&self, cols: ColumnSet) -> u64 {
        self.fold_hash_of(cols, 0x9e37_79b9_7f4a_7c15)
    }

    /// [`Tuple::stable_hash_of`] with an explicit seed and a final
    /// avalanche, so independent consumers (shard routers vs. lock
    /// stripes vs. container buckets) draw decorrelated bit streams from
    /// the same key columns: two hashes of the same projection under
    /// different seeds share no usable structure, and the avalanche keeps
    /// `hash mod k` uniform even for small `k` and sequential values.
    pub fn stable_hash_of_seeded(&self, cols: ColumnSet, seed: u64) -> u64 {
        // splitmix64 finalizer over the seeded fold.
        let mut h = self.fold_hash_of(cols, seed ^ 0x6a09_e667_f3bc_c909);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn fold_hash_of(&self, cols: ColumnSet, seed: u64) -> u64 {
        let mut h = seed;
        for (c, v) in &self.fields {
            if cols.contains(*c) {
                h = h
                    .rotate_left(13)
                    .wrapping_mul(0xff51_afd7_ed55_8ccd)
                    .wrapping_add(u64::from(c.0 as u32))
                    .wrapping_add(v.stable_hash());
            }
        }
        h
    }

    /// Renders the tuple with column names from `catalog`,
    /// e.g. `⟨src: 1, dst: 2⟩`.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut s = String::from("⟨");
        for (i, (c, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(catalog.name(*c));
            s.push_str(": ");
            s.push_str(&v.to_string());
        }
        s.push('⟩');
        s
    }
}

/// Total order: lexicographic over the sorted field list.
///
/// For tuples that are valuations of the *same* column set, this coincides
/// with the lexicographic value order the paper uses to order node instances
/// (§5.1). Tuples over different domains are still totally ordered (by the
/// interleaved column/value sequence), which keeps `BTreeMap<Tuple, _>`
/// usable as a container key type.
impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> Ordering {
        self.fields.cmp(&other.fields)
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (c, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<(ColumnId, Value)> for Tuple {
    fn from_iter<T: IntoIterator<Item = (ColumnId, Value)>>(iter: T) -> Self {
        Tuple::from_pairs(iter)
    }
}

/// Error returned by [`Tuple::union`] when tuples disagree on a shared column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleMergeError {
    /// Left operand of the failed union.
    pub left: Tuple,
    /// Right operand of the failed union.
    pub right: Tuple,
}

impl fmt::Display for TupleMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuples disagree on a shared column: {:?} vs {:?}",
            self.left, self.right
        )
    }
}

impl std::error::Error for TupleMergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> ColumnId {
        ColumnId::from_index(i)
    }

    fn t(pairs: &[(usize, i64)]) -> Tuple {
        Tuple::from_pairs(pairs.iter().map(|&(i, v)| (c(i), Value::from(v))))
    }

    #[test]
    fn fields_are_sorted_and_deduped() {
        let a = Tuple::from_pairs([(c(2), Value::from(9)), (c(0), Value::from(1))]);
        let cols: Vec<usize> = a.iter().map(|(cid, _)| cid.index()).collect();
        assert_eq!(cols, vec![0, 2]);
        let dup = Tuple::from_pairs([(c(1), Value::from(5)), (c(1), Value::from(5))]);
        assert_eq!(dup.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    fn conflicting_duplicates_panic() {
        let _ = Tuple::from_pairs([(c(1), Value::from(5)), (c(1), Value::from(6))]);
    }

    #[test]
    fn get_and_dom() {
        let a = t(&[(0, 1), (3, 4)]);
        assert_eq!(a.get(c(0)), Some(&Value::from(1)));
        assert_eq!(a.get(c(1)), None);
        assert_eq!(a.dom(), ColumnSet::from_iter([c(0), c(3)]));
        assert!(a.is_valuation_for(ColumnSet::from_iter([c(0), c(3)])));
        assert!(!a.is_valuation_for(ColumnSet::from_iter([c(0)])));
    }

    #[test]
    fn projection() {
        let a = t(&[(0, 1), (1, 2), (2, 3)]);
        let p = a.project(ColumnSet::from_iter([c(0), c(2), c(5)]));
        assert_eq!(p, t(&[(0, 1), (2, 3)]));
        assert_eq!(a.project(ColumnSet::EMPTY), Tuple::empty());
    }

    #[test]
    fn extends_and_matches() {
        let big = t(&[(0, 1), (1, 2)]);
        let small = t(&[(0, 1)]);
        let other = t(&[(0, 9)]);
        let disjoint = t(&[(5, 5)]);
        assert!(big.extends(&small));
        assert!(big.extends(&big));
        assert!(!big.extends(&other));
        assert!(!small.extends(&big));
        assert!(big.matches(&small));
        assert!(!big.matches(&other));
        assert!(big.matches(&disjoint), "disjoint domains always match");
        assert!(Tuple::empty().matches(&big));
        assert!(big.extends(&Tuple::empty()));
    }

    #[test]
    fn union_merges_or_errors() {
        let a = t(&[(0, 1)]);
        let b = t(&[(1, 2)]);
        assert_eq!(a.union(&b).unwrap(), t(&[(0, 1), (1, 2)]));
        let conflict = t(&[(0, 7)]);
        let err = a.union(&conflict).unwrap_err();
        assert!(format!("{err}").contains("disagree"));
        // union with agreeing overlap is fine
        let overlap = t(&[(0, 1), (2, 3)]);
        assert_eq!(a.union(&overlap).unwrap(), t(&[(0, 1), (2, 3)]));
    }

    #[test]
    fn ordering_is_lexicographic_on_same_domain() {
        let a = t(&[(0, 1), (1, 5)]);
        let b = t(&[(0, 1), (1, 6)]);
        let z = t(&[(0, 2), (1, 0)]);
        assert!(a < b);
        assert!(b < z);
        let mut v = vec![z.clone(), a.clone(), b.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, z]);
    }

    #[test]
    fn stable_hash_respects_projection() {
        let a = t(&[(0, 1), (1, 2), (2, 3)]);
        let b = t(&[(0, 1), (1, 99), (2, 3)]);
        let cols02 = ColumnSet::from_iter([c(0), c(2)]);
        assert_eq!(a.stable_hash_of(cols02), b.stable_hash_of(cols02));
        let cols01 = ColumnSet::from_iter([c(0), c(1)]);
        assert_ne!(a.stable_hash_of(cols01), b.stable_hash_of(cols01));
    }

    #[test]
    fn render_and_debug() {
        let mut cat = Catalog::new();
        let src = cat.intern("src");
        let dst = cat.intern("dst");
        let e = Tuple::from_pairs([(src, Value::from(1)), (dst, Value::from(2))]);
        assert_eq!(e.render(&cat), "⟨src: 1, dst: 2⟩");
        assert_eq!(format!("{:?}", Tuple::empty()), "⟨⟩");
    }
}
