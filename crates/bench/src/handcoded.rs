//! The hand-written comparator of §6.2: a concurrent directed graph a
//! practiced systems programmer would write by hand — two sharded hash
//! indexes (forward and backward) of per-node sorted adjacency maps, with
//! hand-placed reader-writer locks.
//!
//! The paper notes its hand-coded implementation "is essentially Split 4"
//! (a striped ConcurrentHashMap of TreeMaps per direction); this is the
//! Rust equivalent. Deadlock freedom is by a fixed order: the forward-index
//! adjacency lock is always taken before the backward-index one.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use relc_autotune::GraphOps;
use relc_containers::hashing::hash_key;

const SHARDS: usize = 64;

type Adjacency = Arc<RwLock<BTreeMap<i64, i64>>>;
type Index = Box<[RwLock<HashMap<i64, Adjacency>>]>;

/// A hand-written concurrent weighted digraph (the `Handcoded` series in
/// Figure 5).
#[derive(Debug)]
pub struct HandcodedGraph {
    fwd: Index,
    bwd: Index,
    len: AtomicUsize,
}

fn new_index() -> Index {
    (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect()
}

fn shard(key: i64) -> usize {
    (hash_key(&key) % SHARDS as u64) as usize
}

fn get(index: &Index, key: i64) -> Option<Adjacency> {
    index[shard(key)].read().get(&key).cloned()
}

fn get_or_create(index: &Index, key: i64) -> Adjacency {
    if let Some(adj) = get(index, key) {
        return adj;
    }
    let mut guard = index[shard(key)].write();
    guard
        .entry(key)
        .or_insert_with(|| Arc::new(RwLock::new(BTreeMap::new())))
        .clone()
}

impl HandcodedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        HandcodedGraph {
            fwd: new_index(),
            bwd: new_index(),
            len: AtomicUsize::new(0),
        }
    }
}

impl Default for HandcodedGraph {
    fn default() -> Self {
        HandcodedGraph::new()
    }
}

impl GraphOps for HandcodedGraph {
    fn find_successors(&self, src: i64) -> Vec<(i64, i64)> {
        match get(&self.fwd, src) {
            Some(adj) => adj.read().iter().map(|(d, w)| (*d, *w)).collect(),
            None => Vec::new(),
        }
    }

    fn find_predecessors(&self, dst: i64) -> Vec<(i64, i64)> {
        match get(&self.bwd, dst) {
            Some(adj) => adj.read().iter().map(|(s, w)| (*s, *w)).collect(),
            None => Vec::new(),
        }
    }

    fn insert_edge(&self, src: i64, dst: i64, weight: i64) -> bool {
        let f = get_or_create(&self.fwd, src);
        let b = get_or_create(&self.bwd, dst);
        // Lock order: forward before backward, always.
        let mut fg = f.write();
        let mut bg = b.write();
        if fg.contains_key(&dst) {
            return false; // put-if-absent
        }
        fg.insert(dst, weight);
        bg.insert(src, weight);
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove_edge(&self, src: i64, dst: i64) -> bool {
        let (Some(f), Some(b)) = (get(&self.fwd, src), get(&self.bwd, dst)) else {
            return false;
        };
        let mut fg = f.write();
        let mut bg = b.write();
        if fg.remove(&dst).is_some() {
            bg.remove(&src);
            self.len.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn edge_count(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn graph_semantics() {
        let g = HandcodedGraph::new();
        assert!(g.insert_edge(1, 2, 42));
        assert!(!g.insert_edge(1, 2, 99));
        assert!(g.insert_edge(1, 3, 7));
        assert!(g.insert_edge(4, 2, 1));
        assert_eq!(g.find_successors(1), vec![(2, 42), (3, 7)]);
        assert_eq!(g.find_predecessors(2), vec![(1, 42), (4, 1)]);
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.find_predecessors(2), vec![(4, 1)]);
    }

    #[test]
    fn concurrent_put_if_absent_one_winner() {
        let g = Arc::new(HandcodedGraph::new());
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads as i64)
            .map(|tid| {
                let g = g.clone();
                let barrier = barrier.clone();
                let wins = wins.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for k in 0..64 {
                        if g.insert_edge(k, k, tid) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 64);
        assert_eq!(g.edge_count(), 64);
    }

    #[test]
    fn concurrent_mixed_ops_no_deadlock() {
        let g = Arc::new(HandcodedGraph::new());
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let g = g.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    for _ in 0..5_000 {
                        let s = (next() % 16) as i64;
                        let d = (next() % 16) as i64;
                        match next() % 4 {
                            0 => {
                                let _ = g.insert_edge(s, d, 1);
                            }
                            1 => {
                                let _ = g.remove_edge(s, d);
                            }
                            2 => {
                                let _ = g.find_successors(s);
                            }
                            _ => {
                                let _ = g.find_predecessors(d);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
