//! The Figure 5 configuration table: the 12 representative synthesized
//! decompositions plus the hand-coded comparator (§6.2).
//!
//! The paper selected 12 of its 448 autotuner variants "that cover a
//! spectrum of different performance levels". The text pins down most of
//! them; where it is ambiguous we document our reading in EXPERIMENTS.md:
//!
//! * Stick 1 / Split 1 / Diamond 0 — single coarse lock, `HashMap` top
//!   level, `TreeMap` second level;
//! * Stick 2/3/4 — striped root over `ConcurrentHashMap`-of-`HashMap`,
//!   `ConcurrentHashMap`-of-`TreeMap`, `ConcurrentSkipListMap`-of-`HashMap`;
//! * Split 2 — striped locks and concurrent maps on the src branch only;
//!   one fixed lock for the whole dst branch;
//! * Split 3/4/5 — striped; `CHM`+`HashMap`, `CHM`+`TreeMap`,
//!   `CSLM`+`HashMap`;
//! * Diamond 1/2 — striped; `CHM`+`HashMap`, `CSLM`+`HashMap`;
//! * Diamond 3 — the Fig. 3(c) *speculative* placement (§4.5), our bonus
//!   series exercising target-side locks;
//! * Handcoded — [`crate::handcoded::HandcodedGraph`].

use std::sync::Arc;

use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_autotune::{GraphOps, RelationGraph};
use relc_containers::ContainerKind;

use crate::handcoded::HandcodedGraph;

/// The stripe factor used by the striped/speculative Figure 5 configs
/// (paper: "chosen for simplicity to be either 1 or 1024").
pub const FIG5_STRIPES: u32 = 1024;

/// One Figure 5 series: a named graph-implementation factory.
pub struct Fig5Config {
    /// Series label, e.g. `Split 4`.
    pub name: &'static str,
    build: Box<dyn Fn() -> Arc<dyn GraphOps> + Send + Sync>,
}

impl std::fmt::Debug for Fig5Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fig5Config({})", self.name)
    }
}

impl Fig5Config {
    /// Builds a fresh, empty graph for one benchmark run.
    pub fn build(&self) -> Arc<dyn GraphOps> {
        (self.build)()
    }
}

fn synthesized(
    name: &'static str,
    decomp: impl Fn() -> Arc<Decomposition> + Send + Sync + 'static,
    place: impl Fn(&Arc<Decomposition>) -> Arc<LockPlacement> + Send + Sync + 'static,
) -> Fig5Config {
    Fig5Config {
        name,
        build: Box::new(move || {
            let d = decomp();
            let p = place(&d);
            let rel = Arc::new(ConcurrentRelation::new(d, p).expect("valid config"));
            Arc::new(RelationGraph::new(rel).expect("graph schema"))
        }),
    }
}

/// Split 2's mixed placement: src branch striped + fine over concurrent
/// maps; the whole dst branch pinned to one root lock (stripe 0) over
/// non-concurrent maps.
fn split2_decomposition() -> Arc<Decomposition> {
    let schema = relc_spec::library::graph_schema();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let u = b.node("u");
    let w = b.node("w");
    let x = b.node("x");
    let v = b.node("v");
    let y = b.node("y");
    let z = b.node("z");
    b.edge(root, u, &["src"], ContainerKind::ConcurrentHashMap)
        .expect("cols");
    b.edge(u, w, &["dst"], ContainerKind::ConcurrentHashMap)
        .expect("cols");
    b.edge(w, x, &["weight"], ContainerKind::Singleton)
        .expect("cols");
    b.edge(root, v, &["dst"], ContainerKind::HashMap)
        .expect("cols");
    b.edge(v, y, &["src"], ContainerKind::TreeMap)
        .expect("cols");
    b.edge(y, z, &["weight"], ContainerKind::Singleton)
        .expect("cols");
    b.build().expect("adequate")
}

fn split2_placement(d: &Arc<Decomposition>) -> Arc<LockPlacement> {
    let mut b = LockPlacement::builder(Arc::clone(d));
    let ru = d.edge_between("ρ", "u").expect("edge");
    let uw = d.edge_between("u", "w").expect("edge");
    let wx = d.edge_between("w", "x").expect("edge");
    let rv = d.edge_between("ρ", "v").expect("edge");
    let vy = d.edge_between("v", "y").expect("edge");
    let yz = d.edge_between("y", "z").expect("edge");
    let u = d.node_by_name("u").expect("node");
    let w = d.node_by_name("w").expect("node");
    // src branch: striped at the root, striped at u, fine at w.
    b.place_striped(ru, d.root(), d.schema().column_set(&["src"]).expect("cols"));
    b.place_striped(uw, u, d.schema().column_set(&["dst"]).expect("cols"));
    b.place(wx, w);
    // dst branch: everything under the root's stripe 0.
    b.place(rv, d.root());
    b.place(vy, d.root());
    b.place(yz, d.root());
    b.stripes(d.root(), FIG5_STRIPES);
    b.stripes(u, 8);
    b.named("split2-mixed");
    b.build().expect("well-formed")
}

/// The thirteen Figure 5 series (12 synthesized + handcoded) plus our
/// speculative bonus series.
pub fn figure5_configs() -> Vec<Fig5Config> {
    use ContainerKind::{
        ConcurrentHashMap as CHM, ConcurrentSkipListMap as CSLM, HashMap as HM, TreeMap as TM,
    };
    vec![
        synthesized(
            "Stick 1",
            || stick(HM, TM),
            |d| LockPlacement::coarse(d).expect("valid"),
        ),
        synthesized(
            "Stick 2",
            || stick(CHM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Stick 3",
            || stick(CHM, TM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Stick 4",
            || stick(CSLM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Split 1",
            || split(HM, TM),
            |d| LockPlacement::coarse(d).expect("valid"),
        ),
        Fig5Config {
            name: "Split 2",
            build: Box::new(|| {
                let d = split2_decomposition();
                let p = split2_placement(&d);
                let rel = Arc::new(ConcurrentRelation::new(d, p).expect("valid config"));
                Arc::new(RelationGraph::new(rel).expect("graph schema"))
            }),
        },
        synthesized(
            "Split 3",
            || split(CHM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Split 4",
            || split(CHM, TM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Split 5",
            || split(CSLM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Diamond 0",
            || diamond(HM, TM),
            |d| LockPlacement::coarse(d).expect("valid"),
        ),
        synthesized(
            "Diamond 1",
            || diamond(CHM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Diamond 2",
            || diamond(CSLM, HM),
            |d| LockPlacement::striped_root(d, FIG5_STRIPES).expect("valid"),
        ),
        synthesized(
            "Diamond 3*",
            || diamond(CHM, HM),
            |d| LockPlacement::speculative(d, FIG5_STRIPES).expect("valid"),
        ),
        Fig5Config {
            name: "Handcoded",
            build: Box::new(|| Arc::new(HandcodedGraph::new())),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure5_configs_build_and_work() {
        for cfg in figure5_configs() {
            let g = cfg.build();
            assert!(g.insert_edge(1, 2, 42), "{}", cfg.name);
            assert!(!g.insert_edge(1, 2, 9), "{}", cfg.name);
            assert_eq!(g.find_successors(1), vec![(2, 42)], "{}", cfg.name);
            // Predecessor support: sticks may need a scan; all these
            // placements allow it (no speculative edge needs scanning for
            // dst on split/diamond; stick scans its src level).
            let preds = g.find_predecessors(2);
            assert_eq!(preds, vec![(1, 42)], "{}", cfg.name);
            assert!(g.remove_edge(1, 2), "{}", cfg.name);
            assert_eq!(g.edge_count(), 0, "{}", cfg.name);
        }
    }

    #[test]
    fn fig5_has_14_series() {
        let names: Vec<&str> = figure5_configs().iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 14);
        assert!(names.contains(&"Split 4"));
        assert!(names.contains(&"Handcoded"));
        assert!(names.contains(&"Diamond 3*"));
    }
}
