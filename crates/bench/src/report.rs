//! Plain-text reporting helpers for the figure-regeneration binaries:
//! aligned throughput tables (rows = configurations, columns = thread
//! counts) and machine-readable CSV blocks.

use std::fmt::Write as _;

/// A throughput table for one workload mix.
#[derive(Debug, Clone)]
pub struct ThroughputTable {
    /// Title, e.g. `Operation Distribution: 70-0-20-10`.
    pub title: String,
    /// Column headers (thread counts).
    pub threads: Vec<usize>,
    /// `(series name, ops/sec per thread count)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ThroughputTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, threads: Vec<usize>) -> Self {
        ThroughputTable {
            title: title.into(),
            threads,
            rows: Vec::new(),
        }
    }

    /// Appends a series.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the thread-count header.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.threads.len(), "row width mismatch");
        self.rows.push((name.into(), values));
    }

    /// The best series at the highest thread count.
    pub fn best_at_max_threads(&self) -> Option<&str> {
        self.rows
            .iter()
            .max_by(|a, b| {
                let av = a.1.last().copied().unwrap_or(0.0);
                let bv = b.1.last().copied().unwrap_or(0.0);
                av.total_cmp(&bv)
            })
            .map(|(name, _)| name.as_str())
    }

    /// Renders an aligned human-readable table (throughput in kops/sec).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(["series".len()])
            .max()
            .unwrap_or(10)
            + 2;
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<name_w$}", "series");
        for t in &self.threads {
            let _ = write!(out, "{:>10}", format!("{t}T"));
        }
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(name_w + 10 * self.threads.len()));
        for (name, vals) in &self.rows {
            let _ = write!(out, "{:<name_w$}", name);
            for v in vals {
                let _ = write!(out, "{:>10.1}", v / 1_000.0);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "(kops/sec; best at max threads: {})",
            self.best_at_max_threads().unwrap_or("n/a")
        );
        out
    }

    /// Renders a CSV block (`mix,series,threads,ops_per_sec`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("mix,series,threads,ops_per_sec\n");
        for (name, vals) in &self.rows {
            for (t, v) in self.threads.iter().zip(vals) {
                let _ = writeln!(out, "{},{},{},{:.1}", self.title, name, t, v);
            }
        }
        out
    }
}

/// The default thread sweep: powers of two up to the machine's parallelism,
/// always including 1 and the maximum.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = vec![1usize];
    let mut t = 2;
    while t < max {
        out.push(t);
        t *= 2;
    }
    if *out.last().expect("nonempty") != max {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = ThroughputTable::new("Operation Distribution: 70-0-20-10", vec![1, 2, 4]);
        t.push_row("Stick 1", vec![1000.0, 900.0, 800.0]);
        t.push_row("Split 4", vec![1000.0, 1900.0, 3600.0]);
        let s = t.render();
        assert!(s.contains("Stick 1"));
        assert!(s.contains("4T"));
        assert!(s.contains("best at max threads: Split 4"));
        let csv = t.render_csv();
        assert!(csv.contains("70-0-20-10,Split 4,4,3600.0"));
        assert_eq!(csv.lines().count(), 1 + 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ThroughputTable::new("x", vec![1, 2]);
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn thread_counts_cover_machine() {
        let ts = default_thread_counts();
        assert_eq!(ts[0], 1);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        let max = std::thread::available_parallelism().unwrap().get();
        assert_eq!(*ts.last().unwrap(), max);
    }
}
