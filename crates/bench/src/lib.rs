//! # relc-bench — the evaluation harness (§6)
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Binary | Notes |
//! |---|---|---|
//! | Figure 1 (container taxonomy) | `figure1_taxonomy` | property table from `relc-containers` |
//! | Figure 5 (4 throughput/scalability graphs) | `figure5` | 13 series + speculative bonus; `--full` for paper-scale op counts |
//! | §6.1 autotuner | `autotune` | enumerates the candidate space and ranks it per mix |
//! | Stripe-factor ablation (§4.4) | `ablation_striping` | k ∈ {1, 4, 64, 1024} |
//! | Lock-sort elision ablation (§5.2) | `ablation_sorting` | planner analysis on vs forced runtime sorts |
//!
//! The library half hosts the [`handcoded`] baseline, the Figure 5
//! [`figures`] configuration table, and plain-text [`report`] formatting.

#![warn(missing_docs)]

pub mod figures;
pub mod handcoded;
pub mod report;

/// Parses a `--flag value`-style option from `args`, with a default.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--ops", "123", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--ops", 5usize), 123);
        assert_eq!(arg_value(&args, "--threads", 7usize), 7);
        assert!(arg_present(&args, "--full"));
        assert!(!arg_present(&args, "--quick"));
    }
}
