//! **Lock-sort elision ablation (§5.2)**: "The compiler uses a simple
//! static analysis to detect lock statements where it can avoid sorting."
//!
//! Compares full-iteration query throughput on a TreeMap stick under fine
//! locking with the planner's sort-elision analysis honored vs. runtime
//! sorts forced on every lock statement.
//!
//! ```text
//! cargo run -p relc-bench --release --bin ablation_sorting [-- --edges N --iters M]
//! ```

use std::sync::Arc;
use std::time::Instant;

use relc::decomp::library::stick;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_bench::arg_value;
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let edges: i64 = arg_value(&args, "--edges", 2_000);
    let iters: usize = arg_value(&args, "--iters", 200);

    // Sorted containers end-to-end: the planner marks every lock statement
    // presorted, so the elision has maximal effect.
    let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).expect("valid");
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).expect("valid"));
    let schema = d.schema();
    for i in 0..edges {
        let s = schema
            .tuple(&[("src", Value::from(i % 64)), ("dst", Value::from(i))])
            .expect("tuple");
        let t = schema.tuple(&[("weight", Value::from(i))]).expect("tuple");
        rel.insert(&s, &t).expect("insert");
    }

    let measure = |label: &str, force_sort: bool| {
        rel.set_always_sort_locks(force_sort);
        // Warm-up.
        let _ = rel.query(&Tuple::empty(), schema.columns()).expect("query");
        let start = Instant::now();
        for _ in 0..iters {
            let res = rel.query(&Tuple::empty(), schema.columns()).expect("query");
            assert_eq!(res.len(), edges as usize);
        }
        let secs = start.elapsed().as_secs_f64();
        let per_iter_ms = secs * 1e3 / iters as f64;
        println!("{label:<28} {per_iter_ms:>9.3} ms / full scan");
        secs
    };

    println!("Lock-sort elision ablation (§5.2): {edges} edges, {iters} full scans\n");
    let elided = measure("sort elided (planner)", false);
    let forced = measure("sort forced (ablation)", true);
    println!(
        "\nelision speedup: {:.2}x (sorted TreeMap chains let the compiler \
         skip runtime lock sorting)",
        forced / elided
    );
}
