//! Regression gate for the `txn_mix` baseline: compares a fresh
//! `BENCH_txn.json`-format run against the committed baseline and exits
//! non-zero if any matching (representation, workload, threads) sample
//! regressed by more than the tolerance.
//!
//! ```text
//! cargo run --release -p relc-bench --bin bench_compare -- \
//!     --baseline BENCH_txn.json --candidate BENCH_txn.quick.json \
//!     [--tolerance 0.25]
//! ```
//!
//! The parser is a purpose-built scanner for the flat JSON `txn_mix`
//! emits (the workspace is offline: no serde). Samples present in only
//! one file are reported but do not fail the gate — CI may run with fewer
//! thread counts than the committed baseline.
//!
//! The gate aggregates per (representation, workload) with a geometric
//! mean across thread counts, and by default divides out the *median*
//! workload ratio as a machine-speed factor, so a candidate measured on
//! slower hardware than the committed baseline's machine does not fail
//! spuriously — only a workload regressing relative to the rest does.
//! Pass `--no-normalize` for absolute same-machine comparisons.

use std::collections::BTreeMap;
use std::process::ExitCode;

use relc_bench::{arg_present, arg_value};

/// One `results[]` entry: (representation, workload, threads) → ops/s.
type Samples = BTreeMap<(String, String, u64), f64>;

/// Extracts the string value of `"field": "..."` from a JSON object line.
fn str_field(line: &str, field: &str) -> Option<String> {
    let tag = format!("\"{field}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

/// Extracts the numeric value of `"field": 123.4` from a JSON object line.
fn num_field(line: &str, field: &str) -> Option<f64> {
    let tag = format!("\"{field}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_samples(path: &str) -> Result<Samples, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Samples::new();
    for line in text.lines() {
        if !line.trim_start().starts_with('{') || !line.contains("\"representation\"") {
            continue;
        }
        let rep = str_field(line, "representation")
            .ok_or_else(|| format!("{path}: malformed result line: {line}"))?;
        let workload = str_field(line, "workload")
            .ok_or_else(|| format!("{path}: malformed result line: {line}"))?;
        let threads = num_field(line, "threads")
            .ok_or_else(|| format!("{path}: malformed result line: {line}"))?
            as u64;
        let rate = num_field(line, "ops_per_sec")
            .ok_or_else(|| format!("{path}: malformed result line: {line}"))?;
        out.insert((rep, workload, threads), rate);
    }
    if out.is_empty() {
        return Err(format!("{path}: no samples found"));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path: String = arg_value(&args, "--baseline", "BENCH_txn.json".to_owned());
    let candidate_path: String = arg_value(&args, "--candidate", "BENCH_txn.new.json".to_owned());
    let tolerance: f64 = arg_value(&args, "--tolerance", 0.25);

    let (baseline, candidate) = match (
        parse_samples(&baseline_path),
        parse_samples(&candidate_path),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_compare: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    // Per-sample report, then a per-(representation, workload) gate on the
    // geometric mean of the candidate/baseline ratios across thread counts.
    // Single samples of a `--quick` run are a few milliseconds and noisy;
    // a whole workload drifting past the tolerance is a real regression.
    let mut by_workload: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    let mut compared = 0usize;
    for (key, &base_rate) in &baseline {
        let Some(&cand_rate) = candidate.get(key) else {
            println!(
                "skip     {:<24} {:<14} threads={:<3} (not in candidate)",
                key.0, key.1, key.2
            );
            continue;
        };
        compared += 1;
        let ratio = cand_rate / base_rate.max(1e-9);
        by_workload
            .entry((key.0.clone(), key.1.clone()))
            .or_default()
            .push(ratio);
        println!(
            "sample   {:<24} {:<14} threads={:<3} {:>12.0} -> {:>12.0} ops/s ({:+.1}%)",
            key.0,
            key.1,
            key.2,
            base_rate,
            cand_rate,
            (ratio - 1.0) * 100.0
        );
    }
    for key in candidate.keys().filter(|k| !baseline.contains_key(*k)) {
        println!(
            "new      {:<24} {:<14} threads={:<3} (not in baseline)",
            key.0, key.1, key.2
        );
    }
    if compared == 0 {
        eprintln!("bench_compare: no overlapping samples between the two files");
        return ExitCode::FAILURE;
    }

    let geomeans: BTreeMap<(String, String), f64> = by_workload
        .iter()
        .map(|(key, ratios)| {
            let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            (key.clone(), g)
        })
        .collect();
    // The baseline was produced on whatever machine last regenerated
    // BENCH_txn.json, while the candidate may run on slower or faster
    // hardware (a CI runner): divide out the median workload ratio as the
    // machine-speed factor, so the gate fires on a workload regressing
    // *relative to the others*, not on hardware differences. A uniform
    // slowdown of every workload is indistinguishable from a slower
    // machine without a same-host baseline, which CI does not have.
    // `--no-normalize` restores absolute comparison for same-machine runs.
    let normalize = !arg_present(&args, "--no-normalize");
    let machine_factor = if normalize {
        let mut sorted: Vec<f64> = geomeans.values().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        // Clamped at 1.0: the factor exists only to excuse *slower* CI
        // hardware. A median above 1 (most workloads genuinely improved)
        // must not turn the untouched workloads into spurious relative
        // regressions.
        let mid = sorted[sorted.len() / 2].min(1.0);
        println!(
            "machine-speed factor (median workload ratio, clamped at 1): \
             {mid:.3} — gating on ratios relative to it"
        );
        mid
    } else {
        1.0
    };

    let mut regressions = Vec::new();
    for ((rep, wl), geomean) in &geomeans {
        let relative = geomean / machine_factor.max(1e-9);
        let verdict = if relative < 1.0 - tolerance {
            regressions.push((rep.clone(), wl.clone(), relative));
            "REGRESSED"
        } else if relative > 1.0 + tolerance {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{verdict:<9}{rep:<24} {wl:<14} geomean over {} thread counts: {:+.1}%",
            by_workload[&(rep.clone(), wl.clone())].len(),
            (relative - 1.0) * 100.0
        );
    }

    // MVCC read-path gate: within the *candidate* run (one machine, one
    // moment — no normalization needed), the lock-free snapshot read mix
    // must not collapse against the 2PL locked read mix. On multi-core
    // hardware snapshot reads pull ahead with thread count; on a
    // single-core runner the two serialize and the snapshot path's fixed
    // overhead (registry + epoch pin + version resolve) legitimately
    // costs ~10-30% (see the README's MVCC section), so this gate has
    // its own, wider tolerance: the failure mode it exists to catch —
    // version-chain or dead-cell accumulation making every read crawl
    // history — shows up as 10-50x, not 1.3x. Geomean over thread
    // counts ≥ 4 where both workloads are present.
    let read_tolerance: f64 = arg_value(&args, "--read-tolerance", 0.5);
    let mut read_gate_failures = Vec::new();
    {
        let mut by_rep: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for ((rep, wl, threads), &snap_rate) in &candidate {
            if wl != "read_heavy" || *threads < 4 {
                continue;
            }
            if let Some(&locked_rate) =
                candidate.get(&(rep.clone(), "read_heavy_locked".to_owned(), *threads))
            {
                by_rep
                    .entry(rep)
                    .or_default()
                    .push(snap_rate / locked_rate.max(1e-9));
            }
        }
        for (rep, ratios) in by_rep {
            let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let verdict = if g < 1.0 - read_tolerance {
                read_gate_failures.push((rep.to_owned(), g));
                "REGRESSED"
            } else if g > 1.0 + read_tolerance {
                "faster"
            } else {
                "ok"
            };
            println!(
                "read-path {verdict:<9} {rep:<24} snapshot vs locked geomean over {} \
                 thread counts >=4: {:.2}x",
                ratios.len(),
                g
            );
        }
    }

    // Range access-path gate: within the candidate run, the `range_scan`
    // mix on the ordered representation (skip list keyed by the range
    // column — native bounded in-order RangeScan) must keep a real
    // advantage over the hash fallback (filtered full scan of the whole
    // edge). If the planner stops picking the ordered edge, or the
    // ordered container's `scan_range` degrades to a full walk, the two
    // converge to ~1x — so the gate requires a minimum advantage rather
    // than mere parity. Geomean across thread counts where both are
    // present; same-run samples, so no machine normalization applies.
    let range_advantage: f64 = arg_value(&args, "--range-advantage", 1.5);
    let mut range_gate_failure = None;
    {
        let mut ratios = Vec::new();
        for ((rep, wl, threads), &ordered_rate) in &candidate {
            if wl != "range_scan" || rep != "stick/cslm-src/fine" {
                continue;
            }
            if let Some(&fallback_rate) =
                candidate.get(&("stick/chm-src/fine".to_owned(), wl.clone(), *threads))
            {
                ratios.push(ordered_rate / fallback_rate.max(1e-9));
            }
        }
        if !ratios.is_empty() {
            let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let verdict = if g < range_advantage {
                range_gate_failure = Some(g);
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "range-path {verdict:<9} ordered vs fallback geomean over {} \
                 thread counts: {:.2}x (required >= {:.2}x)",
                ratios.len(),
                g,
                range_advantage
            );
        }
    }

    if regressions.is_empty() && read_gate_failures.is_empty() && range_gate_failure.is_none() {
        println!(
            "bench_compare: {} workloads ({compared} samples) within {:.0}% of the baseline",
            by_workload.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else if regressions.is_empty() {
        if !read_gate_failures.is_empty() {
            eprintln!("bench_compare: snapshot read path lost to the locked read path:");
            for (rep, g) in &read_gate_failures {
                eprintln!("  {rep}: {g:.2}x");
            }
        }
        if let Some(g) = range_gate_failure {
            eprintln!(
                "bench_compare: ordered range scan lost its advantage over the \
                 fallback scan: {g:.2}x (required >= {range_advantage:.2}x)"
            );
        }
        ExitCode::FAILURE
    } else {
        eprintln!(
            "bench_compare: {} of {} workloads regressed more than {:.0}%:",
            regressions.len(),
            by_workload.len(),
            tolerance * 100.0
        );
        for (rep, wl, geomean) in &regressions {
            eprintln!("  {rep} {wl}: {:+.1}%", (geomean - 1.0) * 100.0);
        }
        ExitCode::FAILURE
    }
}
