//! **Lock-discipline report** — runs the static §4.3/§5.1 analyzer
//! (`relc::analysis`) over the standard decomposition library under every
//! standard lock placement, printing one line per combination and every
//! diagnostic the symbolic executor raises. `analyze_all` covers every
//! plan shape per combination: queries and existence checks over every
//! bound-column subset, range queries (`RangeScan` plans, ordered and
//! fallback) over every free column, inserts, removes, and updates.
//!
//! Exits nonzero if any combination produces a diagnostic, so it doubles
//! as a CI gate:
//!
//! ```text
//! cargo run -p relc-bench --bin relc-analyze
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use relc::analysis::Analyzer;
use relc::decomp::library;
use relc::placement::LockPlacement;
use relc::Decomposition;
use relc_containers::ContainerKind;

fn standard_decomps() -> Vec<(&'static str, Arc<Decomposition>)> {
    vec![
        (
            "stick(chm,tm)",
            library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "stick(tm,tm)",
            library::stick(ContainerKind::TreeMap, ContainerKind::TreeMap),
        ),
        (
            "stick(cslm,chm)",
            library::stick(
                ContainerKind::ConcurrentSkipListMap,
                ContainerKind::ConcurrentHashMap,
            ),
        ),
        (
            "split(chm,tm)",
            library::split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "diamond(chm,tm)",
            library::diamond(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        ("dcache", library::dcache()),
        (
            "kv(cslm)",
            library::kv(ContainerKind::ConcurrentSkipListMap),
        ),
    ]
}

fn standard_placements(d: &Arc<Decomposition>) -> Vec<Arc<LockPlacement>> {
    [
        LockPlacement::coarse(d).ok(),
        LockPlacement::fine(d).ok(),
        LockPlacement::striped_root(d, 2).ok(),
        LockPlacement::striped_root(d, 8).ok(),
        LockPlacement::speculative(d, 4).ok(),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn main() -> ExitCode {
    let mut combos = 0usize;
    let mut violations = 0usize;
    println!("lock-discipline report: static verification of every plan shape\n");
    for (dname, d) in standard_decomps() {
        for p in standard_placements(&d) {
            combos += 1;
            let analyzer = Analyzer::new(Arc::clone(&d), Arc::clone(&p));
            let diags = analyzer.analyze_all();
            if diags.is_empty() {
                println!("  PASS  {dname:<16} {}", p.name());
            } else {
                violations += diags.len();
                println!(
                    "  FAIL  {dname:<16} {}  ({} diagnostic{})",
                    p.name(),
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                );
                for diag in &diags {
                    println!("          {diag}");
                }
            }
        }
    }
    println!(
        "\n{combos} decomposition x placement combinations; {violations} violation{}",
        if violations == 1 { "" } else { "s" }
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
