//! Regenerates the **§6.1 autotuner experiment**: enumerate the candidate
//! space (decomposition structure × lock placement × stripe factor ×
//! containers, validity- and consistency-filtered), measure every feasible
//! candidate on each training mix, and report the ranking.
//!
//! ```text
//! cargo run -p relc-bench --release --bin autotune [-- --ops N]
//!     [--threads T] [--keys K] [--top M]
//! ```

use relc_autotune::candidates::enumerate;
use relc_autotune::tuner::autotune;
use relc_autotune::workload::{KeyDistribution, WorkloadConfig, FIGURE5_MIXES};
use relc_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops: usize = arg_value(&args, "--ops", 8_000);
    let threads: usize = arg_value(
        &args,
        "--threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let keys: i64 = arg_value(&args, "--keys", 256);
    let top: usize = arg_value(&args, "--top", 10);

    // Paper: stripe factors "chosen for simplicity to be either 1 or 1024";
    // 448 variants over the three structures.
    let space = enumerate(&[1, 1024]);
    println!(
        "Autotuner (§6.1): {} validity- and consistency-filtered candidates \
         (3 structures × containers × placements × stripe factors)\n",
        space.len()
    );

    for mix in FIGURE5_MIXES {
        let cfg = WorkloadConfig {
            mix,
            threads,
            ops_per_thread: ops,
            key_range: keys,
            distribution: KeyDistribution::Uniform,
            seed: 0xa070,
        };
        let report = autotune(&space, &cfg);
        println!(
            "=== training mix {} ({} threads, {} ops/thread) — {} feasible, {} infeasible",
            mix.label(),
            threads,
            ops,
            report.ranked.len(),
            report.infeasible.len()
        );
        for entry in report.ranked.iter().take(top) {
            println!("  {entry}");
        }
        println!("  best: {}\n", report.best().candidate.name());
    }
}
