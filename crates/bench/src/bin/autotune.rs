//! The **closed-loop autotuner**: observe a live `txn_mix`-shaped
//! workload, consult the persisted cost model ([`CostModel`]), and when
//! the model covers the observed traffic, **migrate the running relation
//! live** ([`ConcurrentRelation::migrate_to`]) to the advised
//! representation — then re-measure and report before/after throughput.
//!
//! ```text
//! cargo run -p relc-bench --release --bin autotune [-- --quick]
//!     [--model PATH] [--report PATH] [--threads T] [--keys K]
//!     [--window-ms W] [--cal-ops N]
//! ```
//!
//! `--quick` calibrates two candidates on one mix and performs one live
//! migration — the CI smoke gate. Without it, the loop runs three
//! workload scenarios over a five-candidate pool. `--model` persists the
//! calibration (JSON) and reuses it on later runs when it still covers
//! the observed mixes; `--report` writes the before/after markdown
//! report.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use relc::ConcurrentRelation;
use relc_autotune::calibrate::{CalibrationConfig, TxnMix};
use relc_autotune::candidates::{Candidate, PlacementKind, Structure};
use relc_autotune::cost::{CostModel, ObservedSignals};
use relc_bench::{arg_present, arg_value};
use relc_containers::ContainerKind;
use relc_spec::{RelationSchema, Tuple, Value};

/// The candidate pool the model calibrates over: coarse, fine and striped
/// placements over the three structures — which placement wins a mix
/// depends on the host (on a single core, extra lock acquisitions are
/// pure overhead; on many cores, coarse serializes), so the model decides
/// empirically.
fn candidate_pool(quick: bool) -> Vec<Candidate> {
    let coarse = Candidate {
        structure: Structure::Stick,
        top: ContainerKind::HashMap,
        second: ContainerKind::TreeMap,
        top2: None,
        second2: None,
        placement: PlacementKind::Coarse,
    };
    let fine = Candidate {
        structure: Structure::Stick,
        top: ContainerKind::ConcurrentHashMap,
        second: ContainerKind::HashMap,
        top2: None,
        second2: None,
        placement: PlacementKind::Fine,
    };
    if quick {
        return vec![coarse, fine];
    }
    vec![
        coarse,
        fine,
        Candidate {
            structure: Structure::Stick,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::TreeMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Striped(8),
        },
        Candidate {
            structure: Structure::Split,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::HashMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Striped(8),
        },
        Candidate {
            structure: Structure::Diamond,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::HashMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Fine,
        },
    ]
}

/// The scenario's starting representation: the model's *lowest-ranked*
/// feasible candidate for the mix — the worst case a deployment could
/// find itself on, and the strongest test of the closed loop (the advice
/// must move it to the top-ranked one and measurably improve).
fn worst_for(model: &CostModel, mix_label: &str) -> Option<Candidate> {
    model
        .entries
        .iter()
        .filter_map(|e| {
            e.features
                .iter()
                .find(|f| f.mix == mix_label)
                .map(|f| (f.ops_per_sec, &e.candidate))
        })
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, c)| c.clone())
}

/// A live workload shape (the `txn_mix` bench's names; the report keys on
/// them).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    ReadHeavy,
    UpdateHeavy,
    TxnTransfer,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::ReadHeavy => "read_heavy",
            Shape::UpdateHeavy => "update_heavy",
            Shape::TxnTransfer => "txn_transfer",
        }
    }

    fn mix(self) -> TxnMix {
        match self {
            Shape::ReadHeavy => TxnMix::ReadHeavy,
            Shape::UpdateHeavy => TxnMix::UpdateHeavy,
            Shape::TxnTransfer => TxnMix::TxnTransfer,
        }
    }
}

fn key(schema: &RelationSchema, a: i64) -> Tuple {
    schema
        .tuple(&[("src", Value::from(a)), ("dst", Value::from(a))])
        .unwrap()
}

fn weight(schema: &RelationSchema, w: i64) -> Tuple {
    schema.tuple(&[("weight", Value::from(w))]).unwrap()
}

/// A continuously running workload against one relation: `threads`
/// workers driving `shape` until stopped, bumping a shared op counter.
struct LiveWorkload {
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LiveWorkload {
    fn start(rel: &Arc<ConcurrentRelation>, shape: Shape, threads: usize, keys: i64) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let rel = Arc::clone(rel);
                let stop = Arc::clone(&stop);
                let ops = Arc::clone(&ops);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let schema = rel.schema().clone();
                    let wcols = schema.column_set(&["weight"]).unwrap();
                    let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let a = (next() % keys as u64) as i64;
                        let mut b = (next() % keys as u64) as i64;
                        if b == a {
                            b = (b + 1) % keys;
                        }
                        match shape {
                            Shape::ReadHeavy => {
                                if i.is_multiple_of(20) {
                                    let w = (next() % 1_000) as i64;
                                    rel.update(&key(&schema, a), &weight(&schema, w)).unwrap();
                                } else {
                                    let _ = rel.query(&key(&schema, a), wcols).unwrap();
                                }
                            }
                            Shape::UpdateHeavy => {
                                let w = (next() % 1_000) as i64;
                                rel.update(&key(&schema, a), &weight(&schema, w)).unwrap();
                            }
                            Shape::TxnTransfer => {
                                // Sum-preserving transfer: move one unit
                                // from account `a` to account `b`.
                                rel.transaction(|tx| {
                                    let wa = tx.query(&key(&schema, a), wcols)?;
                                    let wb = tx.query(&key(&schema, b), wcols)?;
                                    let (Some(wa), Some(wb)) = (wa.first(), wb.first()) else {
                                        return Ok(());
                                    };
                                    let va = wa.get(schema.column("weight").unwrap()).unwrap();
                                    let vb = wb.get(schema.column("weight").unwrap()).unwrap();
                                    let (va, vb) = (va.as_int().unwrap(), vb.as_int().unwrap());
                                    tx.update(&key(&schema, a), &weight(&schema, va - 1))?;
                                    tx.update(&key(&schema, b), &weight(&schema, vb + 1))?;
                                    Ok(())
                                })
                                .unwrap();
                            }
                        }
                        ops.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                })
            })
            .collect();
        barrier.wait();
        LiveWorkload { stop, ops, handles }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            h.join().expect("workload worker panicked");
        }
    }
}

/// One observation window: ops/sec over `window` plus the
/// [`ObservedSignals`] derived from the relation's stats delta.
fn observe(rel: &ConcurrentRelation, ops: &AtomicU64, window: Duration) -> (f64, ObservedSignals) {
    let before = rel.stats_snapshot();
    let c0 = ops.load(Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(window);
    let c1 = ops.load(Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    let after = rel.stats_snapshot();
    (
        (c1 - c0) as f64 / elapsed,
        ObservedSignals::from_delta(&before, &after),
    )
}

/// Minimum predicted throughput gain (fractional) before the loop pays
/// for a live cutover.
const MIGRATION_GAIN_THRESHOLD: f64 = 0.10;

struct ScenarioReport {
    shape: Shape,
    start_name: String,
    signals: ObservedSignals,
    matched_mix: String,
    distance: f64,
    advised_name: String,
    predicted_gain: f64,
    migrated: bool,
    migration_ms: f64,
    before_ops: f64,
    after_ops: f64,
    rows: usize,
    sum_preserved: bool,
}

impl ScenarioReport {
    fn improved(&self) -> bool {
        self.migrated && self.after_ops > self.before_ops
    }

    fn markdown(&self) -> String {
        let p = self.signals.profile();
        let delta = if self.before_ops > 0.0 {
            (self.after_ops / self.before_ops - 1.0) * 100.0
        } else {
            0.0
        };
        format!(
            "## Scenario: `{}`\n\n\
             - starting representation: `{}`\n\
             - observed signals: reads={}, writes={}, txns={} \
             (profile {:.2}/{:.2}/{:.2}), contention {:.3}, restarts/commit {:.3}\n\
             - matched calibrated mix: `{}` (profile distance {:.3})\n\
             - advice: `{}` (predicted gain {:+.1}%)\n\
             - live migration: {} ({} rows, {:.1} ms, workload uninterrupted)\n\
             - throughput: {:.0} ops/s before → {:.0} ops/s after ({:+.1}%)\n\
             - invariants: verify OK, {} rows preserved{}\n",
            self.shape.label(),
            self.start_name,
            self.signals.reads,
            self.signals.writes,
            self.signals.txns,
            p.read_fraction,
            p.write_fraction,
            p.txn_fraction,
            self.signals.contention,
            self.signals.restart_rate,
            self.matched_mix,
            self.distance,
            self.advised_name,
            self.predicted_gain * 100.0,
            if self.migrated {
                "performed"
            } else if self.advised_name == self.start_name {
                "skipped (already on the advised representation)"
            } else {
                "skipped (predicted gain below the 10% cutover threshold)"
            },
            self.rows,
            self.migration_ms,
            self.before_ops,
            self.after_ops,
            delta,
            self.rows,
            if self.sum_preserved {
                ", weight sum preserved"
            } else {
                ""
            },
        )
    }
}

fn run_scenario(
    shape: Shape,
    start: Candidate,
    model: &CostModel,
    threads: usize,
    keys: i64,
    window: Duration,
) -> ScenarioReport {
    let rel = start.build().expect("starting candidate builds");
    let schema = rel.schema().clone();
    for k in 0..keys {
        rel.insert(&key(&schema, k), &weight(&schema, k)).unwrap();
    }
    let initial_sum: i64 = (0..keys).sum();

    let wl = LiveWorkload::start(&rel, shape, threads, keys);
    // Warm up, then observe the live traffic.
    std::thread::sleep(window / 2);
    let (before_ops, signals) = observe(&rel, &wl.ops, window);

    let advice = model
        .advise(&signals)
        .expect("calibrated model covers the scenario mixes");
    let best = advice.best();
    let advised_name = best.candidate.name();
    // Hysteresis: a cutover pays a fence and a bulk load, so only migrate
    // when the model predicts a real gain over the current representation
    // (reads on the lock-free snapshot path, for instance, are nearly
    // representation-insensitive — advice there is noise).
    let start_pred = advice
        .ranked
        .iter()
        .find(|r| r.candidate.name() == start.name())
        .map(|r| r.features.ops_per_sec);
    let predicted_gain = start_pred
        .map(|s| best.features.ops_per_sec / s - 1.0)
        .unwrap_or(f64::INFINITY);
    let mut migrated = false;
    let mut migration_ms = 0.0;
    if advised_name != start.name() && predicted_gain >= MIGRATION_GAIN_THRESHOLD {
        let d = best.candidate.decomposition();
        let p = best
            .candidate
            .placement_for(&d)
            .expect("advised placement validates");
        let t0 = Instant::now();
        rel.migrate_to(d, p).expect("live migration succeeds");
        migration_ms = t0.elapsed().as_secs_f64() * 1e3;
        migrated = true;
    }
    // Let the workload settle on the new representation, then re-measure.
    std::thread::sleep(window / 2);
    let (after_ops, _) = observe(&rel, &wl.ops, window);
    wl.stop();

    let rows = rel.verify().expect("relation verifies after migration");
    let wcol = schema.column("weight").unwrap();
    let final_sum: i64 = rows
        .iter()
        .map(|t| t.get(wcol).unwrap().as_int().unwrap())
        .sum();
    let sum_preserved = match shape {
        Shape::TxnTransfer => final_sum == initial_sum,
        _ => true, // updates overwrite weights; only row count is invariant
    };
    assert_eq!(rows.len(), keys as usize, "row count changed under load");
    assert!(
        sum_preserved,
        "transfer sum drifted: {final_sum} != {initial_sum}"
    );

    ScenarioReport {
        shape,
        start_name: start.name(),
        signals,
        matched_mix: advice.matched_mix.clone(),
        distance: advice.distance,
        advised_name,
        predicted_gain,
        migrated,
        migration_ms,
        before_ops,
        after_ops,
        rows: rows.len(),
        sum_preserved,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = arg_present(&args, "--quick");
    let threads: usize = arg_value(
        &args,
        "--threads",
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4),
    );
    let keys: i64 = arg_value(&args, "--keys", 256);
    let window_ms: u64 = arg_value(&args, "--window-ms", if quick { 250 } else { 600 });
    let cal_ops: usize = arg_value(&args, "--cal-ops", if quick { 1_500 } else { 6_000 });
    let model_path: String = arg_value(&args, "--model", String::new());
    let report_path: String = arg_value(&args, "--report", String::new());
    let window = Duration::from_millis(window_ms);

    let pool = candidate_pool(quick);
    let shapes: &[Shape] = if quick {
        // Transfer transactions are the most representation-sensitive mix
        // (lock acquisitions per transaction scale with the placement), so
        // the smoke gate exercises that one.
        &[Shape::TxnTransfer]
    } else {
        &[Shape::ReadHeavy, Shape::UpdateHeavy, Shape::TxnTransfer]
    };
    let mixes: Vec<TxnMix> = shapes.iter().map(|s| s.mix()).collect();

    println!(
        "Closed-loop autotuner: {} candidates, {} scenario(s), {} threads, {} keys\n",
        pool.len(),
        shapes.len(),
        threads,
        keys
    );

    // Load the persisted model if it still covers the scenario mixes;
    // otherwise calibrate afresh (and persist).
    let loaded = (!model_path.is_empty())
        .then(|| std::fs::read_to_string(&model_path).ok())
        .flatten()
        .and_then(|text| CostModel::from_json(&text).ok())
        .filter(|m| {
            mixes
                .iter()
                .all(|mix| m.mixes.iter().any(|(label, _)| *label == mix.label()))
                && !m.entries.is_empty()
        });
    let model = match loaded {
        Some(m) => {
            println!("cost model: reusing persisted calibration from `{model_path}`\n");
            m
        }
        None => {
            println!(
                "cost model: calibrating {} candidates × {} mixes ({} ops/thread)...",
                pool.len(),
                mixes.len(),
                cal_ops
            );
            let cfg = CalibrationConfig {
                threads,
                ops_per_thread: cal_ops,
                key_range: keys.min(128),
                ..Default::default()
            };
            let t0 = Instant::now();
            let m = CostModel::calibrate(&pool, &mixes, &cfg);
            println!(
                "cost model: calibrated in {:.1}s ({} feasible entries)\n",
                t0.elapsed().as_secs_f64(),
                m.entries.len()
            );
            if !model_path.is_empty() {
                std::fs::write(&model_path, m.to_json()).expect("write model JSON");
                println!("cost model: persisted to `{model_path}`\n");
            }
            m
        }
    };

    let mut reports = Vec::new();
    for &shape in shapes {
        println!("=== scenario `{}`", shape.label());
        let start = worst_for(&model, &shape.mix().label())
            .expect("model has calibrated entries for the scenario mix");
        let r = run_scenario(shape, start, &model, threads, keys, window);
        println!(
            "    {} → {}  ({:.0} → {:.0} ops/s, migration {})",
            r.start_name,
            r.advised_name,
            r.before_ops,
            r.after_ops,
            if r.migrated {
                format!("{:.1} ms", r.migration_ms)
            } else {
                "skipped".to_owned()
            }
        );
        reports.push(r);
    }

    let improved = reports.iter().filter(|r| r.improved()).count();
    println!(
        "\nsummary: the autotuner installed a faster representation for {improved} of {} workload(s)",
        reports.len()
    );

    if !report_path.is_empty() {
        let mut md = String::from(
            "# Closed-loop autotune report\n\n\
             Observe a live `txn_mix`-shaped workload, match it against the\n\
             calibrated cost model, migrate the running relation live to the\n\
             advised representation, and re-measure.\n\n\
             Regenerate with:\n\n\
             ```\n\
             cargo run -p relc-bench --release --bin autotune -- \
             --model AUTOTUNE_MODEL.json --report AUTOTUNE.md\n\
             ```\n\n",
        );
        for r in &reports {
            md.push_str(&r.markdown());
            md.push('\n');
        }
        md.push_str(&format!(
            "## Summary\n\nThe autotuner picked and installed a faster representation \
             for {improved} of {} workload(s).\n",
            reports.len()
        ));
        std::fs::write(&report_path, md).expect("write report");
        println!("report written to `{report_path}`");
    }

    // The CI gate: at least one workload must end up on a faster
    // representation after a live migration.
    assert!(
        improved >= 1,
        "closed loop failed to improve any workload: {:?}",
        reports
            .iter()
            .map(|r| (r.shape.label(), r.before_ops, r.after_ops))
            .collect::<Vec<_>>()
    );
}
