//! Mixed read-modify-write workloads for the transaction layer: the §2
//! `update` primitive, multi-operation transfer transactions, and the
//! batched `insert_all` / `remove_all` path (measured against its
//! single-op equivalent), across representative (decomposition,
//! placement) pairs and thread counts. Emits a JSON baseline
//! (`BENCH_txn.json` by default) so the performance trajectory of the
//! transaction path is tracked across changes.
//!
//! `single_load` and `batch_load` run the *same* tuple stream (insert a
//! 64-key block, then remove it, over thread-disjoint key ranges); the
//! only difference is per-op calls vs one `insert_all`/`remove_all` pair,
//! so their ops/s ratio is the amortization factor of the batched path.
//! `shard_load` drives that stream through an 8-way `ShardedRelation`
//! (multi-root writes), and `shard_mixed` adds routed updates, fan-in
//! point queries, batch churn, and cross-shard transfer transactions.
//! `range_scan` drives a 90/10 range-read/update mix over a window of the
//! `src` column through the locked path, on an ordered representation
//! (native bounded `RangeScan`) and the hash fallback (filtered full
//! scan), so their ratio measures the access-path advantage.
//! `churn` hammers insert/remove/update over a fixed key range on a
//! skip-list representation and reports the epoch collector's counters:
//! with real reclamation, `reclaimed` tracks `retired` and the in-flight
//! count stays bounded, where the old leaking shim grew linearly with
//! removals.
//!
//! ```text
//! cargo run --release -p relc-bench --bin txn_mix -- \
//!     [--quick] [--threads 8] [--ops 200000] [--out BENCH_txn.json]
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition, ShardedRelation, WalOptions};
use relc_bench::{arg_present, arg_value};
use relc_containers::ContainerKind;
use relc_spec::{RangePattern, RelationSchema, Tuple, Value};

const KEY_RANGE: i64 = 256;
/// Rows per `insert_all` / `remove_all` call in the batch workloads.
const BATCH: usize = 64;
/// Key universe for the `range_scan` workload: large enough that the
/// fallback's full-edge scan dominates its cost (at `KEY_RANGE` the
/// per-result downstream locking swamps the scan and the two access
/// paths measure the same), small enough that the fallback samples
/// don't dominate the whole benchmark's runtime.
const RANGE_UNIVERSE: i64 = 4_096;

fn variants() -> Vec<(&'static str, Arc<ConcurrentRelation>)> {
    let mk = |d: Arc<Decomposition>, p| Arc::new(ConcurrentRelation::new(d, p).unwrap());
    let st = stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    vec![
        (
            "stick/coarse",
            mk(st.clone(), LockPlacement::coarse(&st).unwrap()),
        ),
        (
            "split/fine",
            mk(sp.clone(), LockPlacement::fine(&sp).unwrap()),
        ),
        (
            "split/striped1024",
            mk(sp.clone(), LockPlacement::striped_root(&sp, 1024).unwrap()),
        ),
        (
            "diamond/speculative64",
            mk(di.clone(), LockPlacement::speculative(&di, 64).unwrap()),
        ),
    ]
}

/// Sharded counterparts: the same representative pairs partitioned over 8
/// independent instances. `shard_load` measures the multi-root write path
/// against `single_load`/`batch_load` on one instance; `shard_mixed`
/// exercises routed updates, fan-in point queries, batch churn, and
/// cross-shard transfer transactions on one shared keyspace.
fn sharded_variants() -> Vec<(&'static str, Arc<ShardedRelation>)> {
    let st = stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    vec![
        (
            "stick/coarse/x8",
            Arc::new(
                ShardedRelation::new(st.clone(), LockPlacement::coarse(&st).unwrap(), 8).unwrap(),
            ),
        ),
        (
            "split/fine/x8",
            Arc::new(
                ShardedRelation::new(sp.clone(), LockPlacement::fine(&sp).unwrap(), 8).unwrap(),
            ),
        ),
    ]
}

fn key(schema: &RelationSchema, s: i64, d: i64) -> Tuple {
    schema
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(schema: &RelationSchema, w: i64) -> Tuple {
    schema.tuple(&[("weight", Value::from(w))]).unwrap()
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// Single-shot `update` on random keys.
    UpdateHeavy,
    /// 4-op transfer transactions (query + query + update + update).
    TxnTransfer,
    /// 50% update, 30% point query, 20% transfer transaction.
    Mixed,
    /// Per-op inserts of 64-key blocks over thread-disjoint ranges — the
    /// single-op insert baseline `batch_load` is measured against. Only
    /// the inserts are timed; each block is removed again untimed so the
    /// relation's size stays bounded.
    SingleLoad,
    /// The same tuple stream as `single_load`, one `insert_all` per
    /// block.
    BatchLoad,
    /// Contended mix on a shared keyspace: 40% 16-row `insert_all`,
    /// 30% 16-key `remove_all`, 20% update, 10% point query.
    BatchMixed,
    /// Reclamation churn: 40% insert, 40% remove, 20% update over the
    /// fixed key range — every remove retires skip-list nodes, so this
    /// drives the epoch collector as hard as the representation allows.
    Churn,
    /// 95% point queries / 5% updates. Queries run single-shot, which
    /// since the MVCC layer landed routes onto the lock-free snapshot
    /// path: no locks, no restarts, writers undisturbed.
    ReadHeavy,
    /// The same 95/5 mix with every query routed through
    /// `transaction(|tx| tx.query(..))` — the pre-MVCC 2PL read path
    /// (shared root locks, restart-prone), kept as the committed
    /// comparison point for `read_heavy`.
    ReadHeavyLocked,
    /// 90% locked-path `query_range` (a random 16-wide window over the
    /// `src` column, top-16) / 10% updates. Routed through
    /// `transaction(|tx| tx.query_range(..))` because that is where the
    /// access path depends on the container: ordered containers walk only
    /// the interval (`RangeScan`), hash containers scan the whole edge
    /// and filter. (Single-shot range reads go to the snapshot path,
    /// whose version indexes are sorted on every representation — both
    /// variants would be bounded walks and the comparison would measure
    /// nothing.) Run on a skip-list-keyed representation vs the hash
    /// fallback so their ratio is the access-path advantage.
    RangeScan,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::UpdateHeavy => "update_heavy",
            Workload::TxnTransfer => "txn_transfer",
            Workload::Mixed => "mixed_rmw",
            Workload::SingleLoad => "single_load",
            Workload::BatchLoad => "batch_load",
            Workload::BatchMixed => "batch_mixed",
            Workload::Churn => "churn",
            Workload::ReadHeavy => "read_heavy",
            Workload::ReadHeavyLocked => "read_heavy_locked",
            Workload::RangeScan => "range_scan",
        }
    }
}

struct Sample {
    representation: String,
    workload: &'static str,
    threads: usize,
    total_ops: u64,
    elapsed_secs: f64,
    /// Per-op latency percentiles in microseconds, measured on the
    /// per-op workloads (block-granular workloads have no meaningful
    /// per-op latency and leave them `None`).
    p50_us: Option<f64>,
    p99_us: Option<f64>,
}

/// (p50, p99) over raw per-op nanosecond latencies.
fn percentiles_us(mut lats: Vec<u64>) -> (Option<f64>, Option<f64>) {
    if lats.is_empty() {
        return (None, None);
    }
    lats.sort_unstable();
    let at = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    (Some(at(0.50)), Some(at(0.99)))
}

fn run_workload(
    rel: &Arc<ConcurrentRelation>,
    workload: Workload,
    threads: usize,
    ops_per_thread: usize,
) -> Sample {
    let schema = rel.schema().clone();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let done = Arc::new(AtomicU64::new(0));
    // Load workloads time only their measured section (inserts); the
    // cleanup removes run off the clock. Accumulated across threads.
    let active_ns = Arc::new(AtomicU64::new(0));
    // Per-op latencies (nanoseconds) from the per-op workloads, merged
    // across threads at the end for the p50/p99 report.
    let latencies = Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
    let handles: Vec<_> = (0..threads as u64)
        .map(|tid| {
            let rel = Arc::clone(rel);
            let schema = schema.clone();
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let active_ns = Arc::clone(&active_ns);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let wcols = schema.column_set(&["weight"]).unwrap();
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                barrier.wait();
                if matches!(workload, Workload::SingleLoad | Workload::BatchLoad) {
                    // Load workloads: insert a 64-key block over a
                    // thread-disjoint range — per-op vs one `insert_all`
                    // over the *same tuple stream*. Only the inserts are
                    // timed (one inserted tuple = one counted op); each
                    // block is removed again off the clock so the relation
                    // stays bounded and every insert is a fresh key.
                    let base = 1_000_000 + tid as i64 * 1_000_000;
                    // Floor the sample size: load blocks are fast and a
                    // `--quick` budget of a couple thousand tuples is
                    // dominated by allocator/cache warm-up, which made the
                    // CI gate flap on these workloads.
                    let target = ops_per_thread.max(16_384) as u64;
                    let mut local = 0u64;
                    let mut insert_ns = 0u64;
                    let mut block = 0i64;
                    while local < target {
                        let lo = base + (block % 4_096) * BATCH as i64;
                        block += 1;
                        let rows: Vec<(Tuple, Tuple)> = (0..BATCH as i64)
                            .map(|j| (key(&schema, lo + j, lo + j), weight(&schema, j)))
                            .collect();
                        if workload == Workload::BatchLoad {
                            let t0 = Instant::now();
                            rel.insert_all(&rows).unwrap();
                            insert_ns += t0.elapsed().as_nanos() as u64;
                        } else {
                            let t0 = Instant::now();
                            for (s, t) in &rows {
                                rel.insert(s, t).unwrap();
                            }
                            insert_ns += t0.elapsed().as_nanos() as u64;
                        }
                        // Untimed cleanup (same path for both workloads).
                        let keys: Vec<Tuple> = rows.into_iter().map(|(s, _)| s).collect();
                        rel.remove_all(&keys).unwrap();
                        local += BATCH as u64;
                    }
                    done.fetch_add(local, Ordering::Relaxed);
                    active_ns.fetch_add(insert_ns, Ordering::Relaxed);
                    return;
                }
                if workload == Workload::Churn {
                    // Same floor as the load workloads: churn ops are
                    // cheap, and a `--quick` budget is dominated by
                    // warm-up (tower heights, epoch participant setup),
                    // which would make the CI gate flap on this workload.
                    let target = ops_per_thread.max(16_384) as u64;
                    let mut local = 0u64;
                    while local < target {
                        let k = (next() % KEY_RANGE as u64) as i64;
                        let w = (next() % 1000) as i64;
                        match next() % 5 {
                            0..=1 => {
                                rel.insert(&key(&schema, k, k), &weight(&schema, w))
                                    .unwrap();
                            }
                            2..=3 => {
                                rel.remove(&key(&schema, k, k)).unwrap();
                            }
                            _ => {
                                rel.update(&key(&schema, k, k), &weight(&schema, w))
                                    .unwrap();
                            }
                        }
                        local += 1;
                    }
                    done.fetch_add(local, Ordering::Relaxed);
                    return;
                }
                if workload == Workload::BatchMixed {
                    // Contended batches against single ops on one shared
                    // keyspace: batches churn off-diagonal keys while
                    // updates/queries hit the pre-populated diagonal.
                    let mut local = 0u64;
                    while local < ops_per_thread as u64 {
                        let a = (next() % KEY_RANGE as u64) as i64;
                        let w = (next() % 1000) as i64;
                        match next() % 10 {
                            0..=3 => {
                                let rows: Vec<(Tuple, Tuple)> = (0..16)
                                    .map(|_| {
                                        let s = (next() % KEY_RANGE as u64) as i64;
                                        (key(&schema, s, s + 1), weight(&schema, w))
                                    })
                                    .collect();
                                rel.insert_all(&rows).unwrap();
                                local += 16;
                            }
                            4..=6 => {
                                let keys: Vec<Tuple> = (0..16)
                                    .map(|_| {
                                        let s = (next() % KEY_RANGE as u64) as i64;
                                        key(&schema, s, s + 1)
                                    })
                                    .collect();
                                rel.remove_all(&keys).unwrap();
                                local += 16;
                            }
                            7..=8 => {
                                rel.update(&key(&schema, a, a), &weight(&schema, w))
                                    .unwrap();
                                local += 1;
                            }
                            _ => {
                                let _ = rel.query(&key(&schema, a, a), wcols).unwrap();
                                local += 1;
                            }
                        }
                    }
                    done.fetch_add(local, Ordering::Relaxed);
                    return;
                }
                // The read mixes floor their sample size like the load
                // workloads above: reads are ~1.5us, so a `--quick`
                // budget is a few tens of milliseconds — short enough
                // that one scheduler stall on the 1-CPU CI runner flips
                // the snapshot-vs-locked gate.
                let ops_per_thread = match workload {
                    Workload::ReadHeavy | Workload::ReadHeavyLocked => ops_per_thread.max(16_384),
                    // Range ops are hundreds of times heavier than point
                    // reads on the fallback representation: fix the
                    // *total* op budget instead of flooring it, so the
                    // fallback samples stay ~1s each at every thread
                    // count.
                    Workload::RangeScan => (4_096 / threads).max(256),
                    _ => ops_per_thread,
                };
                let scol = schema.column("src").unwrap();
                let rcols = schema.column_set(&["src", "weight"]).unwrap();
                let mut local = 0u64;
                let mut lats = Vec::with_capacity(ops_per_thread);
                for i in 0..ops_per_thread {
                    let a = (next() % KEY_RANGE as u64) as i64;
                    let b = (next() % KEY_RANGE as u64) as i64;
                    let w = (next() % 1000) as i64;
                    let pick = match workload {
                        Workload::UpdateHeavy => 0,
                        Workload::TxnTransfer => 1,
                        Workload::Mixed => match i % 10 {
                            0..=4 => 0,
                            5..=7 => 2,
                            _ => 1,
                        },
                        // 95/5 read/update, snapshot vs locked reads.
                        Workload::ReadHeavy => {
                            if i % 20 == 0 {
                                0
                            } else {
                                2
                            }
                        }
                        Workload::ReadHeavyLocked => {
                            if i % 20 == 0 {
                                0
                            } else {
                                3
                            }
                        }
                        // 90/10 range-read/update.
                        Workload::RangeScan => {
                            if i % 10 == 0 {
                                0
                            } else {
                                4
                            }
                        }
                        Workload::SingleLoad
                        | Workload::BatchLoad
                        | Workload::BatchMixed
                        | Workload::Churn => {
                            unreachable!("handled above")
                        }
                    };
                    let t0 = Instant::now();
                    match pick {
                        0 => {
                            rel.update(&key(&schema, a, a), &weight(&schema, w))
                                .unwrap();
                        }
                        1 => {
                            if a != b {
                                rel.transaction(|tx| {
                                    let wa = tx.query(&key(&schema, a, a), wcols)?;
                                    let wb = tx.query(&key(&schema, b, b), wcols)?;
                                    if wa.is_empty() || wb.is_empty() {
                                        return Ok(());
                                    }
                                    tx.update(&key(&schema, a, a), &weight(&schema, w))?;
                                    tx.update(&key(&schema, b, b), &weight(&schema, w + 1))?;
                                    Ok(())
                                })
                                .unwrap();
                            }
                        }
                        2 => {
                            // Single-shot: the lock-free snapshot path.
                            let _ = rel.query(&key(&schema, a, a), wcols).unwrap();
                        }
                        3 => {
                            // The 2PL read path: shared locks root-down,
                            // exactly what single-shot queries did before
                            // the MVCC layer.
                            rel.transaction(|tx| {
                                let _ = tx.query(&key(&schema, a, a), wcols)?;
                                Ok(())
                            })
                            .unwrap();
                        }
                        _ => {
                            // Locked-path range read: bounded in-order
                            // `RangeScan` on ordered containers, filtered
                            // full scan on hash containers.
                            let lo = (next() % RANGE_UNIVERSE as u64) as i64;
                            let range = RangePattern::half_open(
                                scol,
                                Value::from(lo),
                                Value::from(lo + 16),
                            )
                            .with_limit(16);
                            rel.transaction(|tx| {
                                let _ = tx.query_range(&Tuple::empty(), &range, rcols)?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                    lats.push(t0.elapsed().as_nanos() as u64);
                    local += 1;
                }
                done.fetch_add(local, Ordering::Relaxed);
                latencies.lock().unwrap().extend(lats);
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench worker panicked");
    }
    let elapsed = if matches!(workload, Workload::SingleLoad | Workload::BatchLoad) {
        // Per-thread measured time, averaged over threads: the parallel
        // equivalent of wall time for the timed sections alone.
        active_ns.load(Ordering::Relaxed) as f64 / threads as f64 / 1e9
    } else {
        start.elapsed().as_secs_f64()
    };
    let lats = std::mem::take(&mut *latencies.lock().unwrap());
    let (p50_us, p99_us) = percentiles_us(lats);
    Sample {
        representation: String::new(),
        workload: workload.label(),
        threads,
        total_ops: done.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        p50_us,
        p99_us,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum ShardWorkload {
    /// The `batch_load` tuple stream driven through a sharded relation:
    /// per-thread disjoint 64-key blocks, one `insert_all` per block (the
    /// router splits it into per-shard bulk sweeps), untimed cleanup.
    Load,
    /// Contended mix on a shared keyspace: 40% routed update, 20%
    /// cross-shard transfer transaction, 20% point query, 20% 16-row
    /// batch churn.
    Mixed,
}

impl ShardWorkload {
    fn label(self) -> &'static str {
        match self {
            ShardWorkload::Load => "shard_load",
            ShardWorkload::Mixed => "shard_mixed",
        }
    }
}

fn run_shard_workload(
    rel: &Arc<ShardedRelation>,
    workload: ShardWorkload,
    threads: usize,
    ops_per_thread: usize,
) -> Sample {
    let schema = rel.schema().clone();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let done = Arc::new(AtomicU64::new(0));
    let active_ns = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads as u64)
        .map(|tid| {
            let rel = Arc::clone(rel);
            let schema = schema.clone();
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let active_ns = Arc::clone(&active_ns);
            std::thread::spawn(move || {
                let wcols = schema.column_set(&["weight"]).unwrap();
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                barrier.wait();
                match workload {
                    ShardWorkload::Load => {
                        // Same protocol as `single_load`/`batch_load`
                        // (same floor, timed inserts, untimed cleanup) so
                        // the three are directly comparable.
                        let base = 1_000_000 + tid as i64 * 1_000_000;
                        let target = ops_per_thread.max(16_384) as u64;
                        let mut local = 0u64;
                        let mut insert_ns = 0u64;
                        let mut block = 0i64;
                        while local < target {
                            let lo = base + (block % 4_096) * BATCH as i64;
                            block += 1;
                            let rows: Vec<(Tuple, Tuple)> = (0..BATCH as i64)
                                .map(|j| (key(&schema, lo + j, lo + j), weight(&schema, j)))
                                .collect();
                            let t0 = Instant::now();
                            rel.insert_all(&rows).unwrap();
                            insert_ns += t0.elapsed().as_nanos() as u64;
                            let keys: Vec<Tuple> = rows.into_iter().map(|(s, _)| s).collect();
                            rel.remove_all(&keys).unwrap();
                            local += BATCH as u64;
                        }
                        done.fetch_add(local, Ordering::Relaxed);
                        active_ns.fetch_add(insert_ns, Ordering::Relaxed);
                    }
                    ShardWorkload::Mixed => {
                        let mut local = 0u64;
                        while local < ops_per_thread as u64 {
                            let a = (next() % KEY_RANGE as u64) as i64;
                            let b = (next() % KEY_RANGE as u64) as i64;
                            let w = (next() % 1000) as i64;
                            match next() % 10 {
                                0..=3 => {
                                    rel.update(&key(&schema, a, a), &weight(&schema, w))
                                        .unwrap();
                                    local += 1;
                                }
                                4..=5 => {
                                    // Cross-shard transfer: with 8 shards,
                                    // ~7 of 8 transfers span two roots.
                                    if a != b {
                                        rel.transaction(|tx| {
                                            let wa = tx.query(&key(&schema, a, a), wcols)?;
                                            let wb = tx.query(&key(&schema, b, b), wcols)?;
                                            if wa.is_empty() || wb.is_empty() {
                                                return Ok(());
                                            }
                                            tx.update(&key(&schema, a, a), &weight(&schema, w))?;
                                            tx.update(
                                                &key(&schema, b, b),
                                                &weight(&schema, w + 1),
                                            )?;
                                            Ok(())
                                        })
                                        .unwrap();
                                    }
                                    local += 1;
                                }
                                6..=7 => {
                                    let _ = rel.query(&key(&schema, a, a), wcols).unwrap();
                                    local += 1;
                                }
                                _ => {
                                    // Batch churn on off-diagonal keys.
                                    let rows: Vec<(Tuple, Tuple)> = (0..16)
                                        .map(|_| {
                                            let s = (next() % KEY_RANGE as u64) as i64;
                                            (key(&schema, s, s + 1), weight(&schema, w))
                                        })
                                        .collect();
                                    rel.insert_all(&rows).unwrap();
                                    let keys: Vec<Tuple> =
                                        rows.into_iter().map(|(s, _)| s).collect();
                                    rel.remove_all(&keys).unwrap();
                                    local += 32;
                                }
                            }
                        }
                        done.fetch_add(local, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench worker panicked");
    }
    let elapsed = if workload == ShardWorkload::Load {
        active_ns.load(Ordering::Relaxed) as f64 / threads as f64 / 1e9
    } else {
        start.elapsed().as_secs_f64()
    };
    Sample {
        representation: String::new(),
        workload: workload.label(),
        threads,
        total_ops: done.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        p50_us: None,
        p99_us: None,
    }
}

/// ` p50=… p99=…` when the sample carries per-op latencies, else empty.
fn latency_suffix(s: &Sample) -> String {
    match (s.p50_us, s.p99_us) {
        (Some(p50), Some(p99)) => format!(" p50={p50:.1}us p99={p99:.1}us"),
        _ => String::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = arg_present(&args, "--quick");
    let max_threads: usize = arg_value(&args, "--threads", 8);
    // The quick budget is sized so the CI gate's per-workload geomean sits
    // clear of scheduler noise against a full-run baseline; 2k-op samples
    // flapped the 25% tolerance once the baseline numbers rose.
    let default_ops = if quick { 6_000 } else { 50_000 };
    let ops_per_thread: usize = arg_value(&args, "--ops", default_ops);
    let out: String = arg_value(&args, "--out", "BENCH_txn.json".to_owned());

    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let workloads = [
        Workload::UpdateHeavy,
        Workload::TxnTransfer,
        Workload::Mixed,
        Workload::ReadHeavy,
        Workload::ReadHeavyLocked,
        Workload::SingleLoad,
        Workload::BatchLoad,
        Workload::BatchMixed,
    ];

    let mut samples: Vec<Sample> = Vec::new();
    for (name, rel) in variants() {
        // Pre-populate every diagonal key so updates always hit.
        for k in 0..KEY_RANGE {
            rel.insert(&key(rel.schema(), k, k), &weight(rel.schema(), k))
                .unwrap();
        }
        for workload in workloads {
            for &threads in &thread_counts {
                let mut s = run_workload(&rel, workload, threads, ops_per_thread);
                s.representation = name.to_owned();
                let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
                println!(
                    "{:<24} {:<17} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s){}",
                    s.representation,
                    s.workload,
                    s.threads,
                    rate,
                    s.total_ops,
                    s.elapsed_secs,
                    latency_suffix(&s),
                );
                samples.push(s);
            }
        }
        rel.verify().expect("structurally sound after benchmark");
    }

    // Reclamation churn runs on skip-list representations only: other
    // containers do not retire epoch-managed garbage, so the counters
    // would be flat. Reported alongside throughput: retired/reclaimed
    // deltas per sample plus the in-flight count at sample end, which
    // stays bounded under real reclamation (the old shim leaked every
    // retired node, growing linearly with removals).
    {
        let di = stick(
            ContainerKind::ConcurrentSkipListMap,
            ContainerKind::ConcurrentSkipListMap,
        );
        let rel = Arc::new(
            ConcurrentRelation::new(di.clone(), LockPlacement::fine(&di).unwrap()).unwrap(),
        );
        let name = "stick/skiplist/fine";
        for k in 0..KEY_RANGE {
            rel.insert(&key(rel.schema(), k, k), &weight(rel.schema(), k))
                .unwrap();
        }
        for &threads in &thread_counts {
            let before = rel.reclamation_stats();
            let mut s = run_workload(&rel, Workload::Churn, threads, ops_per_thread);
            s.representation = name.to_owned();
            let after = rel.reclamation_stats();
            let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
            println!(
                "{:<24} {:<14} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s) \
                 retired +{} reclaimed +{} in_flight {}",
                s.representation,
                s.workload,
                s.threads,
                rate,
                s.total_ops,
                s.elapsed_secs,
                after.retired - before.retired,
                after.reclaimed - before.reclaimed,
                after.in_flight(),
            );
            samples.push(s);
        }
        let flushed = rel.flush_reclamation();
        assert_eq!(
            flushed.in_flight(),
            0,
            "churn garbage fully reclaimed at quiescence"
        );
        println!(
            "churn reclamation at quiescence: retired {} reclaimed {} in_flight 0",
            flushed.retired, flushed.reclaimed
        );
        rel.verify().expect("structurally sound after churn");
    }

    // Range-scan workloads run on a dedicated pair of representations:
    // the same relation keyed by `src` through an ordered container
    // (skip list — the planner emits a native bounded in-order
    // `RangeScan`) vs a hash map (the same plan step degrades to a
    // filtered full scan). Their ratio is the access-path advantage;
    // `bench_compare` gates it within the candidate run.
    {
        let pairs: [(&str, Arc<Decomposition>); 2] = [
            (
                "stick/cslm-src/fine",
                stick(ContainerKind::ConcurrentSkipListMap, ContainerKind::HashMap),
            ),
            (
                "stick/chm-src/fine",
                stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            ),
        ];
        for (name, d) in pairs {
            let rel = Arc::new(
                ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap(),
            );
            for k in 0..RANGE_UNIVERSE {
                rel.insert(&key(rel.schema(), k, k), &weight(rel.schema(), k))
                    .unwrap();
            }
            for &threads in &thread_counts {
                let mut s = run_workload(&rel, Workload::RangeScan, threads, ops_per_thread);
                s.representation = name.to_owned();
                let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
                println!(
                    "{:<24} {:<17} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s){}",
                    s.representation,
                    s.workload,
                    s.threads,
                    rate,
                    s.total_ops,
                    s.elapsed_secs,
                    latency_suffix(&s),
                );
                samples.push(s);
            }
            rel.verify().expect("structurally sound after benchmark");
        }
    }

    for (name, rel) in sharded_variants() {
        for k in 0..KEY_RANGE {
            rel.insert(&key(rel.schema(), k, k), &weight(rel.schema(), k))
                .unwrap();
        }
        for workload in [ShardWorkload::Load, ShardWorkload::Mixed] {
            for &threads in &thread_counts {
                let mut s = run_shard_workload(&rel, workload, threads, ops_per_thread);
                s.representation = name.to_owned();
                let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
                println!(
                    "{:<24} {:<14} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s)",
                    s.representation, s.workload, s.threads, rate, s.total_ops, s.elapsed_secs
                );
                samples.push(s);
            }
        }
        rel.verify().expect("structurally sound after benchmark");
    }

    // WAL commit workload: the `update_heavy` op stream against a durable
    // relation, one redo record per committed transaction. The fsync-off
    // configuration measures the pure logging overhead (encode + append
    // under the publication window + buffered flush) and is sampled into
    // the JSON baseline; fsync-on numbers are printed only — real disk
    // sync latency is too machine-dependent to gate on — together with
    // the group-commit amortization (commits per fsync).
    {
        let mk_durable = |fsync: bool, tag: &str| {
            let dir =
                std::env::temp_dir().join(format!("relc-bench-wal-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
            let opts = WalOptions {
                fsync,
                group_window: if fsync {
                    Duration::from_millis(2)
                } else {
                    Duration::ZERO
                },
            };
            let (rel, _) = ConcurrentRelation::open_durable(
                sp.clone(),
                LockPlacement::fine(&sp).unwrap(),
                &dir,
                opts,
            )
            .unwrap();
            let rel = Arc::new(rel);
            for k in 0..KEY_RANGE {
                rel.insert(&key(rel.schema(), k, k), &weight(rel.schema(), k))
                    .unwrap();
            }
            (rel, dir)
        };
        for &threads in &thread_counts {
            let (rel, dir) = mk_durable(false, &format!("nosync-{threads}"));
            let mut s = run_workload(&rel, Workload::UpdateHeavy, threads, ops_per_thread);
            s.representation = "split/fine/wal".to_owned();
            s.workload = "wal_commit";
            let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
            println!(
                "{:<24} {:<17} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s){}",
                s.representation,
                s.workload,
                s.threads,
                rate,
                s.total_ops,
                s.elapsed_secs,
                latency_suffix(&s),
            );
            samples.push(s);
            rel.verify().expect("structurally sound after benchmark");
            drop(rel);
            let _ = std::fs::remove_dir_all(&dir);
        }
        // fsync-on: top thread count only, smaller budget (each commit
        // waits for a real fsync batch).
        let threads = *thread_counts.last().expect("nonempty");
        let (rel, dir) = mk_durable(true, "fsync");
        let s = run_workload(
            &rel,
            Workload::UpdateHeavy,
            threads,
            ops_per_thread.min(2_000),
        );
        let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
        let stats = rel.wal_stats().expect("durable relation has WAL stats");
        println!(
            "{:<24} {:<17} threads={:<2} {:>12.0} ops/s ({} ops in {:.3}s) \
             commits/fsync {:.1} (max batch {}) [print-only]",
            "split/fine/wal",
            "wal_commit_fsync",
            threads,
            rate,
            s.total_ops,
            s.elapsed_secs,
            stats.appends as f64 / stats.fsyncs.max(1) as f64,
            stats.max_batch,
        );
        rel.verify().expect("structurally sound after benchmark");
        drop(rel);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Batch amortization summary: batch_load vs single_load on the same
    // tuple stream, per representation at the highest thread count.
    let top = *thread_counts.last().expect("nonempty");
    let rate_of = |rep: &str, wl: &str| {
        samples
            .iter()
            .find(|s| s.representation == rep && s.workload == wl && s.threads == top)
            .map(|s| s.total_ops as f64 / s.elapsed_secs.max(1e-9))
    };
    let reps: Vec<String> = {
        let mut seen = Vec::new();
        for s in &samples {
            if !seen.contains(&s.representation) {
                seen.push(s.representation.clone());
            }
        }
        seen
    };
    for rep in &reps {
        if let (Some(single), Some(batch)) =
            (rate_of(rep, "single_load"), rate_of(rep, "batch_load"))
        {
            println!(
                "batch speedup {rep:<24} at {top} threads: {:.2}x ({:.0} -> {:.0} ops/s)",
                batch / single.max(1e-9),
                single,
                batch
            );
        }
    }
    // MVCC read-path summary: lock-free snapshot reads vs the 2PL locked
    // read path on the same 95/5 mix, at the highest thread count.
    for rep in &reps {
        if let (Some(locked), Some(snap)) = (
            rate_of(rep, "read_heavy_locked"),
            rate_of(rep, "read_heavy"),
        ) {
            println!(
                "snapshot-read speedup {rep:<24} at {top} threads: {:.2}x ({:.0} -> {:.0} ops/s)",
                snap / locked.max(1e-9),
                locked,
                snap
            );
        }
    }
    // Range access-path summary: native ordered RangeScan vs the
    // filtered-fallback scan on the same mix, at the highest thread count.
    if let (Some(ordered), Some(fallback)) = (
        rate_of("stick/cslm-src/fine", "range_scan"),
        rate_of("stick/chm-src/fine", "range_scan"),
    ) {
        println!(
            "range-scan ordered vs fallback at {top} threads: {:.2}x ({:.0} -> {:.0} ops/s)",
            ordered / fallback.max(1e-9),
            fallback,
            ordered
        );
    }

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"benchmark\": \"txn_mix\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"ops_per_thread\": {ops_per_thread},");
    let _ = writeln!(json, "  \"key_range\": {KEY_RANGE},");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let rate = s.total_ops as f64 / s.elapsed_secs.max(1e-9);
        let _ = write!(
            json,
            "    {{\"representation\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"total_ops\": {}, \"elapsed_secs\": {:.6}, \
             \"ops_per_sec\": {:.1}",
            s.representation, s.workload, s.threads, s.total_ops, s.elapsed_secs, rate
        );
        if let (Some(p50), Some(p99)) = (s.p50_us, s.p99_us) {
            let _ = write!(json, ", \"p50_us\": {p50:.2}, \"p99_us\": {p99:.2}");
        }
        json.push('}');
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write baseline");
    println!("wrote {out} ({} samples)", samples.len());
}
