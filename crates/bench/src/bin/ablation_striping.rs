//! **Stripe-factor ablation (§4.4)**: "By increasing the value k we can
//! reduce lock contention to arbitrarily low levels, at the cost of making
//! operations such as iteration that access the entire container more
//! expensive."
//!
//! Sweeps k ∈ {1, 4, 64, 1024} on the split decomposition under a
//! write-heavy mix (contention reduction) and under a predecessor-heavy
//! mix on the *stick* (whose predecessor queries must take all k stripes —
//! the iteration cost).
//!
//! ```text
//! cargo run -p relc-bench --release --bin ablation_striping [-- --ops N]
//! ```

use std::sync::Arc;

use relc::decomp::library::{split, stick};
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_autotune::calibrate::{run_workload, KeyDistribution, OpMix, WorkloadConfig};
use relc_autotune::{GraphOps, RelationGraph};
use relc_bench::arg_value;
use relc_bench::report::ThroughputTable;
use relc_containers::ContainerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops: usize = arg_value(&args, "--ops", 20_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let factors = [1u32, 4, 64, 1024];

    println!("Stripe-factor ablation (§4.4); {threads} threads, {ops} ops/thread\n");

    // (a) Contention: write-heavy split — more stripes should help.
    let mut table = ThroughputTable::new(
        "split / 0-0-50-50 (contention: higher k should win)",
        factors.iter().map(|&k| k as usize).collect(),
    );
    let mut row = Vec::new();
    for &k in &factors {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, k).expect("valid");
        let rel = Arc::new(ConcurrentRelation::new(d, p).expect("valid"));
        let g: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel).expect("graph"));
        let res = run_workload(
            &g,
            &WorkloadConfig {
                mix: OpMix::new(0, 0, 50, 50),
                threads,
                ops_per_thread: ops,
                key_range: 256,
                distribution: KeyDistribution::Uniform,
                seed: 1,
            },
        );
        row.push(res.ops_per_sec);
    }
    table.push_row("striped split", row);
    println!("{}", table.render());

    // (b) Iteration: predecessor queries on the stick take all k stripes.
    let mut table = ThroughputTable::new(
        "stick / 35-35-20-10 (iteration: higher k hurts predecessor scans)",
        factors.iter().map(|&k| k as usize).collect(),
    );
    let mut row = Vec::new();
    for &k in &factors {
        let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::striped_root(&d, k).expect("valid");
        let rel = Arc::new(ConcurrentRelation::new(d, p).expect("valid"));
        let g: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel).expect("graph"));
        let res = run_workload(
            &g,
            &WorkloadConfig {
                mix: OpMix::new(35, 35, 20, 10),
                threads,
                ops_per_thread: ops / 4, // predecessor scans are slow on sticks
                key_range: 256,
                distribution: KeyDistribution::Uniform,
                seed: 1,
            },
        );
        row.push(res.ops_per_sec);
    }
    table.push_row("striped stick", row);
    println!("{}", table.render());
}
