//! Regenerates **Figure 5**: throughput/scalability curves for the four
//! §6.2 operation mixes over the 13 representative graph representations
//! (plus a speculative bonus series).
//!
//! ```text
//! cargo run -p relc-bench --release --bin figure5 [-- --ops N | --full]
//!     [--keys K] [--seed S]
//! ```
//!
//! Defaults to 5×10⁴ operations per thread (CI-scale); `--full` runs the
//! paper's 5×10⁵. Thread counts sweep powers of two up to the machine's
//! parallelism. Prints a human table and a CSV block per mix.

use std::sync::Arc;

use relc_autotune::calibrate::{run_workload, KeyDistribution, WorkloadConfig, FIGURE5_MIXES};
use relc_bench::report::{default_thread_counts, ThroughputTable};
use relc_bench::{arg_present, arg_value, figures};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = arg_present(&args, "--full");
    let ops: usize = arg_value(&args, "--ops", if full { 500_000 } else { 50_000 });
    let keys: i64 = arg_value(&args, "--keys", 256);
    let seed: u64 = arg_value(&args, "--seed", 0x5eed);
    let threads = default_thread_counts();

    println!("Figure 5: throughput-scalability for the §6.2 graph benchmark");
    println!(
        "(ops/thread = {ops}, key range = {keys}, threads = {threads:?}; \
         series per Fig. 3 structures)\n"
    );

    let mut csv = String::new();
    for mix in FIGURE5_MIXES {
        let mut table = ThroughputTable::new(
            format!("Operation Distribution: {}", mix.label()),
            threads.clone(),
        );
        for cfg in figures::figure5_configs() {
            let mut row = Vec::with_capacity(threads.len());
            for &t in &threads {
                let graph = cfg.build();
                let wl = WorkloadConfig {
                    mix,
                    threads: t,
                    ops_per_thread: ops,
                    key_range: keys,
                    distribution: KeyDistribution::Uniform,
                    seed,
                };
                let res = run_workload(&Arc::clone(&graph), &wl);
                row.push(res.ops_per_sec);
            }
            table.push_row(cfg.name, row);
            eprint!(".");
        }
        eprintln!();
        println!("{}", table.render());
        csv.push_str(&table.render_csv());
        csv.push('\n');
    }
    println!("--- CSV ---\n{csv}");
}
