//! Regenerates **Figure 1**: the concurrency-safety and consistency
//! properties of the container catalog.
//!
//! ```text
//! cargo run -p relc-bench --release --bin figure1_taxonomy
//! ```

use relc_containers::{render_figure1, ContainerKind};

fn main() {
    println!("Figure 1: concurrency safety of the container catalog");
    println!("(cells: yes = safe + linearizable, weak = safe but weakly");
    println!(" consistent, no = unsafe without external synchronization)\n");
    let rows: Vec<_> = ContainerKind::FIGURE1.iter().map(|k| k.props()).collect();
    println!("{}", render_figure1(&rows));
    println!("Extended catalog (beyond the paper's five):\n");
    let extra: Vec<_> = [ContainerKind::SplayTreeMap, ContainerKind::Singleton]
        .iter()
        .map(|k| k.props())
        .collect();
    println!("{}", render_figure1(&extra));
}
