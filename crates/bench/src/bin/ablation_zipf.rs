//! **Key-skew ablation** (our extension to the §6.2 methodology): under a
//! Zipf-skewed key distribution, most operations hit a handful of hot keys,
//! so lock striping no longer spreads writers — the placement trade-offs
//! shift compared to the paper's uniform workload.
//!
//! ```text
//! cargo run -p relc-bench --release --bin ablation_zipf [-- --ops N]
//! ```

use std::sync::Arc;

use relc::decomp::library::split;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_autotune::calibrate::{run_workload, KeyDistribution, OpMix, WorkloadConfig};
use relc_autotune::{GraphOps, RelationGraph};
use relc_bench::arg_value;
use relc_bench::report::ThroughputTable;
use relc_containers::ContainerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops: usize = arg_value(&args, "--ops", 20_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let skews: [(&str, KeyDistribution); 3] = [
        ("uniform", KeyDistribution::Uniform),
        ("zipf(0.8)", KeyDistribution::Zipf(0.8)),
        ("zipf(1.4)", KeyDistribution::Zipf(1.4)),
    ];

    println!("Key-skew ablation; split decomposition, 0-0-50-50, {threads} threads\n");
    let mut table = ThroughputTable::new(
        "throughput by placement × skew (kops/sec; columns = skew index)",
        (0..skews.len()).collect(),
    );
    for (pname, placement) in [("coarse", 0u8), ("striped(1024)", 1)] {
        let mut row = Vec::new();
        for (_, dist) in skews {
            let d = if placement == 0 {
                split(ContainerKind::HashMap, ContainerKind::TreeMap)
            } else {
                split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap)
            };
            let p = if placement == 0 {
                LockPlacement::coarse(&d).expect("valid")
            } else {
                LockPlacement::striped_root(&d, 1024).expect("valid")
            };
            let rel = Arc::new(ConcurrentRelation::new(d, p).expect("valid"));
            let g: Arc<dyn GraphOps> = Arc::new(RelationGraph::new(rel).expect("graph"));
            let res = run_workload(
                &g,
                &WorkloadConfig {
                    mix: OpMix::new(0, 0, 50, 50),
                    threads,
                    ops_per_thread: ops,
                    key_range: 256,
                    distribution: dist,
                    seed: 9,
                },
            );
            row.push(res.ops_per_sec);
        }
        table.push_row(pname, row);
    }
    for (i, (name, _)) in skews.iter().enumerate() {
        println!("  column {i} = {name}");
    }
    println!("\n{}", table.render());
    println!(
        "Expectation: striping's advantage over coarse shrinks as skew grows — \
         hot keys serialize on the same stripe regardless of k."
    );
}
