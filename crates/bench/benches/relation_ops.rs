//! Criterion benchmarks of single-threaded synthesized-relation operation
//! latency across representative decomposition/placement pairs — the
//! constant factors under the Figure 5 curves.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

fn variants() -> Vec<(&'static str, Arc<ConcurrentRelation>)> {
    let mk = |d: Arc<Decomposition>, p| Arc::new(ConcurrentRelation::new(d, p).unwrap());
    let s = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    vec![
        (
            "stick/coarse",
            mk(s.clone(), LockPlacement::coarse(&s).unwrap()),
        ),
        (
            "split/fine",
            mk(sp.clone(), LockPlacement::fine(&sp).unwrap()),
        ),
        (
            "split/striped1024",
            mk(sp.clone(), LockPlacement::striped_root(&sp, 1024).unwrap()),
        ),
        (
            "diamond/speculative",
            mk(di.clone(), LockPlacement::speculative(&di, 1024).unwrap()),
        ),
    ]
}

fn key(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation_insert_remove_pair");
    for (name, rel) in variants() {
        let w = rel.schema().tuple(&[("weight", Value::from(1))]).unwrap();
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                let k = key(&rel, i % 512, (i * 7) % 512);
                std::hint::black_box(rel.insert(&k, &w).unwrap());
                std::hint::black_box(rel.remove(&k).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_successor_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation_find_successors");
    for (name, rel) in variants() {
        let w = rel.schema().tuple(&[("weight", Value::from(1))]).unwrap();
        for i in 0..2_000i64 {
            rel.insert(&key(&rel, i % 128, i), &w).unwrap();
        }
        let dw = rel.schema().column_set(&["dst", "weight"]).unwrap();
        let mut s = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                s = (s + 11) % 128;
                let pat = rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                std::hint::black_box(rel.query(&pat, dw).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_predecessor_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation_find_predecessors");
    group.sample_size(20);
    for (name, rel) in variants() {
        let w = rel.schema().tuple(&[("weight", Value::from(1))]).unwrap();
        for i in 0..2_000i64 {
            rel.insert(&key(&rel, i % 128, i % 64), &w).unwrap();
        }
        let sw = rel.schema().column_set(&["src", "weight"]).unwrap();
        let mut d = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                d = (d + 5) % 64;
                let pat = rel.schema().tuple(&[("dst", Value::from(d))]).unwrap();
                // Sticks answer this with a full scan; splits/diamonds with
                // an index lookup — the Figure 5 asymmetry in miniature.
                std::hint::black_box(rel.query(&pat, sw).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_remove,
    bench_successor_query,
    bench_predecessor_query
);
criterion_main!(benches);
