//! Criterion ablations of the design choices DESIGN.md calls out:
//! lock-sort elision (§5.2) and the speculative-vs-striped placement
//! trade-off (§4.5).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relc::decomp::library::{diamond, stick};
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

fn bench_sort_elision(c: &mut Criterion) {
    // Full iteration over a sorted (TreeMap) stick under fine locking; the
    // planner marks every lock statement presorted.
    let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
    for i in 0..1_000i64 {
        let s = d
            .schema()
            .tuple(&[("src", Value::from(i % 32)), ("dst", Value::from(i))])
            .unwrap();
        let t = d.schema().tuple(&[("weight", Value::from(i))]).unwrap();
        rel.insert(&s, &t).unwrap();
    }
    let all = d.schema().columns();
    let mut group = c.benchmark_group("sort_elision_full_scan");
    group.sample_size(20);
    for (label, force) in [("elided", false), ("forced", true)] {
        rel.set_always_sort_locks(force);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| std::hint::black_box(rel.query(&Tuple::empty(), all).unwrap()))
        });
    }
    rel.set_always_sort_locks(false);
    group.finish();
}

fn bench_speculative_vs_striped_point_reads(c: &mut Criterion) {
    // Single-threaded successor lookups: speculation pays an extra
    // validation lookup; striping pays a hash+stripe pick. Contended
    // behavior is covered by the figure5 harness; this isolates the
    // single-thread constant factors.
    let mut group = c.benchmark_group("speculative_vs_striped_successors");
    for (label, placement) in [("striped1024", "s"), ("speculative1024", "p")] {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = if placement == "s" {
            LockPlacement::striped_root(&d, 1024).unwrap()
        } else {
            LockPlacement::speculative(&d, 1024).unwrap()
        };
        let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
        for i in 0..2_000i64 {
            let s = d
                .schema()
                .tuple(&[("src", Value::from(i % 128)), ("dst", Value::from(i))])
                .unwrap();
            let t = d.schema().tuple(&[("weight", Value::from(i))]).unwrap();
            rel.insert(&s, &t).unwrap();
        }
        let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
        let mut k = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                k = (k + 31) % 128;
                let pat = d.schema().tuple(&[("src", Value::from(k))]).unwrap();
                std::hint::black_box(rel.query(&pat, dw).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_elision,
    bench_speculative_vs_striped_point_reads
);
criterion_main!(benches);
