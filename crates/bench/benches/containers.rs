//! Criterion microbenchmarks of the container substrate: per-kind lookup,
//! write, and scan costs (these are the per-edge costs the query planner's
//! cost model abstracts).

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relc_containers::{Container, ContainerKind};

const N: i64 = 1_000;

fn prefilled(kind: ContainerKind) -> Box<dyn Container<i64, i64>> {
    let c = kind.instantiate::<i64, i64>();
    for i in 0..N {
        c.write(&i, Some(i * 2));
    }
    c
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_lookup");
    for kind in [
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::CopyOnWriteArrayList,
        ContainerKind::SplayTreeMap,
    ] {
        let map = prefilled(kind);
        let mut key = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                key = (key + 7) % N;
                std::hint::black_box(map.lookup(&key))
            })
        });
    }
    group.finish();
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_write_update");
    for kind in [
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::SplayTreeMap,
    ] {
        let map = prefilled(kind);
        let mut key = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                key = (key + 13) % N;
                std::hint::black_box(map.write(&key, Some(key)))
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_scan_1000");
    for kind in [
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::CopyOnWriteArrayList,
    ] {
        let map = prefilled(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                map.scan(&mut |_, v| {
                    acc = acc.wrapping_add(*v);
                    ControlFlow::Continue(())
                });
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_write, bench_scan);
criterion_main!(benches);
