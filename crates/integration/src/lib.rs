//! `relc-integration` hosts the repository-level integration tests
//! (`/tests`) and runnable examples (`/examples`). It also exports the
//! shared helpers those targets use.

use std::sync::Arc;

use relc::ConcurrentRelation;
use relc_autotune::candidates::{enumerate, Candidate, PlacementKind, Structure};
use relc_containers::ContainerKind;

/// Builds a labelled matrix of graph-relation representations covering the
/// three Fig. 3 structures and all four placement families, expressed
/// through the autotuner's [`Candidate`] API: a consistency-filtered slice
/// of the enumerated §6.1 space, plus curated candidates that exercise the
/// containers outside the autotune menu (splay trees, copy-on-write
/// arrays) and mixed per-branch container choices.
pub fn graph_variant_matrix() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let mut cands: Vec<Candidate> = Vec::new();

    // One enumerated candidate per (structure, placement family): the
    // autotuner's own validity- and consistency-filtered space.
    let space = enumerate(&[16]);
    for structure in Structure::ALL {
        for family in ["coarse", "fine", "striped", "speculative"] {
            if let Some(c) = space.iter().find(|c| {
                c.structure == structure
                    && match c.placement {
                        PlacementKind::Coarse => family == "coarse",
                        PlacementKind::Fine => family == "fine",
                        PlacementKind::Striped(_) => family == "striped",
                        PlacementKind::Speculative(_) => family == "speculative",
                    }
            }) {
                cands.push(c.clone());
            }
        }
    }

    // Curated candidates beyond the autotune menu: splay trees (§5's
    // self-adjusting container), copy-on-write arrays, and split/diamond
    // variants with different containers per branch.
    let curated = [
        Candidate {
            structure: Structure::Stick,
            top: ContainerKind::HashMap,
            second: ContainerKind::SplayTreeMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Coarse,
        },
        Candidate {
            structure: Structure::Stick,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::SplayTreeMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Fine,
        },
        Candidate {
            structure: Structure::Stick,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::SplayTreeMap,
            top2: None,
            second2: None,
            placement: PlacementKind::Striped(16),
        },
        Candidate {
            structure: Structure::Stick,
            top: ContainerKind::ConcurrentSkipListMap,
            second: ContainerKind::CopyOnWriteArrayList,
            top2: None,
            second2: None,
            placement: PlacementKind::Striped(8),
        },
        Candidate {
            structure: Structure::Split,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::CopyOnWriteArrayList,
            top2: None,
            second2: None,
            placement: PlacementKind::Fine,
        },
        Candidate {
            structure: Structure::Split,
            top: ContainerKind::ConcurrentSkipListMap,
            second: ContainerKind::TreeMap,
            top2: Some(ContainerKind::ConcurrentHashMap),
            second2: Some(ContainerKind::HashMap),
            placement: PlacementKind::Striped(16),
        },
        Candidate {
            structure: Structure::Split,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::SplayTreeMap,
            top2: Some(ContainerKind::ConcurrentHashMap),
            second2: Some(ContainerKind::CopyOnWriteArrayList),
            placement: PlacementKind::Fine,
        },
        Candidate {
            structure: Structure::Diamond,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::CopyOnWriteArrayList,
            top2: None,
            second2: None,
            placement: PlacementKind::Fine,
        },
        Candidate {
            structure: Structure::Diamond,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::CopyOnWriteArrayList,
            top2: None,
            second2: None,
            placement: PlacementKind::Striped(16),
        },
        Candidate {
            structure: Structure::Diamond,
            top: ContainerKind::ConcurrentHashMap,
            second: ContainerKind::HashMap,
            top2: Some(ContainerKind::ConcurrentSkipListMap),
            second2: Some(ContainerKind::TreeMap),
            placement: PlacementKind::Speculative(8),
        },
    ];
    cands.extend(curated);

    cands
        .into_iter()
        .filter_map(|c| {
            let rel = c.build().ok()?;
            Some((c.name(), rel))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_substantial_and_diverse() {
        let m = graph_variant_matrix();
        assert!(m.len() >= 20, "got {}", m.len());
        // All three structures and all four placement families appear.
        for needle in [
            "stick/",
            "split/",
            "diamond/",
            "coarse",
            "fine",
            "striped",
            "speculative",
        ] {
            assert!(
                m.iter().any(|(n, _)| n.contains(needle)),
                "no `{needle}` variant in {:?}",
                m.iter().map(|(n, _)| n).collect::<Vec<_>>()
            );
        }
        // The curated containers beyond the autotune menu survive.
        assert!(m.iter().any(|(n, _)| n.contains("SplayTreeMap")));
        assert!(m.iter().any(|(n, _)| n.contains("CopyOnWriteArrayList")));
        // Mixed per-branch containers are present (Candidate::name marks
        // them with ` | `).
        assert!(m.iter().any(|(n, _)| n.contains(" | ")));
    }
}
