//! `relc-integration` hosts the repository-level integration tests
//! (`/tests`) and runnable examples (`/examples`). It also exports the
//! shared helpers those targets use.

use std::sync::Arc;

use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;

/// Builds a labelled matrix of graph-relation representations covering the
/// three Fig. 3 structures and all four placement families.
pub fn graph_variant_matrix() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let mut out: Vec<(String, Arc<ConcurrentRelation>)> = Vec::new();
    let decomps: Vec<(&str, Arc<Decomposition>)> = vec![
        (
            "stick(HM,TM)",
            stick(ContainerKind::HashMap, ContainerKind::TreeMap),
        ),
        (
            "stick(CHM,HM)",
            stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        ),
        (
            "split(CHM,HM)",
            split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        ),
        (
            "split(CSLM,TM)",
            split(ContainerKind::ConcurrentSkipListMap, ContainerKind::TreeMap),
        ),
        (
            "diamond(CHM,HM)",
            diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        ),
        (
            "diamond(CHM,COW)",
            diamond(
                ContainerKind::ConcurrentHashMap,
                ContainerKind::CopyOnWriteArrayList,
            ),
        ),
        (
            "stick(CHM,Splay)",
            stick(
                ContainerKind::ConcurrentHashMap,
                ContainerKind::SplayTreeMap,
            ),
        ),
    ];
    for (dname, d) in decomps {
        let placements = [
            ("coarse", LockPlacement::coarse(&d).ok()),
            ("fine", LockPlacement::fine(&d).ok()),
            ("striped16", LockPlacement::striped_root(&d, 16).ok()),
            ("spec8", LockPlacement::speculative(&d, 8).ok()),
        ];
        for (pname, p) in placements {
            if let Some(p) = p {
                let rel = ConcurrentRelation::new(d.clone(), p).expect("matrix variants are valid");
                out.push((format!("{dname}/{pname}"), Arc::new(rel)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_substantial_and_diverse() {
        let m = graph_variant_matrix();
        assert!(m.len() >= 20, "got {}", m.len());
        assert!(m.iter().any(|(n, _)| n.contains("spec")));
        assert!(m.iter().any(|(n, _)| n.contains("Splay")));
        assert!(m.iter().any(|(n, _)| n.contains("COW")));
    }
}
