//! Regression tests for multi-index decompositions where a mutation's
//! traversal must *scan* a secondary index whose key columns are not bound
//! by the operation's pattern — several candidate states match the scan and
//! only deeper edges filter them (the scheduler shape: remove by pid, while
//! a by-cpu index exists).

use std::sync::Arc;

use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, RelationSchema, Value};

/// pid → cpu, state; indexed by pid and, separately, by (cpu, pid).
fn scheduler_decomposition(by_pid: ContainerKind, by_cpu: ContainerKind) -> Arc<Decomposition> {
    let schema = RelationSchema::builder()
        .column("pid")
        .column("cpu")
        .column("state")
        .fd(&["pid"], &["cpu", "state"])
        .build();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let p1 = b.node("byPid");
    let p2 = b.node("pidCpu");
    let leaf = b.node("proc");
    let c1 = b.node("byCpu");
    let c2 = b.node("queued");
    b.edge(root, p1, &["pid"], by_pid).unwrap();
    b.edge(p1, p2, &["cpu"], ContainerKind::Singleton).unwrap();
    b.edge(p2, leaf, &["state"], ContainerKind::Singleton)
        .unwrap();
    b.edge(root, c1, &["cpu"], by_cpu).unwrap();
    b.edge(c1, c2, &["pid"], by_cpu).unwrap();
    b.edge(c2, leaf, &["state"], ContainerKind::Singleton)
        .unwrap();
    b.build().unwrap()
}

fn variants() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let mut out = Vec::new();
    for (cname, by_pid, by_cpu) in [
        ("HM/TM", ContainerKind::HashMap, ContainerKind::TreeMap),
        (
            "CHM/CSLM",
            ContainerKind::ConcurrentHashMap,
            ContainerKind::ConcurrentSkipListMap,
        ),
    ] {
        let d = scheduler_decomposition(by_pid, by_cpu);
        for (pname, p) in [
            ("coarse", LockPlacement::coarse(&d).ok()),
            ("fine", LockPlacement::fine(&d).ok()),
            ("striped", LockPlacement::striped_root(&d, 16).ok()),
        ] {
            if let Some(p) = p {
                out.push((
                    format!("{cname}/{pname}"),
                    Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap()),
                ));
            }
        }
    }
    out
}

#[test]
fn remove_by_pid_filters_candidate_cpus() {
    for (name, rel) in variants() {
        let schema = rel.schema().clone();
        // Ten processes spread over 4 cpus.
        for pid in 0..10i64 {
            let s = schema.tuple(&[("pid", Value::from(pid))]).unwrap();
            let t = schema
                .tuple(&[
                    ("cpu", Value::from(pid % 4)),
                    ("state", Value::from("ready")),
                ])
                .unwrap();
            assert!(rel.insert(&s, &t).unwrap(), "{name}");
        }
        // Removing pid 6 must not disturb other pids that share no cpu —
        // nor pid 2, which shares cpu 2 with pid 6.
        let key6 = schema.tuple(&[("pid", Value::from(6))]).unwrap();
        assert_eq!(rel.remove(&key6).unwrap(), 1, "{name}");
        assert_eq!(rel.len(), 9, "{name}");
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        // pid 2 still on cpu 2.
        let got = rel
            .query(
                &schema.tuple(&[("pid", Value::from(2))]).unwrap(),
                schema.column_set(&["cpu"]).unwrap(),
            )
            .unwrap();
        assert_eq!(
            got,
            vec![schema.tuple(&[("cpu", Value::from(2))]).unwrap()],
            "{name}"
        );
        // cpu-2 queue contains pid 2 but not pid 6.
        let queue = rel
            .query(
                &schema.tuple(&[("cpu", Value::from(2))]).unwrap(),
                schema.column_set(&["pid"]).unwrap(),
            )
            .unwrap();
        let pids: Vec<i64> = queue
            .iter()
            .map(|t| {
                t.get(schema.column("pid").unwrap())
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert_eq!(pids, vec![2], "{name}");
        // Removing an absent pid is a no-op.
        assert_eq!(rel.remove(&key6).unwrap(), 0, "{name}");
    }
}

#[test]
fn migration_storm_differential_vs_oracle() {
    for (name, rel) in variants() {
        let schema = rel.schema().clone();
        let oracle = OracleRelation::empty(schema.clone());
        let mut x = 0xabcdef1u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..400 {
            let pid = (next() % 12) as i64;
            let cpu = (next() % 4) as i64;
            let key = schema.tuple(&[("pid", Value::from(pid))]).unwrap();
            match next() % 3 {
                0 => {
                    let t = schema
                        .tuple(&[("cpu", Value::from(cpu)), ("state", Value::from("r"))])
                        .unwrap();
                    let got = rel.insert(&key, &t).unwrap();
                    let want = oracle.insert(&key, &t).unwrap();
                    assert_eq!(got, want, "{name}");
                }
                1 => {
                    let got = rel.remove(&key).unwrap();
                    let want = oracle.remove(&key);
                    assert_eq!(got, want, "{name}");
                }
                _ => {
                    let pat = schema.tuple(&[("cpu", Value::from(cpu))]).unwrap();
                    let cols = schema.column_set(&["pid", "state"]).unwrap();
                    let got = rel.query(&pat, cols).unwrap();
                    assert_eq!(got, oracle.query(&pat, cols), "{name}");
                }
            }
        }
        let got = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let want: std::collections::BTreeSet<_> = oracle.snapshot().into_iter().collect();
        assert_eq!(got, want, "{name}");
    }
}

#[test]
fn concurrent_migrations_keep_indexes_consistent() {
    let d = scheduler_decomposition(
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
    );
    let p = LockPlacement::striped_root(&d, 16).unwrap();
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
    let schema = rel.schema().clone();
    for pid in 0..64i64 {
        let s = schema.tuple(&[("pid", Value::from(pid))]).unwrap();
        let t = schema
            .tuple(&[("cpu", Value::from(pid % 4)), ("state", Value::from("r"))])
            .unwrap();
        rel.insert(&s, &t).unwrap();
    }
    let handles: Vec<_> = (0..8u64)
        .map(|tid| {
            let rel = rel.clone();
            std::thread::spawn(move || {
                let schema = rel.schema().clone();
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..300 {
                    let pid = (next() % 64) as i64;
                    let key = schema.tuple(&[("pid", Value::from(pid))]).unwrap();
                    if rel.remove(&key).unwrap() == 1 {
                        let t = schema
                            .tuple(&[
                                ("cpu", Value::from((next() % 4) as i64)),
                                ("state", Value::from("m")),
                            ])
                            .unwrap();
                        assert!(rel.insert(&key, &t).unwrap());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(rel.len(), 64, "migrations preserve cardinality");
    rel.verify().unwrap();
    // Each pid appears on exactly one cpu across the by-cpu index.
    let mut seen = std::collections::BTreeSet::new();
    for cpu in 0..4i64 {
        let pat = schema.tuple(&[("cpu", Value::from(cpu))]).unwrap();
        for t in rel
            .query(&pat, schema.column_set(&["pid"]).unwrap())
            .unwrap()
        {
            let pid = t
                .get(schema.column("pid").unwrap())
                .unwrap()
                .as_int()
                .unwrap();
            assert!(seen.insert(pid), "pid {pid} queued on two cpus");
        }
    }
    assert_eq!(seen.len(), 64);
}
