//! Isolation regressions under the §4.5 speculative placement, where
//! readers guess through *unlocked* lookups: a transaction that removes
//! and re-creates the same key must never expose a half-built or
//! half-unlinked instance to a speculative reader. Historically caught
//! two bugs: insert publishing the root link before the subtree was
//! complete, and the engine treating a re-created instance's fresh
//! physical lock as covered by the dead object's token.

use std::sync::{Arc, Barrier};

use relc::decomp::library::split;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_containers::ContainerKind;
use relc_spec::{RelationSchema, Tuple, Value};

fn key(sch: &RelationSchema, s: i64) -> Tuple {
    sch.tuple(&[("src", Value::from(s)), ("dst", Value::from(s))])
        .unwrap()
}

fn w(sch: &RelationSchema, v: i64) -> Tuple {
    sch.tuple(&[("weight", Value::from(v))]).unwrap()
}

#[test]
fn reader_never_sees_key_vanish() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::speculative(&d, 8).unwrap();
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
    let sch = d.schema().clone();
    rel.insert(&key(&sch, 1), &w(&sch, 100)).unwrap();
    rel.insert(&key(&sch, 2), &w(&sch, 100)).unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let wcols = sch.column_set(&["weight"]).unwrap();

    let writer = {
        let rel = rel.clone();
        let barrier = barrier.clone();
        let sch = sch.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..30000i64 {
                rel.transaction(|tx| {
                    let a = tx
                        .remove_returning(&key(&sch, 2))?
                        .expect("writer owns key 2");
                    let _ = a;
                    tx.insert(&key(&sch, 2), &w(&sch, i))?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let reader = {
        let rel = rel.clone();
        let barrier = barrier.clone();
        let sch = sch.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..30000i64 {
                rel.transaction(|tx| {
                    let qa = tx.query(&key(&sch, 1), wcols)?;
                    let qb = tx.query(&key(&sch, 2), wcols)?;
                    assert!(!qa.is_empty(), "key 1 vanished");
                    assert!(!qb.is_empty(), "key 2 vanished (qa={qa:?})");
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    rel.verify().unwrap();
}

#[test]
fn rollback_reinsert_never_exposes_uncommitted_values() {
    // Regression: a rolled-back transaction that updates then removes the
    // same key replays its undo log starting with a re-insert of the
    // *uncommitted* updated value. That re-insert materializes a fresh
    // speculative target instance and must take its target-side lock
    // before publishing it — otherwise a speculative reader acquires the
    // free lock and dirty-reads the rolled-back value, and the following
    // compensating unlink finds the lock contended, restarts, and panics
    // with the rollback half-applied.
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::speculative(&d, 8).unwrap();
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
    let sch = d.schema().clone();
    for k in [1, 3, 4, 5, 6] {
        rel.insert(&key(&sch, k), &w(&sch, 100)).unwrap();
    }
    let readers = 3;
    let barrier = Arc::new(Barrier::new(readers + 1));
    let wcols = sch.column_set(&["weight"]).unwrap();
    const MARKER: i64 = -1;

    let writer = {
        let rel = rel.clone();
        let barrier = barrier.clone();
        let sch = sch.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..20000 {
                let err = rel
                    .transaction(|tx| -> Result<(), relc::TxnError> {
                        tx.update(&key(&sch, 1), &w(&sch, MARKER))?;
                        // Extra removes between the update and the remove
                        // of key 1: their compensating re-inserts replay
                        // *between* the re-insert of key 1's uncommitted
                        // value and its unlink, widening the window in
                        // which that value is linked during rollback.
                        for k in [3, 4, 5, 6] {
                            tx.remove(&key(&sch, k))?;
                        }
                        tx.remove(&key(&sch, 1))?;
                        Err(tx.abort("always roll back"))
                    })
                    .unwrap_err();
                assert!(matches!(err, relc::CoreError::TransactionAborted(_)));
            }
        })
    };
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let rel = rel.clone();
            let barrier = barrier.clone();
            let sch = sch.clone();
            std::thread::spawn(move || {
                let wcol = sch.column("weight").unwrap();
                barrier.wait();
                for _ in 0..20000 {
                    let got = rel
                        .transaction(|tx| tx.query(&key(&sch, 1), wcols))
                        .unwrap();
                    assert_eq!(got.len(), 1, "key 1 must never vanish");
                    assert_eq!(
                        got[0].get(wcol),
                        Some(&Value::from(100)),
                        "dirty read of a rolled-back value"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    let snap = rel.verify().unwrap();
    assert_eq!(snap.len(), 5);
}

#[test]
fn transfer_mix_never_loses_keys() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::speculative(&d, 8).unwrap();
    let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
    let sch = d.schema().clone();
    for k in 0..4 {
        rel.insert(&key(&sch, k), &w(&sch, 100)).unwrap();
    }
    let threads = 6;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads as u64)
        .map(|tid| {
            let rel = rel.clone();
            let sch = sch.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let wcol = sch.column("weight").unwrap();
                let wcols = sch.column_set(&["weight"]).unwrap();
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                barrier.wait();
                for i in 0..400 {
                    let a = (next() % 4) as i64;
                    let b = (next() % 4) as i64;
                    if a == b {
                        continue;
                    }
                    let amt = (next() % 5) as i64;
                    if i % 2 == 0 {
                        rel.transaction(|tx| {
                            let ta = tx.remove_returning(&key(&sch, a))?.expect("a exists");
                            let tb = tx.remove_returning(&key(&sch, b))?.expect("b exists");
                            let wa = ta.get(wcol).and_then(|v| v.as_int()).unwrap();
                            let wb = tb.get(wcol).and_then(|v| v.as_int()).unwrap();
                            tx.insert(&key(&sch, a), &w(&sch, wa - amt))?;
                            tx.insert(&key(&sch, b), &w(&sch, wb + amt))?;
                            Ok(())
                        })
                        .unwrap();
                    } else {
                        rel.transaction(|tx| {
                            let qa = tx.query(&key(&sch, a), wcols)?;
                            let qb = tx.query(&key(&sch, b), wcols)?;
                            assert!(
                                !qa.is_empty() && !qb.is_empty(),
                                "key vanished: a={qa:?} b={qb:?}"
                            );
                            let wa = qa[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                            let wb = qb[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                            tx.update(&key(&sch, a), &w(&sch, wa - amt))?;
                            tx.update(&key(&sch, b), &w(&sch, wb + amt))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = rel.verify().unwrap();
    let wcol = sch.column("weight").unwrap();
    let total: i64 = snap
        .iter()
        .map(|t| t.get(wcol).and_then(|v| v.as_int()).unwrap())
        .sum();
    assert_eq!(total, 400);
}
