//! Tests for `ShardedRelation`: routing and oracle equivalence across
//! shard counts, cross-shard transaction atomicity (the abort on shard B
//! must roll back shard A's already-applied operations), hash
//! decorrelation between the shard router and the container level,
//! linearizability of concurrent sharded histories, and deadlock freedom
//! of opposing cross-shard transfers.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use proptest::prelude::*;
use relc::decomp::library::{diamond, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::{CoreError, Decomposition, ShardedRelation};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, RelationSchema, SpecError, Tuple, Value};

fn graph_variants() -> Vec<(String, Arc<Decomposition>, Arc<LockPlacement>)> {
    let st = stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    vec![
        (
            "stick/coarse".into(),
            st.clone(),
            LockPlacement::coarse(&st).unwrap(),
        ),
        (
            "split/fine".into(),
            sp.clone(),
            LockPlacement::fine(&sp).unwrap(),
        ),
        (
            "split/striped16".into(),
            sp.clone(),
            LockPlacement::striped_root(&sp, 16).unwrap(),
        ),
        (
            "diamond/speculative8".into(),
            di.clone(),
            LockPlacement::speculative(&di, 8).unwrap(),
        ),
    ]
}

fn edge(rel: &ShardedRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &ShardedRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

fn with_watchdog(secs: u64, name: String, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {name} did not finish (deadlock?)"));
}

/// Two keys guaranteed to live in different shards (the test bed for every
/// cross-shard scenario). Panics if the router maps the whole probe range
/// to one shard — which would itself be a distribution bug.
fn keys_in_distinct_shards(rel: &ShardedRelation) -> (Tuple, Tuple) {
    let a = edge(rel, 0, 0);
    let sa = rel.shard_of(&a);
    for k in 1..256 {
        let b = edge(rel, k, k);
        if rel.shard_of(&b) != sa {
            return (a, b);
        }
    }
    panic!("router mapped 256 consecutive keys into one shard");
}

/// Pseudo-random single-op + batch mix, differential against the §2
/// oracle, across shard counts (including the degenerate 1) and
/// representative (decomposition, placement) pairs. Every intermediate
/// observable must agree; verify() additionally checks that each tuple
/// sits in exactly the shard the router names.
#[test]
fn sharded_relation_matches_oracle_across_shard_counts() {
    for (name, d, p) in graph_variants() {
        for shards in [1usize, 2, 3, 8] {
            let name = format!("{name} x{shards}");
            let rel = ShardedRelation::new(d.clone(), p.clone(), shards).unwrap();
            assert_eq!(rel.shard_count(), shards);
            let oracle = OracleRelation::empty(d.schema().clone());
            let mut x = 0x5ca1_ab1e_u64 + shards as u64;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
            for _ in 0..250 {
                let s = (step() % 6) as i64;
                let t = (step() % 6) as i64;
                let w = (step() % 4) as i64;
                match step() % 6 {
                    0 => {
                        let got = rel.insert(&edge(&rel, s, t), &weight(&rel, w)).unwrap();
                        let want = oracle.insert(&edge(&rel, s, t), &weight(&rel, w)).unwrap();
                        assert_eq!(got, want, "insert on {name}");
                    }
                    1 => {
                        let got = rel.remove(&edge(&rel, s, t)).unwrap();
                        let want = oracle.remove(&edge(&rel, s, t));
                        assert_eq!(got, want, "remove on {name}");
                    }
                    2 => {
                        let got = rel.update(&edge(&rel, s, t), &weight(&rel, w)).unwrap();
                        let want = oracle.update(&edge(&rel, s, t), &weight(&rel, w)).unwrap();
                        assert_eq!(got, want, "update on {name}");
                    }
                    3 => {
                        // Routed point query (one shard).
                        let wc = d.schema().column_set(&["weight"]).unwrap();
                        let got = rel.query(&edge(&rel, s, t), wc).unwrap();
                        assert_eq!(got, oracle.query(&edge(&rel, s, t), wc), "point on {name}");
                    }
                    4 => {
                        // Partial pattern: fans out across every shard and
                        // must still merge to the oracle's sorted result.
                        let pat = d.schema().tuple(&[("src", Value::from(s))]).unwrap();
                        match rel.query(&pat, dw) {
                            Ok(got) => assert_eq!(got, oracle.query(&pat, dw), "succ on {name}"),
                            Err(CoreError::NoValidPlan(_)) => {}
                            Err(e) => panic!("unexpected error on {name}: {e}"),
                        }
                    }
                    _ => {
                        let got = rel.contains(&edge(&rel, s, t)).unwrap();
                        let want = !oracle.query(&edge(&rel, s, t), dw).is_empty();
                        assert_eq!(got, want, "contains on {name}");
                    }
                }
                assert_eq!(rel.len(), oracle.len(), "len on {name}");
            }
            let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            let want: BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
            assert_eq!(verified, want, "final contents on {name}");
            // Satellite invariant: the counter is exact at quiescence.
            assert_eq!(verified.len(), rel.len(), "{name}");
            match rel.snapshot() {
                Ok(snap) => assert_eq!(snap.len(), rel.len(), "{name}"),
                // Speculative placements cannot scan; verify() covered it.
                Err(CoreError::NoValidPlan(_)) => {}
                Err(e) => panic!("{name}: {e}"),
            }
        }
    }
}

/// Batched operations split per shard but must keep the exact §2 fold
/// semantics (duplicates lose to the first occurrence), report per-row /
/// per-key outcomes in the original batch order, and commit atomically
/// across shards.
#[test]
fn sharded_batches_match_fold_semantics() {
    for (name, d, p) in graph_variants() {
        let rel = ShardedRelation::new(d.clone(), p.clone(), 4).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let mut x = 0xbead_cafe_u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..40 {
            let len = (step() % 7) as usize + 1;
            if step() % 3 == 0 {
                let keys: Vec<Tuple> = (0..len)
                    .map(|_| edge(&rel, (step() % 5) as i64, (step() % 5) as i64))
                    .collect();
                let got = rel.remove_all(&keys).unwrap();
                let want: Vec<bool> = keys.iter().map(|k| oracle.remove(k) == 1).collect();
                assert_eq!(got, want, "remove_all on {name} (round {round})");
            } else {
                let rows: Vec<(Tuple, Tuple)> = (0..len)
                    .map(|_| {
                        (
                            edge(&rel, (step() % 5) as i64, (step() % 5) as i64),
                            weight(&rel, (step() % 4) as i64),
                        )
                    })
                    .collect();
                let got = rel.insert_all(&rows).unwrap();
                let want: Vec<bool> = rows
                    .iter()
                    .map(|(s, t)| oracle.insert(s, t).unwrap())
                    .collect();
                assert_eq!(got, want, "insert_all on {name} (round {round})");
            }
            assert_eq!(rel.len(), oracle.len(), "len on {name}");
        }
        assert_eq!(rel.insert_all(&[]).unwrap(), Vec::<bool>::new());
        assert_eq!(rel.remove_all(&[]).unwrap(), Vec::<bool>::new());
        let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let want: BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
        assert_eq!(verified, want, "final contents on {name}");
    }
}

/// A poisoned row in a sharded batch aborts the whole batch across every
/// shard: rows already applied to other shards roll back.
#[test]
fn poisoned_sharded_batch_rolls_back_every_shard() {
    for (name, d, p) in graph_variants() {
        let rel = ShardedRelation::new(d.clone(), p.clone(), 4).unwrap();
        rel.insert(&edge(&rel, 9, 9), &weight(&rel, 1)).unwrap();
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let poison_t = rel
            .schema()
            .tuple(&[("dst", Value::from(2)), ("weight", Value::from(3))])
            .unwrap();
        // Valid rows spread over several shards, then an overlapping-domain
        // poison row.
        let rows = vec![
            (edge(&rel, 0, 0), weight(&rel, 10)),
            (edge(&rel, 1, 1), weight(&rel, 11)),
            (edge(&rel, 2, 2), weight(&rel, 12)),
            (edge(&rel, 5, 6), poison_t),
        ];
        let err = rel.insert_all(&rows).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Spec(SpecError::OverlappingInsertDomains { .. })
            ),
            "{name}: {err}"
        );
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: poisoned batch must be a no-op");
        assert_eq!(rel.len(), 1, "{name}");
        // A non-key pattern poisons a sharded removal batch the same way.
        let bad_key = rel.schema().tuple(&[("dst", Value::from(9))]).unwrap();
        assert!(matches!(
            rel.remove_all(&[edge(&rel, 9, 9), bad_key]).unwrap_err(),
            CoreError::Spec(SpecError::RemoveNotByKey { .. })
        ));
        assert_eq!(
            rel.verify().unwrap_or_else(|e| panic!("{name}: {e}")),
            before,
            "{name}"
        );
    }
}

/// The acceptance scenario: a transfer spanning two shards that aborts
/// mid-flight leaves both shards' snapshots — and the aggregated `len()` —
/// exactly at the pre-transaction state.
#[test]
fn cross_shard_abort_rolls_back_already_applied_shards() {
    for (name, d, p) in graph_variants() {
        let rel = ShardedRelation::new(d.clone(), p.clone(), 8).unwrap();
        let (ka, kb) = keys_in_distinct_shards(&rel);
        let (sa, sb) = (rel.shard_of(&ka), rel.shard_of(&kb));
        assert_ne!(sa, sb, "{name}: probe keys must span two shards");
        rel.insert(&ka, &weight(&rel, 100)).unwrap();
        rel.insert(&kb, &weight(&rel, 0)).unwrap();
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let len_before = rel.len();
        let per_shard_before: Vec<_> = rel.shards().iter().map(|s| s.verify().unwrap()).collect();

        // Shard A's update and an insert on shard B both apply, then the
        // closure aborts: both shards must roll back.
        let err = rel
            .transaction(|tx| -> Result<(), relc::TxnError> {
                assert!(tx.update(&ka, &weight(&rel, 70))?.is_some());
                assert_eq!(tx.remove(&kb)?, 1);
                assert!(tx.insert(&kb, &weight(&rel, 30))?);
                // Read-your-writes across shards inside the transaction.
                let wc = tx.relation().schema().column_set(&["weight"]).unwrap();
                assert_eq!(tx.query(&ka, wc)?, vec![weight(&rel, 70)]);
                Err(tx.abort("insufficient funds"))
            })
            .unwrap_err();
        assert!(
            matches!(err, CoreError::TransactionAborted(ref m) if m.contains("funds")),
            "{name}: {err}"
        );

        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: cross-shard rollback must be exact");
        assert_eq!(rel.len(), len_before, "{name}: aggregated len unchanged");
        for (i, snap) in per_shard_before.iter().enumerate() {
            assert_eq!(
                &rel.shards()[i].verify().unwrap(),
                snap,
                "{name}: shard {i} must be untouched"
            );
        }
        // The abort is a user rollback on every touched shard's engine.
        assert!(rel.lock_stats().user_rollbacks >= 2, "{name}");

        // The same transfer without the abort commits on both shards.
        rel.transaction(|tx| {
            tx.update(&ka, &weight(&rel, 70))?;
            tx.update(&kb, &weight(&rel, 30))?;
            Ok(())
        })
        .unwrap();
        let wc = d.schema().column_set(&["weight"]).unwrap();
        assert_eq!(rel.query(&ka, wc).unwrap(), vec![weight(&rel, 70)]);
        assert_eq!(rel.query(&kb, wc).unwrap(), vec![weight(&rel, 30)]);
        assert_eq!(rel.len(), 2, "{name}");
    }
}

/// A closure that swallows a restart must not commit a half-applied
/// cross-shard transaction: the loop detects it, rolls back every touched
/// shard, and re-runs.
#[test]
fn swallowed_restart_cannot_commit_across_shards() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let rel = ShardedRelation::new(d.clone(), p, 4).unwrap();
    let (ka, kb) = keys_in_distinct_shards(&rel);
    let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
    let runs = std::cell::Cell::new(0u32);
    rel.transaction(|tx| {
        runs.set(runs.get() + 1);
        // Applied effect on kb's shard before the restart on ka's shard.
        let _ = tx.insert(&kb, &weight(&rel, 5))?;
        // Shared locks from the query; the insert upgrades and demands a
        // restart — which this closure wrongly swallows.
        tx.query(
            &ka.project(d.schema().column_set(&["src", "dst"]).unwrap()),
            dw,
        )?;
        let _ = tx.insert(&ka, &weight(&rel, 1));
        Ok(())
    })
    .unwrap();
    assert!(runs.get() >= 2, "the swallowed restart must force a re-run");
    // Both inserts committed exactly once (the successful re-run).
    assert!(rel.contains(&ka).unwrap());
    assert!(rel.contains(&kb).unwrap());
    assert_eq!(rel.len(), 2);
    let snap = rel.verify().unwrap();
    assert_eq!(snap.len(), 2);
}

/// Single-shot operations on the sharded relation (or its shards) inside a
/// cross-shard closure would self-deadlock; the per-shard re-entrancy
/// guards panic instead.
#[test]
#[should_panic(expected = "re-entrant")]
fn nested_single_shot_inside_sharded_transaction_panics() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let rel = ShardedRelation::new(d.clone(), p, 4).unwrap();
    let k = edge(&rel, 1, 2);
    rel.insert(&k, &weight(&rel, 1)).unwrap();
    let _ = rel.transaction(|tx| {
        tx.contains(&k)?;
        let _ = rel.remove(&k); // bypasses the transaction: panics
        Ok(())
    });
}

/// Satellite regression: the shard router's hash must be decorrelated from
/// the container-level `hash_key` stream. Both levels are checked: the
/// router spreads keys near-uniformly over relation shards, and *within
/// each relation shard* the keys' container hashes still spread
/// near-uniformly over a 16-way striped container's shards — if the two
/// hashes shared their stream, each relation shard's keys would collapse
/// into 16/N_rel of the container shards.
#[test]
fn router_hash_decorrelated_from_container_hash() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::fine(&d).unwrap();
    const REL_SHARDS: usize = 8;
    const CONTAINER_SHARDS: usize = 16;
    let rel = ShardedRelation::new(d.clone(), p, REL_SHARDS).unwrap();
    let src_cols = d.schema().column_set(&["src", "dst"]).unwrap();

    // 4096 synthetic keys; expect 512 per relation shard and 32 per
    // (relation shard, container shard) cell.
    let mut level1 = [0usize; REL_SHARDS];
    let mut level2 = [[0usize; CONTAINER_SHARDS]; REL_SHARDS];
    for s in 0..64i64 {
        for t in 0..64i64 {
            let tup = d
                .schema()
                .tuple(&[("src", Value::from(s)), ("dst", Value::from(t))])
                .unwrap();
            let r = rel.shard_of(&tup);
            level1[r] += 1;
            // The container key the root edge stores is the projection
            // onto the edge columns; StripedHashMap picks its shard from
            // the low bits of `hash_key` over that tuple.
            let h = relc_containers::hashing::hash_key(&tup.project(src_cols));
            level2[r][(h % CONTAINER_SHARDS as u64) as usize] += 1;
        }
    }
    let expect1 = 4096 / REL_SHARDS;
    for (i, &n) in level1.iter().enumerate() {
        assert!(
            n > expect1 / 2 && n < expect1 * 2,
            "relation shard {i} occupancy {n} far from uniform ({expect1}): {level1:?}"
        );
    }
    let expect2 = 4096 / REL_SHARDS / CONTAINER_SHARDS;
    for (r, row) in level2.iter().enumerate() {
        for (c, &n) in row.iter().enumerate() {
            assert!(
                n > expect2 / 4,
                "container shard {c} under relation shard {r} holds {n} \
                 keys (expected ≈{expect2}): router correlates with hash_key"
            );
        }
    }
}

/// Concurrent sharded histories — routed single ops, cross-shard transfer
/// transactions, and batches — must be linearizable with the §2 semantics,
/// with every transaction a single linearization point.
#[test]
fn sharded_histories_are_linearizable() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::fine(&d).unwrap();
    for round in 0..15u64 {
        let rel = Arc::new(ShardedRelation::new(d.clone(), p.clone(), 4).unwrap());
        let rec = HistoryRecorder::new();
        let threads = 3;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let rel = rel.clone();
                let rec = rec.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut x = (round + 1) * (tid + 3) * 0x9e37_79b9;
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    for _ in 0..3 {
                        let s = (next() % 2) as i64;
                        let dd = (next() % 2) as i64;
                        let w = (next() % 3) as i64;
                        match next() % 4 {
                            0 => {
                                rec.record(|| {
                                    let r =
                                        rel.insert(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                                    (
                                        (),
                                        OpRecord::Insert {
                                            s: edge(&rel, s, dd),
                                            t: weight(&rel, w),
                                            result: r,
                                        },
                                    )
                                });
                            }
                            1 => {
                                // Cross-shard move: remove one key,
                                // re-insert under the transposed key —
                                // atomically, whatever shards they hash to.
                                rec.record(|| {
                                    let mut ops = Vec::new();
                                    rel.transaction(|tx| {
                                        ops.clear();
                                        let removed = tx.remove_returning(&edge(&rel, s, dd))?;
                                        ops.push(OpRecord::Remove {
                                            s: edge(&rel, s, dd),
                                            result: usize::from(removed.is_some()),
                                        });
                                        if removed.is_some() {
                                            let ins = tx
                                                .insert(&edge(&rel, dd + 2, s), &weight(&rel, w))?;
                                            ops.push(OpRecord::Insert {
                                                s: edge(&rel, dd + 2, s),
                                                t: weight(&rel, w),
                                                result: ins,
                                            });
                                        }
                                        Ok(())
                                    })
                                    .unwrap();
                                    ((), OpRecord::Txn { ops })
                                });
                            }
                            2 => {
                                let rows = vec![
                                    (edge(&rel, s, dd), weight(&rel, w)),
                                    (edge(&rel, dd + 2, s), weight(&rel, w + 1)),
                                    (edge(&rel, s, dd), weight(&rel, w + 2)),
                                ];
                                rec.record(|| {
                                    let results = rel.insert_all(&rows).unwrap();
                                    ((), OpRecord::InsertAll { rows, results })
                                });
                            }
                            _ => {
                                let keys = vec![edge(&rel, s, dd), edge(&rel, dd + 2, s)];
                                rec.record(|| {
                                    let results = rel.remove_all(&keys).unwrap();
                                    ((), OpRecord::RemoveAll { keys, results })
                                });
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = rec.into_history();
        assert!(
            check_linearizable(rel.schema(), &history),
            "non-linearizable sharded history (round {round}): {history:#?}"
        );
        let snap = rel.verify().unwrap();
        assert_eq!(rel.len(), snap.len(), "len at quiescence (round {round})");
    }
}

/// Deadlock freedom of the cross-shard protocol: opposing transfers (A→B
/// and B→A concurrently, so the two shards are locked in both orders),
/// plus fan-out readers locking every shard. Watchdogged; totals must be
/// conserved and the counter exact at quiescence.
#[test]
fn opposing_cross_shard_transfers_make_progress_and_conserve_totals() {
    for (name, d, p) in graph_variants() {
        let rel = Arc::new(ShardedRelation::new(d.clone(), p.clone(), 4).unwrap());
        let keys = 16i64;
        let initial = 100i64;
        for k in 0..keys {
            rel.insert(&edge(&rel, k, k), &weight(&rel, initial))
                .unwrap();
        }
        let rel2 = rel.clone();
        let name2 = name.clone();
        with_watchdog(120, name.clone(), move || {
            let threads = 8usize;
            let rounds = 60i64;
            let barrier = Arc::new(Barrier::new(threads));
            let moved = Arc::new(AtomicI64::new(0));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    let moved = moved.clone();
                    std::thread::spawn(move || {
                        let wcol = rel.schema().column("weight").unwrap();
                        let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for _ in 0..rounds {
                            let a = (next() % keys as u64) as i64;
                            let b = (next() % keys as u64) as i64;
                            if a == b {
                                continue;
                            }
                            // Half the threads transfer a→b, half b→a:
                            // shard pairs are locked in opposing orders.
                            let (from, to) = if tid % 2 == 0 { (a, b) } else { (b, a) };
                            let amount = (next() % 5) as i64;
                            rel.transaction(|tx| {
                                let wc = tx.relation().schema().column_set(&["weight"]).unwrap();
                                let wf = tx.query(&edge(&rel, from, from), wc)?;
                                let wt = tx.query(&edge(&rel, to, to), wc)?;
                                let (Some(wf), Some(wt)) = (wf.first(), wt.first()) else {
                                    return Ok(false);
                                };
                                let wf = wf.get(wcol).and_then(|v| v.as_int()).unwrap();
                                let wt = wt.get(wcol).and_then(|v| v.as_int()).unwrap();
                                if wf < amount {
                                    return Ok(false);
                                }
                                tx.update(&edge(&rel, from, from), &weight(&rel, wf - amount))?;
                                tx.update(&edge(&rel, to, to), &weight(&rel, wt + amount))?;
                                Ok(true)
                            })
                            .unwrap();
                            moved.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(moved.load(Ordering::Relaxed) > 0, "{name2}: no progress");
        });
        let snap = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(snap.len(), keys as usize, "{name}");
        assert_eq!(rel.len(), keys as usize, "{name}: len at quiescence");
        let wcol = rel.schema().column("weight").unwrap();
        let total: i64 = snap
            .iter()
            .map(|t| t.get(wcol).and_then(|v| v.as_int()).unwrap())
            .sum();
        assert_eq!(
            total,
            keys * initial,
            "{name}: cross-shard transfers must conserve the sum"
        );
        let stats = rel.lock_stats();
        assert!(stats.commits > 0, "{name}: {stats}");
    }
}

/// Alternate keys and routing-column rewrites: a schema where both `k` and
/// `v` are keys routes by the canonical key `{v}`; removes by `{k}` must
/// fan out, and updates assigning `v` must *relocate* the tuple to its new
/// owning shard (checked by `verify`'s routing invariant).
#[test]
fn alternate_key_ops_fan_out_and_relocate() {
    let schema = RelationSchema::builder()
        .column("k")
        .column("v")
        .fd(&["k"], &["v"])
        .fd(&["v"], &["k"])
        .build();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let n = b.node("byK");
    let leaf = b.node("val");
    b.edge(root, n, &["k"], ContainerKind::ConcurrentHashMap)
        .unwrap();
    b.edge(n, leaf, &["v"], ContainerKind::Singleton).unwrap();
    let d = b.build().unwrap();
    let p = LockPlacement::fine(&d).unwrap();
    let rel = ShardedRelation::new(d.clone(), p, 8).unwrap();
    // The canonical key minimizes in column order: {v} (k drops first).
    assert_eq!(rel.route_by(), d.schema().column_set(&["v"]).unwrap());
    let kt = |k: i64| d.schema().tuple(&[("k", Value::from(k))]).unwrap();
    let vt = |v: i64| d.schema().tuple(&[("v", Value::from(v))]).unwrap();

    for i in 0..32 {
        assert!(rel.insert(&kt(i), &vt(1000 + i)).unwrap());
    }
    assert_eq!(rel.len(), 32);
    rel.verify().unwrap();

    // Alternate-key point read fans out and still finds the tuple.
    let vc = d.schema().column_set(&["v"]).unwrap();
    assert_eq!(rel.query(&kt(7), vc).unwrap(), vec![vt(1007)]);
    assert!(rel.contains(&kt(7)).unwrap());

    // Update by the non-routing key `k`, rewriting the routing column `v`:
    // the tuple must move to the shard its *new* value hashes to.
    let old = rel.update(&kt(7), &vt(4242)).unwrap().expect("k=7 exists");
    let vcol = d.schema().column("v").unwrap();
    assert_eq!(old.get(vcol), Some(&Value::from(1007)));
    assert_eq!(rel.query(&kt(7), vc).unwrap(), vec![vt(4242)]);
    assert_eq!(rel.len(), 32);
    // verify() asserts every tuple sits in its router-assigned shard — a
    // relocation bug (tuple left at the old value's shard) fails here.
    rel.verify().unwrap();

    // Alternate-key remove fans out.
    assert_eq!(rel.remove(&kt(7)).unwrap(), 1);
    assert_eq!(rel.remove(&kt(7)).unwrap(), 0);
    // Routed remove by the canonical key.
    assert_eq!(rel.remove(&vt(1003)).unwrap(), 1);
    assert_eq!(rel.len(), 30);
    rel.verify().unwrap();

    // A removal batch mixing an alternate key and a routed key that match
    // the *same* tuple must fold in batch order: kt(5) and vt(1005) both
    // name (k=5, v=1005); the earlier occurrence removes it, the later
    // reads false. (The grouped per-shard path would evaluate the routed
    // key first and report [false, true].)
    assert_eq!(
        rel.remove_all(&[kt(5), vt(1005)]).unwrap(),
        vec![true, false]
    );
    // And the routed-first order too.
    assert_eq!(
        rel.remove_all(&[vt(1006), kt(6)]).unwrap(),
        vec![true, false]
    );
    assert_eq!(rel.len(), 28);
    rel.verify().unwrap();

    // Validation errors surface identically to the single-instance path.
    assert!(matches!(
        rel.update(&kt(1), &Tuple::empty()).unwrap_err(),
        CoreError::Spec(SpecError::EmptyUpdate)
    ));
    assert!(matches!(
        rel.update(&kt(1), &kt(2)).unwrap_err(),
        CoreError::Spec(SpecError::UpdateOverlapsPattern { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Differential proptest over random shard counts, router seeds, and
    /// op sequences: a sharded relation must be observably identical to
    /// the §2 oracle whatever the partitioning.
    #[test]
    fn sharded_fold_matches_oracle(
        shards in 1usize..9,
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0u8..5, 0i64..5, 0i64..5, 0i64..4), 1..60),
    ) {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ShardedRelation::with_seed(d.clone(), p, shards, seed).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let e = |s: i64, t: i64| d.schema()
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(t))]).unwrap();
        let w = |w: i64| d.schema().tuple(&[("weight", Value::from(w))]).unwrap();
        for &(op, s, t, wv) in &ops {
            match op {
                0 => prop_assert_eq!(
                    rel.insert(&e(s, t), &w(wv)).unwrap(),
                    oracle.insert(&e(s, t), &w(wv)).unwrap()
                ),
                1 => prop_assert_eq!(rel.remove(&e(s, t)).unwrap(), oracle.remove(&e(s, t))),
                2 => prop_assert_eq!(
                    rel.update(&e(s, t), &w(wv)).unwrap(),
                    oracle.update(&e(s, t), &w(wv)).unwrap()
                ),
                3 => {
                    // Batch: three rows derived from the tuple, with an
                    // intentional duplicate.
                    let rows = vec![
                        (e(s, t), w(wv)),
                        (e(t, s), w(wv + 1)),
                        (e(s, t), w(wv + 2)),
                    ];
                    let want: Vec<bool> = rows
                        .iter()
                        .map(|(s, t)| oracle.insert(s, t).unwrap())
                        .collect();
                    prop_assert_eq!(rel.insert_all(&rows).unwrap(), want);
                }
                _ => {
                    let keys = vec![e(s, t), e(t, s), e(s, t)];
                    let want: Vec<bool> =
                        keys.iter().map(|k| oracle.remove(k) == 1).collect();
                    prop_assert_eq!(rel.remove_all(&keys).unwrap(), want);
                }
            }
            prop_assert_eq!(rel.len(), oracle.len());
        }
        let verified = rel.verify().map_err(TestCaseError::fail)?;
        let want: BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
        prop_assert_eq!(verified, want);
    }
}
