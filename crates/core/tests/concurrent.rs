//! Multi-threaded correctness tests for synthesized concurrent relations:
//! linearizability (checked histories), put-if-absent atomicity, structural
//! integrity under contention, and deadlock freedom (watchdogged).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use relc::decomp::library::{diamond, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

fn variants() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let mut out: Vec<(String, Arc<ConcurrentRelation>)> = Vec::new();
    let decomps: Vec<Arc<Decomposition>> = vec![
        stick(ContainerKind::HashMap, ContainerKind::TreeMap),
        stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        split(ContainerKind::ConcurrentSkipListMap, ContainerKind::TreeMap),
        diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
    ];
    for d in decomps {
        for p in [
            LockPlacement::coarse(&d).ok(),
            LockPlacement::fine(&d).ok(),
            LockPlacement::striped_root(&d, 16).ok(),
            LockPlacement::speculative(&d, 8).ok(),
        ]
        .into_iter()
        .flatten()
        {
            let name = format!("{} / {}", d.describe(), p.name());
            out.push((
                name,
                Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap()),
            ));
        }
    }
    out
}

fn edge(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

/// Runs `f` under a watchdog; panics if it does not finish in time
/// (deadlock/livelock detector).
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("watchdog: concurrent test did not finish (deadlock?)");
}

#[test]
fn put_if_absent_has_exactly_one_winner_per_key() {
    for (name, rel) in variants() {
        let threads = 8;
        let keys = 16i64;
        let barrier = Arc::new(Barrier::new(threads));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads as i64)
            .map(|tid| {
                let rel = rel.clone();
                let barrier = barrier.clone();
                let wins = wins.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for k in 0..keys {
                        // Every thread tries to insert (k, k) with its own
                        // weight; put-if-absent must admit exactly one.
                        if rel.insert(&edge(&rel, k, k), &weight(&rel, tid)).unwrap() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::Relaxed),
            keys as usize,
            "exactly one winner per key on {name}"
        );
        assert_eq!(rel.len(), keys as usize, "{name}");
        // Each edge's weight identifies a single coherent winner.
        let wcol = rel.schema().column_set(&["weight"]).unwrap();
        for k in 0..keys {
            let got = rel.query(&edge(&rel, k, k), wcol).unwrap();
            assert_eq!(got.len(), 1, "{name}");
        }
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn structural_integrity_under_contended_mixed_ops() {
    for (name, rel) in variants() {
        let rel2 = rel.clone();
        let _name2 = name.clone();
        with_watchdog(120, move || {
            let threads = 8;
            let ops = 400;
            let keyspace = 8i64; // small: maximum contention
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        let dw = rel.schema().column_set(&["dst", "weight"]).unwrap();
                        let sw = rel.schema().column_set(&["src", "weight"]).unwrap();
                        for _ in 0..ops {
                            let s = (next() % keyspace as u64) as i64;
                            let d = (next() % keyspace as u64) as i64;
                            let w = (next() % 4) as i64;
                            match next() % 4 {
                                0 => {
                                    let _ = rel.insert(&edge(&rel, s, d), &weight(&rel, w));
                                }
                                1 => {
                                    let _ = rel.remove(&edge(&rel, s, d));
                                }
                                2 => {
                                    let pat =
                                        rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                                    match rel.query(&pat, dw) {
                                        Ok(res) => {
                                            // Every result extends the pattern's columns.
                                            for t in res {
                                                assert!(t.dom() == dw);
                                            }
                                        }
                                        Err(relc::CoreError::NoValidPlan(_)) => {}
                                        Err(e) => panic!("{e}"),
                                    }
                                }
                                _ => {
                                    let pat =
                                        rel.schema().tuple(&[("dst", Value::from(d))]).unwrap();
                                    match rel.query(&pat, sw) {
                                        Ok(_) => {}
                                        Err(relc::CoreError::NoValidPlan(_)) => {}
                                        Err(e) => panic!("{e}"),
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // Quiescent: the instance must be structurally perfect, and the
        // lock-free tuple counter must agree with the real contents —
        // any drift (a delta applied for a rolled-back op, or dropped by
        // a poisoned batch) is a bug even if no single observable caught
        // it mid-run.
        let snap = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            rel.len(),
            snap.len(),
            "{name}: len() must equal snapshot().len() at quiescence"
        );
    }
}

#[test]
fn small_histories_are_linearizable() {
    // Exhaustive Wing–Gong checking of many short concurrent histories on
    // the most interesting placements (striped + speculative), where lock
    // placement bugs would manifest as non-linearizable results.
    let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let placements = vec![
        LockPlacement::fine(&d).unwrap(),
        LockPlacement::striped_root(&d, 4).unwrap(),
        LockPlacement::speculative(&d, 4).unwrap(),
    ];
    for p in placements {
        for round in 0..30u64 {
            let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
            let rec = HistoryRecorder::new();
            let threads = 3;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel.clone();
                    let rec = rec.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (round + 1) * (tid + 1) * 0x9e37_79b9;
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for _ in 0..4 {
                            let s = (next() % 2) as i64;
                            let dd = (next() % 2) as i64;
                            let w = (next() % 2) as i64;
                            match next() % 3 {
                                0 => rec.record(|| {
                                    let r =
                                        rel.insert(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                                    (
                                        (),
                                        OpRecord::Insert {
                                            s: edge(&rel, s, dd),
                                            t: weight(&rel, w),
                                            result: r,
                                        },
                                    )
                                }),
                                1 => rec.record(|| {
                                    let r = rel.remove(&edge(&rel, s, dd)).unwrap();
                                    (
                                        (),
                                        OpRecord::Remove {
                                            s: edge(&rel, s, dd),
                                            result: r,
                                        },
                                    )
                                }),
                                _ => {
                                    let cols = rel.schema().column_set(&["dst", "weight"]).unwrap();
                                    rec.record(|| {
                                        let pat =
                                            rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                                        let r = rel.query(&pat, cols).unwrap();
                                        (
                                            (),
                                            OpRecord::Query {
                                                s: pat,
                                                cols,
                                                result: r,
                                            },
                                        )
                                    })
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let history = rec.into_history();
            assert!(
                check_linearizable(rel.schema(), &history),
                "non-linearizable history on {} (round {round}): {history:#?}",
                rel.placement().name()
            );
        }
    }
}

/// Bank-transfer stress: concurrent multi-operation transactions moving
/// value between keys must conserve the total — any lost update, partial
/// commit, or unrolled-back restart breaks the sum. Exercises the undo
/// log hard: transactions restart mid-flight with effects already applied.
#[test]
fn concurrent_transfers_conserve_the_total() {
    for (name, rel) in variants() {
        let keys = 4i64;
        let initial = 100i64;
        for k in 0..keys {
            rel.insert(&edge(&rel, k, k), &weight(&rel, initial))
                .unwrap();
        }
        let rel2 = rel.clone();
        let name2 = name.clone();
        with_watchdog(120, move || {
            let threads = 6;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    let name = name2.clone();
                    std::thread::spawn(move || {
                        let wcol = rel.schema().column("weight").unwrap();
                        let wcols = rel.schema().column_set(&["weight"]).unwrap();
                        let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for i in 0..120 {
                            let a = (next() % 4) as i64;
                            let b = (next() % 4) as i64;
                            if a == b {
                                continue;
                            }
                            let amt = (next() % 5) as i64;
                            if i % 2 == 0 {
                                // Remove/re-insert shape: 4 ops, all
                                // exclusive from the start.
                                rel.transaction(|tx| {
                                    let ta = tx
                                        .remove_returning(&edge(&rel, a, a))?
                                        .expect("account a exists");
                                    let tb = tx
                                        .remove_returning(&edge(&rel, b, b))?
                                        .expect("account b exists");
                                    let wa = ta.get(wcol).and_then(|v| v.as_int()).unwrap();
                                    let wb = tb.get(wcol).and_then(|v| v.as_int()).unwrap();
                                    tx.insert(&edge(&rel, a, a), &weight(&rel, wa - amt))?;
                                    tx.insert(&edge(&rel, b, b), &weight(&rel, wb + amt))?;
                                    Ok(())
                                })
                                .unwrap_or_else(|e| panic!("{name}: {e}"));
                            } else {
                                // Read-then-update shape: shared locks
                                // first, upgraded by the updates.
                                rel.transaction(|tx| {
                                    let qa = tx.query(&edge(&rel, a, a), wcols)?;
                                    let qb = tx.query(&edge(&rel, b, b), wcols)?;
                                    assert!(
                                        !qa.is_empty() && !qb.is_empty(),
                                        "{name}: key vanished mid-history: a={qa:?} b={qb:?}"
                                    );
                                    let wa = qa[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                                    let wb = qb[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                                    tx.update(&edge(&rel, a, a), &weight(&rel, wa - amt))?;
                                    tx.update(&edge(&rel, b, b), &weight(&rel, wb + amt))?;
                                    Ok(())
                                })
                                .unwrap_or_else(|e| panic!("{name}: {e}"));
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let snap = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(snap.len(), keys as usize, "{name}");
        let wcol = rel.schema().column("weight").unwrap();
        let total: i64 = snap
            .iter()
            .map(|t| t.get(wcol).and_then(|v| v.as_int()).unwrap())
            .sum();
        assert_eq!(
            total,
            keys * initial,
            "{name}: transfers must conserve the sum"
        );
        assert_eq!(rel.len(), keys as usize, "{name}");
        let stats = rel.lock_stats();
        assert!(stats.commits > 0, "{name}: {stats}");
        assert_eq!(stats.user_rollbacks, 0, "{name}: no aborts here: {stats}");
    }
}

/// Wing–Gong checking of short concurrent histories that include
/// *multi-operation transactions* (recorded as single `Txn` events):
/// each transaction must be one linearization point.
#[test]
fn small_transaction_histories_are_linearizable() {
    let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let placements = vec![
        LockPlacement::fine(&d).unwrap(),
        LockPlacement::striped_root(&d, 4).unwrap(),
        LockPlacement::speculative(&d, 4).unwrap(),
    ];
    for p in placements {
        for round in 0..20u64 {
            let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
            let rec = HistoryRecorder::new();
            let threads = 3;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel.clone();
                    let rec = rec.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (round + 1) * (tid + 3) * 0x9e37_79b9;
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for _ in 0..3 {
                            let s = (next() % 2) as i64;
                            let dd = (next() % 2) as i64;
                            let w = (next() % 3) as i64;
                            match next() % 3 {
                                0 => {
                                    // insert + update of the same key in
                                    // one transaction.
                                    rec.record(|| {
                                        let mut ops = Vec::new();
                                        rel.transaction(|tx| {
                                            ops.clear();
                                            let ins =
                                                tx.insert(&edge(&rel, s, dd), &weight(&rel, w))?;
                                            ops.push(OpRecord::Insert {
                                                s: edge(&rel, s, dd),
                                                t: weight(&rel, w),
                                                result: ins,
                                            });
                                            let upd = tx
                                                .update(&edge(&rel, s, dd), &weight(&rel, w + 1))?;
                                            ops.push(OpRecord::Update {
                                                s: edge(&rel, s, dd),
                                                t: weight(&rel, w + 1),
                                                result: upd,
                                            });
                                            Ok(())
                                        })
                                        .unwrap();
                                        ((), OpRecord::Txn { ops })
                                    });
                                }
                                1 => {
                                    // Move the edge to the transposed key.
                                    rec.record(|| {
                                        let mut ops = Vec::new();
                                        rel.transaction(|tx| {
                                            ops.clear();
                                            let removed =
                                                tx.remove_returning(&edge(&rel, s, dd))?;
                                            ops.push(OpRecord::Remove {
                                                s: edge(&rel, s, dd),
                                                result: usize::from(removed.is_some()),
                                            });
                                            if let Some(u) = removed {
                                                let wcol = tx
                                                    .relation()
                                                    .schema()
                                                    .column("weight")
                                                    .unwrap();
                                                let wv =
                                                    u.get(wcol).and_then(|v| v.as_int()).unwrap();
                                                let ins = tx.insert(
                                                    &edge(&rel, dd, s),
                                                    &weight(&rel, wv),
                                                )?;
                                                ops.push(OpRecord::Insert {
                                                    s: edge(&rel, dd, s),
                                                    t: weight(&rel, wv),
                                                    result: ins,
                                                });
                                            }
                                            Ok(())
                                        })
                                        .unwrap();
                                        ((), OpRecord::Txn { ops })
                                    });
                                }
                                _ => {
                                    let cols = rel.schema().column_set(&["dst", "weight"]).unwrap();
                                    rec.record(|| {
                                        let pat =
                                            rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                                        let r = rel.query(&pat, cols).unwrap();
                                        (
                                            (),
                                            OpRecord::Query {
                                                s: pat,
                                                cols,
                                                result: r,
                                            },
                                        )
                                    });
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let history = rec.into_history();
            assert!(
                check_linearizable(rel.schema(), &history),
                "non-linearizable transaction history on {} (round {round}): {history:#?}",
                rel.placement().name()
            );
            rel.verify().unwrap();
        }
    }
}

/// Wing–Gong checking of short concurrent histories that mix batched
/// operations (`insert_all` / `remove_all`, recorded as single `InsertAll`
/// / `RemoveAll` events), single ops, and in-place updates: every batch
/// must be one linearization point whose per-row results are the
/// sequential put-if-absent / removal fold.
#[test]
fn batch_histories_are_linearizable() {
    let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let placements = vec![
        LockPlacement::coarse(&d).unwrap(),
        LockPlacement::fine(&d).unwrap(),
        LockPlacement::striped_root(&d, 4).unwrap(),
        LockPlacement::speculative(&d, 4).unwrap(),
    ];
    for p in placements {
        for round in 0..20u64 {
            let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
            let rec = HistoryRecorder::new();
            let threads = 3;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel.clone();
                    let rec = rec.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (round + 1) * (tid + 5) * 0x9e37_79b9;
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for _ in 0..3 {
                            let s = (next() % 2) as i64;
                            let dd = (next() % 2) as i64;
                            let w = (next() % 3) as i64;
                            match next() % 4 {
                                0 => {
                                    // A batch with an intentional duplicate
                                    // pattern: the fold must report it false.
                                    let rows = vec![
                                        (edge(&rel, s, dd), weight(&rel, w)),
                                        (edge(&rel, dd, s), weight(&rel, w + 1)),
                                        (edge(&rel, s, dd), weight(&rel, w + 2)),
                                    ];
                                    rec.record(|| {
                                        let results = rel.insert_all(&rows).unwrap();
                                        ((), OpRecord::InsertAll { rows, results })
                                    });
                                }
                                1 => {
                                    let keys = vec![edge(&rel, s, dd), edge(&rel, 1 - s, 1 - dd)];
                                    rec.record(|| {
                                        let results = rel.remove_all(&keys).unwrap();
                                        ((), OpRecord::RemoveAll { keys, results })
                                    });
                                }
                                2 => {
                                    rec.record(|| {
                                        let r = rel
                                            .update(&edge(&rel, s, dd), &weight(&rel, w))
                                            .unwrap();
                                        (
                                            (),
                                            OpRecord::Update {
                                                s: edge(&rel, s, dd),
                                                t: weight(&rel, w),
                                                result: r,
                                            },
                                        )
                                    });
                                }
                                _ => {
                                    let cols = rel.schema().column_set(&["dst", "weight"]).unwrap();
                                    rec.record(|| {
                                        let pat =
                                            rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                                        let r = rel.query(&pat, cols).unwrap();
                                        (
                                            (),
                                            OpRecord::Query {
                                                s: pat,
                                                cols,
                                                result: r,
                                            },
                                        )
                                    });
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let history = rec.into_history();
            assert!(
                check_linearizable(rel.schema(), &history),
                "non-linearizable batch history on {} (round {round}): {history:#?}",
                rel.placement().name()
            );
            let snap = rel.verify().unwrap();
            assert_eq!(
                rel.len(),
                snap.len(),
                "len() must equal snapshot().len() at quiescence"
            );
        }
    }
}

#[test]
fn len_is_exact_after_quiescence() {
    for (name, rel) in variants().into_iter().take(6) {
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|tid| {
                let rel = rel.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for k in 0..50i64 {
                        // Thread-disjoint keys: all inserts must win.
                        assert!(rel
                            .insert(&edge(&rel, tid * 1000 + k, k), &weight(&rel, k))
                            .unwrap());
                    }
                    for k in 0..25i64 {
                        assert_eq!(rel.remove(&edge(&rel, tid * 1000 + k, k)).unwrap(), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rel.len(), threads * 25, "{name}");
        let snap = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(snap.len(), threads * 25, "{name}");
    }
}
