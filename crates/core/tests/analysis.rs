//! Tier-1 exhaustive run of the lock-discipline analyzer: every standard
//! decomposition × placement × operation shape × bound-column subset must
//! pass with zero diagnostics, and every seeded violation class must be
//! flagged with a step-level diagnostic naming the token(s) involved.

use std::sync::Arc;

use relc::analysis::{Analyzer, AnalyzerOptions, DiagnosticKind};
use relc::decomp::library;
use relc::placement::LockPlacement;
use relc::Decomposition;
use relc_containers::ContainerKind;

fn standard_decomps() -> Vec<(&'static str, Arc<Decomposition>)> {
    vec![
        (
            "stick(chm,tm)",
            library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "stick(tm,tm)",
            library::stick(ContainerKind::TreeMap, ContainerKind::TreeMap),
        ),
        (
            "stick(cslm,chm)",
            library::stick(
                ContainerKind::ConcurrentSkipListMap,
                ContainerKind::ConcurrentHashMap,
            ),
        ),
        (
            "split(chm,tm)",
            library::split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "diamond(chm,tm)",
            library::diamond(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        ("dcache", library::dcache()),
        (
            "kv(cslm)",
            library::kv(ContainerKind::ConcurrentSkipListMap),
        ),
    ]
}

fn standard_placements(d: &Arc<Decomposition>) -> Vec<Arc<LockPlacement>> {
    [
        LockPlacement::coarse(d).ok(),
        LockPlacement::fine(d).ok(),
        LockPlacement::striped_root(d, 2).ok(),
        LockPlacement::striped_root(d, 8).ok(),
        LockPlacement::speculative(d, 4).ok(),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// The positive half of the oracle: no false positives anywhere in the
/// standard library.
#[test]
fn standard_library_passes_clean() {
    for (dname, d) in standard_decomps() {
        for p in standard_placements(&d) {
            let analyzer = Analyzer::new(Arc::clone(&d), Arc::clone(&p));
            let diags = analyzer.analyze_all();
            assert!(
                diags.is_empty(),
                "{dname} under `{}`: expected a clean report, got:\n{}",
                p.name(),
                diags
                    .iter()
                    .map(|x| format!("  {x}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

/// A placement hosting a root edge at its *destination* (which does not
/// dominate the source) must be rejected both structurally and — via the
/// unbound-host lock site — symbolically.
#[test]
fn seeded_non_dominating_host_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let mut b = LockPlacement::builder(Arc::clone(&d));
    for (e, em) in d.edges() {
        if em.src == d.root() {
            b.place(e, em.dst); // host below the edge: no domination
        } else {
            b.place(e, em.src);
        }
    }
    let p = b.named("seeded-bad-host").build_unchecked().unwrap();
    let analyzer = Analyzer::new(Arc::clone(&d), p);
    let diags = analyzer.analyze_all();
    assert!(
        diags
            .iter()
            .any(|x| x.kind == DiagnosticKind::NonDominatingHost),
        "structural non-domination not flagged: {diags:?}"
    );
    assert!(
        diags.iter().any(|x| x.kind == DiagnosticKind::HostUnbound),
        "symbolic manifestation (unbound host at a lock site) not flagged"
    );
}

/// Path-sharing (§4.3 condition 2): a mid-chain edge hosted at the root
/// while the path edge to its source keeps its own lock.
#[test]
fn seeded_path_sharing_violation_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let mut b = LockPlacement::builder(Arc::clone(&d));
    for (e, em) in d.edges() {
        // Fine placement except the leaf edge, hosted at the root: the
        // root→v path runs through u→v, whose lock lives at u — not the
        // root lock the leaf edge claims protects the path.
        let host = if d.node(em.src).name == "v" {
            d.root()
        } else {
            em.src
        };
        b.place(e, host);
    }
    let p = b.named("seeded-path-sharing").build_unchecked().unwrap();
    let analyzer = Analyzer::new(Arc::clone(&d), p);
    let diags = analyzer.check_placement();
    assert!(
        diags
            .iter()
            .any(|x| x.kind == DiagnosticKind::PathSharingViolated),
        "path-sharing violation not flagged: {diags:?}"
    );
}

/// A bulk sweep that forgets the global token sort must be flagged on the
/// striped placements (two comparable stripes of one instance inverted).
#[test]
fn seeded_unsorted_sweep_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::striped_root(&d, 2).unwrap();
    let opts = AnalyzerOptions {
        suppress_sweep_sort: true,
        ..Default::default()
    };
    let analyzer = Analyzer::with_options(Arc::clone(&d), p, opts);
    // bound = {dst}: the existence check scans the src level, forcing an
    // all-stripe root sweep — exactly the batch whose sort matters.
    let dst = d.schema().column_set(&["dst"]).unwrap();
    let diags = analyzer.analyze_insert(dst).unwrap();
    let hit = diags
        .iter()
        .find(|x| x.kind == DiagnosticKind::UnsortedSweep)
        .unwrap_or_else(|| panic!("unsorted sweep not flagged: {diags:?}"));
    assert_eq!(hit.tokens.len(), 2, "diagnostic must name the token pair");
}

/// Undoing the planner's mode-promotion pass under a coarse placement must
/// surface as a shared→exclusive upgrade on the shared root lock.
#[test]
fn seeded_missing_promotion_flagged() {
    let d = library::stick(
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentHashMap,
    );
    let p = LockPlacement::coarse(&d).unwrap();
    let opts = AnalyzerOptions {
        suppress_promotion: true,
        ..Default::default()
    };
    let analyzer = Analyzer::with_options(Arc::clone(&d), Arc::clone(&p), opts);
    let bound = d.schema().column_set(&["src", "dst"]).unwrap();
    let updated = d.schema().column_set(&["weight"]).unwrap();
    let diags = analyzer.analyze_update(bound, updated).unwrap();
    let hit = diags
        .iter()
        .find(|x| x.kind == DiagnosticKind::SharedToExclusiveUpgrade)
        .unwrap_or_else(|| panic!("missing promotion not flagged: {diags:?}"));
    assert!(hit.step.is_some(), "diagnostic must name the plan step");
    // Sanity: with the real promotion pass the same shape is clean.
    let ok = Analyzer::new(Arc::clone(&d), p)
        .analyze_update(bound, updated)
        .unwrap();
    assert!(ok.is_empty(), "promoted plan should be clean: {ok:?}");
}

/// Dropping the `mvcc_write` mirror at one edge's mutation sites must be
/// flagged on every operation that writes the edge.
#[test]
fn seeded_missing_mvcc_mirror_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let weight_edge = d
        .edges()
        .find(|(_, em)| d.node(em.dst).name == "w")
        .map(|(e, _)| e)
        .unwrap();
    let opts = AnalyzerOptions {
        suppress_mirror: Some(weight_edge),
        ..Default::default()
    };
    let analyzer = Analyzer::with_options(Arc::clone(&d), p, opts);
    let key = d.schema().column_set(&["src", "dst"]).unwrap();
    for diags in [
        analyzer.analyze_insert(key).unwrap(),
        analyzer.analyze_remove(key).unwrap(),
    ] {
        assert!(
            diags
                .iter()
                .any(|x| x.kind == DiagnosticKind::MissingMvccMirror),
            "missing MVCC mirror not flagged: {diags:?}"
        );
    }
}

/// Claiming §5.2 sort elision on a chain whose scan order is not the token
/// order must be flagged.
#[test]
fn seeded_unsound_presort_flagged() {
    // ConcurrentHashMap scans are unsorted: no lock step after its scan
    // may claim a presorted batch.
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let opts = AnalyzerOptions {
        force_presorted: true,
        ..Default::default()
    };
    let analyzer = Analyzer::with_options(Arc::clone(&d), p, opts);
    let diags = analyzer.analyze_query(relc_spec::ColumnSet::new(), d.schema().columns());
    let diags = diags.unwrap();
    assert!(
        diags
            .iter()
            .any(|x| x.kind == DiagnosticKind::PresortedUnsound),
        "unsound presort claim not flagged: {diags:?}"
    );
}

/// A range scan can visit entries in every stripe of its host; an
/// executor that locks only one stripe — as if the interval routed the
/// traversal the way a point lookup's key does — must be flagged as an
/// uncovered read under a striped placement.
#[test]
fn seeded_under_locked_range_scan_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::striped_root(&d, 2).unwrap();
    let opts = AnalyzerOptions {
        demote_range_lock: true,
        ..Default::default()
    };
    let analyzer = Analyzer::with_options(Arc::clone(&d), Arc::clone(&p), opts);
    let src = d.schema().column("src").unwrap();
    let diags = analyzer
        .analyze_query_range(relc_spec::ColumnSet::new(), src, d.schema().columns())
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|x| x.kind == DiagnosticKind::UncoveredRead),
        "under-locked range scan not flagged: {diags:?}"
    );
    // Sanity: the planner's real range plan (all stripes locked) is clean.
    let ok = Analyzer::new(Arc::clone(&d), p)
        .analyze_query_range(relc_spec::ColumnSet::new(), src, d.schema().columns())
        .unwrap();
    assert!(ok.is_empty(), "standard range plan should be clean: {ok:?}");
}

/// A migration fence that sweeps only the *first* stripe of each
/// root-hosted edge leaves the remaining stripes unlocked, so the frozen
/// cut and the bulk-load publication are both under-protected; under a
/// striped placement this must surface as uncovered reads/writes.
#[test]
fn seeded_under_locked_migration_fence_flagged() {
    let d = library::stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::striped_root(&d, 8).unwrap();
    let opts = AnalyzerOptions {
        suppress_migration_fence: true,
        ..Default::default()
    };
    let diags = Analyzer::with_options(Arc::clone(&d), Arc::clone(&p), opts).analyze_migration();
    assert!(
        diags
            .iter()
            .any(|x| x.kind == DiagnosticKind::UncoveredRead
                || x.kind == DiagnosticKind::UncoveredWrite),
        "under-locked migration cutover not flagged: {diags:?}"
    );
    // Sanity: the real fence (all-stripe exclusive sweep) is clean.
    let ok = Analyzer::new(d, p).analyze_migration();
    assert!(ok.is_empty(), "full-fence cutover should be clean: {ok:?}");
}

/// Disabling the cross-shard try-only demotion must surface as an
/// out-of-order acquisition in the lexicographic (shard, token) model.
#[test]
fn seeded_shard_demotion_bypass_flagged() {
    let d = library::kv(ContainerKind::ConcurrentHashMap);
    let p = LockPlacement::fine(&d).unwrap();
    let opts = AnalyzerOptions {
        suppress_shard_demotion: true,
        ..Default::default()
    };
    let diags =
        Analyzer::with_options(Arc::clone(&d), Arc::clone(&p), opts).analyze_sharded_order();
    assert!(
        diags.iter().any(|x| x.kind == DiagnosticKind::OutOfOrder),
        "lower-shard blocking revisit not flagged: {diags:?}"
    );
    assert!(
        Analyzer::new(d, p).analyze_sharded_order().is_empty(),
        "demoted revisit must be clean"
    );
}
