//! Relation-level reclamation churn: a `ConcurrentRelation` whose
//! decomposition places skip lists at its edges is hammered with
//! insert/remove/update over a fixed key range. Real epoch reclamation
//! must (a) actually free retired skip-list nodes (`reclaimed` rises),
//! (b) keep in-flight garbage bounded while the storm runs, (c) reach
//! zero in-flight at quiescence after `flush_reclamation`, and (d) leave
//! the relation's visible contents exactly what the sequential oracle
//! predicts for the same operation stream.
//!
//! The epoch domain is process-global, so the tests in this binary
//! serialize on a mutex.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use relc::decomp::library::{split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::{reclamation_flush, reclamation_stats, ContainerKind};
use relc_spec::{OracleRelation, Tuple, Value};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Representations that put a `ConcurrentSkipListMap` at one or more
/// edges, so relation ops drive the epoch collector.
fn skiplist_variants() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let decomps: Vec<Arc<Decomposition>> = vec![
        stick(
            ContainerKind::ConcurrentSkipListMap,
            ContainerKind::ConcurrentSkipListMap,
        ),
        split(
            ContainerKind::ConcurrentSkipListMap,
            ContainerKind::ConcurrentSkipListMap,
        ),
    ];
    let mut out = Vec::new();
    for d in decomps {
        for p in [
            LockPlacement::coarse(&d).unwrap(),
            LockPlacement::fine(&d).unwrap(),
        ] {
            let name = format!("{} / {}", d.describe(), p.name());
            out.push((
                name,
                Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap()),
            ));
        }
    }
    out
}

fn edge(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

fn churn_one(
    name: &str,
    rel: &Arc<ConcurrentRelation>,
    threads: u64,
    rounds: u64,
    keyspace: u64,
    bound: u64,
) {
    reclamation_flush();
    let before = reclamation_stats();

    let barrier = Arc::new(Barrier::new(threads as usize));
    let done = Arc::new(AtomicBool::new(false));
    let max_in_flight = Arc::new(AtomicU64::new(0));
    let monitor = {
        let done = Arc::clone(&done);
        let max_in_flight = Arc::clone(&max_in_flight);
        std::thread::spawn(move || {
            while !done.load(SeqCst) {
                max_in_flight.fetch_max(reclamation_stats().in_flight(), SeqCst);
                std::thread::yield_now();
            }
        })
    };
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let rel = Arc::clone(rel);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut x = (t + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                for _ in 0..rounds {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x % keyspace) as i64;
                    match (x >> 32) % 4 {
                        0 => {
                            rel.insert(&edge(&rel, k, k), &weight(&rel, k)).unwrap();
                        }
                        1 => {
                            rel.remove(&edge(&rel, k, k)).unwrap();
                        }
                        2 => {
                            rel.update(&edge(&rel, k, k), &weight(&rel, -k)).unwrap();
                        }
                        _ => {
                            let cols = rel.schema().column_set(&["weight"]).unwrap();
                            let _ = rel.query(&edge(&rel, k, k), cols).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, SeqCst);
    monitor.join().unwrap();

    let stats = rel.flush_reclamation();
    let retired = stats.retired - before.retired;
    let reclaimed = stats.reclaimed - before.reclaimed;
    let peak = max_in_flight.load(SeqCst);
    assert!(
        reclaimed > 0,
        "{name}: relation churn must reclaim retired skip-list nodes"
    );
    assert_eq!(
        stats.in_flight(),
        0,
        "{name}: flush at quiescence frees everything ({stats:?})"
    );
    assert_eq!(retired, reclaimed, "{name}");
    assert!(
        peak <= bound,
        "{name}: in-flight garbage unbounded during churn: peak {peak} > {bound} \
         (retired {retired})"
    );

    // Structural integrity after the storm.
    let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(verified.len(), rel.len(), "{name}: len exact at quiescence");
}

#[test]
fn churn_reclaims_and_bounds_in_flight_across_representations() {
    let _serial = serialize();
    for (name, rel) in skiplist_variants() {
        churn_one(&name, &rel, 4, 1_500, 48, 8_192);
    }
}

/// The same deterministic op stream applied to a skip-list-backed relation
/// and the sequential oracle must agree op-for-op — reclamation must not
/// change any visible result. (Sequential on purpose: with one thread the
/// oracle is an exact specification, so any divergence is a real bug, not
/// a linearization ambiguity.)
#[test]
fn oracle_differential_unchanged_under_reclamation() {
    let _serial = serialize();
    for (name, rel) in skiplist_variants() {
        let schema = rel.schema().clone();
        let oracle = OracleRelation::empty(schema.clone());
        let wcols = schema.column_set(&["weight"]).unwrap();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 32) as i64;
            match (x >> 32) % 4 {
                0 => {
                    let got = rel.insert(&edge(&rel, k, k), &weight(&rel, k)).unwrap();
                    let want = oracle.insert(&edge(&rel, k, k), &weight(&rel, k)).unwrap();
                    assert_eq!(got, want, "{name}: insert({k})");
                }
                1 => {
                    let got = rel.remove(&edge(&rel, k, k)).unwrap();
                    let want = oracle.remove(&edge(&rel, k, k));
                    assert_eq!(got, want, "{name}: remove({k})");
                }
                2 => {
                    let got = rel.update(&edge(&rel, k, k), &weight(&rel, -k)).unwrap();
                    let want = oracle.update(&edge(&rel, k, k), &weight(&rel, -k)).unwrap();
                    assert_eq!(got, want, "{name}: update({k})");
                }
                _ => {
                    let mut got = rel.query(&edge(&rel, k, k), wcols).unwrap();
                    let mut want = oracle.query(&edge(&rel, k, k), wcols);
                    got.sort();
                    want.sort();
                    assert_eq!(got, want, "{name}: query({k})");
                }
            }
            // Periodically force collection mid-stream so reclamation
            // interleaves with the differential, not just after it.
            if x.is_multiple_of(97) {
                rel.flush_reclamation();
            }
        }
        let mut got = rel.snapshot().unwrap();
        let mut want = oracle.snapshot();
        got.sort();
        want.sort();
        assert_eq!(got, want, "{name}: final contents diverge");
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats = rel.flush_reclamation();
        assert_eq!(stats.in_flight(), 0, "{name}");
    }
}

/// Batched ops through a sharded, skip-list-backed relation churn and
/// reclaim too (exercises `extend_entries` + cross-shard removal against
/// the collector).
#[test]
fn sharded_batch_churn_reclaims() {
    let _serial = serialize();
    reclamation_flush();
    let before = reclamation_stats();

    let d = stick(
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::ConcurrentSkipListMap,
    );
    let rel = Arc::new(
        relc::ShardedRelation::new(d.clone(), LockPlacement::fine(&d).unwrap(), 4).unwrap(),
    );
    let threads = 3u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let rel = Arc::clone(&rel);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let schema = rel.schema().clone();
                let key = |s: i64, d: i64| {
                    schema
                        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
                        .unwrap()
                };
                let w = |v: i64| schema.tuple(&[("weight", Value::from(v))]).unwrap();
                let mut x = ((t + 1) * 0x9e37_79b9) | 1;
                for _ in 0..150 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let base = (x % 64) as i64;
                    let rows: Vec<(Tuple, Tuple)> =
                        (0..16).map(|j| (key(base + j, base + j), w(j))).collect();
                    rel.insert_all(&rows).unwrap();
                    let keys: Vec<Tuple> = rows.into_iter().map(|(s, _)| s).collect();
                    rel.remove_all(&keys).unwrap();
                }
            })
        })
        .collect();
    for wkr in workers {
        wkr.join().unwrap();
    }

    let stats = rel.flush_reclamation();
    assert!(stats.reclaimed > before.reclaimed, "batch churn reclaims");
    assert_eq!(stats.in_flight(), 0);
    rel.verify().unwrap();
}

#[test]
#[ignore = "long-running relation-level reclamation soak; run with `cargo test -- --ignored`"]
fn soak_relation_churn_memory_stays_bounded() {
    let _serial = serialize();
    let d = stick(
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::ConcurrentSkipListMap,
    );
    let rel =
        Arc::new(ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap());
    // Bound headroom for release-speed churn on oversubscribed boxes: a
    // descheduled pinned thread stalls the epoch for a timeslice while
    // the rest keep retiring (see the containers soak for the math).
    churn_one("stick(skiplist)/fine soak", &rel, 4, 30_000, 64, 32_768);
}
