//! Coverage for the in-place `update` fast path: planner classification,
//! oracle-differential behavior on both strategies, rollback after aborts
//! and forced mid-transaction restarts, lincheck under contention, and the
//! short-circuiting `contains`.

use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use relc::decomp::library::{dcache, diamond, kv, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::planner::UpdatePlan;
use relc::{ConcurrentRelation, CoreError, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, RelationSchema, Tuple, Value};

fn edge(d: &Decomposition, s: i64, t: i64) -> Tuple {
    d.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(t))])
        .unwrap()
}

fn weight(d: &Decomposition, w: i64) -> Tuple {
    d.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// A graph-schema decomposition whose first edge binds (src, weight): the
/// updated column sits in a *non-sink* node key, so a weight update must
/// move the tuple and the planner must refuse the fast path.
fn weight_in_mid_key() -> Arc<Decomposition> {
    let schema = relc_spec::library::graph_schema();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let a = b.node("a");
    let c = b.node("c");
    b.edge(root, a, &["src", "weight"], ContainerKind::HashMap)
        .unwrap();
    b.edge(a, c, &["dst"], ContainerKind::HashMap).unwrap();
    b.build().unwrap()
}

#[test]
fn fast_path_is_selected_across_library_decompositions() {
    // Every library decomposition keys its value column(s) only at sinks,
    // so the canonical update shape takes the fast path under every
    // non-degenerate placement.
    let graphs = [
        stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
    ];
    for d in graphs {
        for p in [
            LockPlacement::coarse(&d).unwrap(),
            LockPlacement::fine(&d).unwrap(),
        ] {
            let rel = ConcurrentRelation::new(d.clone(), p.clone()).unwrap();
            let planner = rel.planner();
            let plan = planner
                .plan_update(
                    d.schema().column_set(&["src", "dst"]).unwrap(),
                    d.schema().column_set(&["weight"]).unwrap(),
                )
                .unwrap();
            assert!(
                plan.is_in_place(),
                "weight update must be in-place on {} / {}",
                d.describe(),
                p.name()
            );
        }
    }
    // dcache: child is the sink column of the (parent, name) key.
    let d = dcache();
    let plan = ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap())
        .unwrap()
        .planner()
        .plan_update(
            d.schema().column_set(&["parent", "name"]).unwrap(),
            d.schema().column_set(&["child"]).unwrap(),
        )
        .unwrap();
    assert!(plan.is_in_place(), "dcache child update must be in-place");
    // kv: the everyday key-value overwrite.
    let d = kv(ContainerKind::ConcurrentHashMap);
    let plan = ConcurrentRelation::new(d.clone(), LockPlacement::striped_root(&d, 16).unwrap())
        .unwrap()
        .planner()
        .plan_update(
            d.schema().column_set(&["key"]).unwrap(),
            d.schema().column_set(&["value"]).unwrap(),
        )
        .unwrap();
    assert!(plan.is_in_place(), "kv value update must be in-place");

    // And the counterexample: weight bound mid-chain forces the general
    // path.
    let d = weight_in_mid_key();
    let plan = ConcurrentRelation::new(d.clone(), LockPlacement::coarse(&d).unwrap())
        .unwrap()
        .planner()
        .plan_update(
            d.schema().column_set(&["src", "dst"]).unwrap(),
            d.schema().column_set(&["weight"]).unwrap(),
        )
        .unwrap();
    assert!(matches!(plan, UpdatePlan::General(_)));
}

/// Differential oracle test on a decomposition where update takes the
/// *general* path — the fallback must keep exact §2 semantics.
#[test]
fn general_path_update_matches_oracle() {
    let d = weight_in_mid_key();
    let p = LockPlacement::coarse(&d).unwrap();
    let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
    let oracle = OracleRelation::empty(d.schema().clone());
    let mut step = xorshift(0xfeed_f00d);
    for _ in 0..300 {
        let s = (step() % 5) as i64;
        let t = (step() % 5) as i64;
        let w = (step() % 4) as i64;
        match step() % 3 {
            0 => {
                let got = rel.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                let want = oracle.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                assert_eq!(got, want, "insert");
            }
            1 => {
                let got = rel.update(&edge(&d, s, t), &weight(&d, w)).unwrap();
                let want = oracle.update(&edge(&d, s, t), &weight(&d, w)).unwrap();
                assert_eq!(got, want, "update");
            }
            _ => {
                assert_eq!(
                    rel.remove(&edge(&d, s, t)).unwrap(),
                    oracle.remove(&edge(&d, s, t)),
                    "remove"
                );
            }
        }
        assert_eq!(rel.len(), oracle.len());
    }
    let verified = rel.verify().unwrap();
    let want: std::collections::BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
    assert_eq!(verified, want);
}

/// Differential oracle test mixing fast-path updates with `contains` (the
/// short-circuiting existence check) on dcache and kv — shapes beyond the
/// graph variants the shared tests already sweep.
#[test]
fn fast_path_update_and_contains_match_oracle_on_dcache_and_kv() {
    // dcache.
    let d = dcache();
    for p in [
        LockPlacement::coarse(&d).unwrap(),
        LockPlacement::fine(&d).unwrap(),
    ] {
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let key = |par: i64, name: i64| {
            d.schema()
                .tuple(&[("parent", Value::from(par)), ("name", Value::from(name))])
                .unwrap()
        };
        let child = |c: i64| d.schema().tuple(&[("child", Value::from(c))]).unwrap();
        let mut step = xorshift(0xabad_cafe);
        for _ in 0..300 {
            let par = (step() % 4) as i64;
            let nm = (step() % 3) as i64;
            let ch = (step() % 6) as i64;
            match step() % 4 {
                0 => {
                    assert_eq!(
                        rel.insert(&key(par, nm), &child(ch)).unwrap(),
                        oracle.insert(&key(par, nm), &child(ch)).unwrap()
                    );
                }
                1 => {
                    assert_eq!(
                        rel.update(&key(par, nm), &child(ch)).unwrap(),
                        oracle.update(&key(par, nm), &child(ch)).unwrap()
                    );
                }
                2 => {
                    assert_eq!(
                        rel.remove(&key(par, nm)).unwrap(),
                        oracle.remove(&key(par, nm))
                    );
                }
                _ => {
                    let pat = d.schema().tuple(&[("parent", Value::from(par))]).unwrap();
                    assert_eq!(
                        rel.contains(&pat).unwrap(),
                        !oracle.query(&pat, relc_spec::ColumnSet::EMPTY).is_empty(),
                        "contains(parent={par})"
                    );
                }
            }
        }
        rel.verify().unwrap();
    }

    // kv under striping: the hot put-overwrite shape.
    let d = kv(ContainerKind::ConcurrentHashMap);
    let p = LockPlacement::striped_root(&d, 16).unwrap();
    let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
    let oracle = OracleRelation::empty(d.schema().clone());
    let k = |k: i64| d.schema().tuple(&[("key", Value::from(k))]).unwrap();
    let v = |v: i64| d.schema().tuple(&[("value", Value::from(v))]).unwrap();
    let mut step = xorshift(0x5eed);
    for _ in 0..400 {
        let key = (step() % 8) as i64;
        let val = (step() % 100) as i64;
        match step() % 4 {
            0 => {
                assert_eq!(
                    rel.insert(&k(key), &v(val)).unwrap(),
                    oracle.insert(&k(key), &v(val)).unwrap()
                );
            }
            1 | 2 => {
                assert_eq!(
                    rel.update(&k(key), &v(val)).unwrap(),
                    oracle.update(&k(key), &v(val)).unwrap()
                );
            }
            _ => {
                assert_eq!(rel.remove(&k(key)).unwrap(), oracle.remove(&k(key)));
            }
        }
    }
    let verified = rel.verify().unwrap();
    let want: std::collections::BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
    assert_eq!(verified, want);
}

/// (c) of the issue's test matrix: a transaction whose fast-path update is
/// followed by an operation that forces a restart mid-transaction. The
/// first run applies the in-place rewrite and then restarts (the insert
/// upgrades shared traversal locks); the rollback must replay the
/// write-back exactly, and the retry must commit both effects once.
#[test]
fn fast_path_rollback_after_forced_mid_transaction_restart() {
    {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 1), &weight(&d, 10)).unwrap();
        let runs = std::cell::Cell::new(0u32);
        rel.transaction(|tx| {
            runs.set(runs.get() + 1);
            // Fast-path update: shared locks on the root chains, exclusive
            // only on the touched hosts.
            let old = tx.update(&edge(&d, 1, 1), &weight(&d, 77))?;
            assert!(old.is_some());
            // The insert's root batch needs those root locks exclusively:
            // upgrade → restart on the first run, after the update already
            // wrote. The write-back must undo it before the retry.
            tx.insert(&edge(&d, 2, 2), &weight(&d, 20))?;
            Ok(())
        })
        .unwrap();
        assert!(
            runs.get() >= 2,
            "the shared→exclusive upgrade must force one restart"
        );
        let wcol = d.schema().column("weight").unwrap();
        let verified = rel.verify().unwrap();
        assert_eq!(verified.len(), 2);
        let weights: Vec<i64> = verified
            .iter()
            .map(|t| t.get(wcol).and_then(|v| v.as_int()).unwrap())
            .collect();
        assert!(
            weights.contains(&77),
            "update committed exactly once: {weights:?}"
        );
        assert!(weights.contains(&20), "insert committed: {weights:?}");
    }
}

/// Aborted transactions mixing fast-path updates with structural ops must
/// roll back to the exact prior instance — including double updates of one
/// key (write-backs replay in reverse order) and update-then-remove (the
/// write-back must find the compensating re-insert's fresh instances).
#[test]
fn fast_path_rollback_on_abort_composes_with_other_ops() {
    let variants: Vec<(Arc<Decomposition>, Arc<LockPlacement>)> = {
        let st = stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        vec![
            (st.clone(), LockPlacement::coarse(&st).unwrap()),
            (sp.clone(), LockPlacement::fine(&sp).unwrap()),
            (sp.clone(), LockPlacement::striped_root(&sp, 64).unwrap()),
            (di.clone(), LockPlacement::speculative(&di, 8).unwrap()),
        ]
    };
    for (d, p) in variants {
        let name = format!("{} / {}", d.describe(), p.name());
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 100)).unwrap();
        rel.insert(&edge(&d, 3, 4), &weight(&d, 200)).unwrap();
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));

        // Double update of one key, update of another, then abort.
        let err = rel
            .transaction(|tx| -> Result<(), relc::TxnError> {
                assert!(tx.update(&edge(&d, 1, 2), &weight(&d, 7))?.is_some());
                assert!(tx.update(&edge(&d, 1, 2), &weight(&d, 8))?.is_some());
                assert!(tx.update(&edge(&d, 3, 4), &weight(&d, 9))?.is_some());
                Err(tx.abort("nope"))
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::TransactionAborted(_)), "{name}");
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: double-update abort must be exact");

        // Update, remove the same key, insert it back differently, abort.
        let err = rel
            .transaction(|tx| -> Result<(), relc::TxnError> {
                assert!(tx.update(&edge(&d, 1, 2), &weight(&d, 55))?.is_some());
                assert_eq!(tx.remove(&edge(&d, 1, 2))?, 1);
                assert!(tx.insert(&edge(&d, 1, 2), &weight(&d, 66))?);
                assert!(tx.update(&edge(&d, 1, 2), &weight(&d, 67))?.is_some());
                Err(tx.abort("still nope"))
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::TransactionAborted(_)), "{name}");
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: mixed-op abort must be exact");
        assert_eq!(rel.len(), 2, "{name}");
    }
}

/// Concurrency stress: update-heavy contention over few keys while reader
/// threads run point queries and `contains`; every placement must stay
/// structurally sound and linearizable histories must check out.
#[test]
fn fast_path_update_contention_stress() {
    let variants: Vec<(&str, Arc<Decomposition>, Arc<LockPlacement>)> = {
        let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        vec![
            ("split/fine", sp.clone(), LockPlacement::fine(&sp).unwrap()),
            (
                "split/striped",
                sp.clone(),
                LockPlacement::striped_root(&sp, 64).unwrap(),
            ),
            (
                "diamond/spec",
                di.clone(),
                LockPlacement::speculative(&di, 16).unwrap(),
            ),
        ]
    };
    for (name, d, p) in variants {
        let rel = Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap());
        const KEYS: i64 = 4;
        for k in 0..KEYS {
            rel.insert(&edge(&d, k, k), &weight(&d, 0)).unwrap();
        }
        let threads = 6;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let rel = Arc::clone(&rel);
                let d = d.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut next = xorshift((tid + 1) * 0x9e37_79b9);
                    let wcols = d.schema().column_set(&["weight"]).unwrap();
                    barrier.wait();
                    for _ in 0..400 {
                        let k = (next() % KEYS as u64) as i64;
                        match next() % 4 {
                            0 | 1 => {
                                let w = (next() % 1000) as i64;
                                assert!(rel
                                    .update(&edge(&d, k, k), &weight(&d, w))
                                    .unwrap()
                                    .is_some());
                            }
                            2 => {
                                let got = rel.query(&edge(&d, k, k), wcols).unwrap();
                                assert_eq!(got.len(), 1, "key ({k},{k}) always present");
                            }
                            _ => {
                                assert!(rel.contains(&edge(&d, k, k)).unwrap());
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join()
                .unwrap_or_else(|e| panic!("{name}: worker panicked: {e:?}"));
        }
        let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(verified.len(), KEYS as usize, "{name}");
        assert_eq!(rel.len(), KEYS as usize, "{name}");
    }
}

/// Small concurrent histories of single-shot fast-path updates and point
/// queries must be linearizable (Wing–Gong check).
#[test]
fn fast_path_update_histories_are_linearizable() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    for p in [
        LockPlacement::fine(&d).unwrap(),
        LockPlacement::striped_root(&d, 8).unwrap(),
    ] {
        for round in 0..15u64 {
            let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
            let rec = HistoryRecorder::new();
            // The seeding insert is part of the checked history (the model
            // starts from an empty relation).
            rec.record(|| {
                let r = rel.insert(&edge(&d, 0, 0), &weight(&d, 0)).unwrap();
                (
                    (),
                    OpRecord::Insert {
                        s: edge(&d, 0, 0),
                        t: weight(&d, 0),
                        result: r,
                    },
                )
            });
            let threads = 3;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = Arc::clone(&rel);
                    let d = d.clone();
                    let rec = Arc::clone(&rec);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        let mut next = xorshift((round + 1) * (tid + 7));
                        let wcols = d.schema().column_set(&["weight"]).unwrap();
                        barrier.wait();
                        for _ in 0..3 {
                            let w = (next() % 4) as i64;
                            if next().is_multiple_of(2) {
                                rec.record(|| {
                                    let r = rel.update(&edge(&d, 0, 0), &weight(&d, w)).unwrap();
                                    (
                                        (),
                                        OpRecord::Update {
                                            s: edge(&d, 0, 0),
                                            t: weight(&d, w),
                                            result: r,
                                        },
                                    )
                                });
                            } else {
                                rec.record(|| {
                                    let r = rel.query(&edge(&d, 0, 0), wcols).unwrap();
                                    (
                                        (),
                                        OpRecord::Query {
                                            s: edge(&d, 0, 0),
                                            cols: wcols,
                                            result: r,
                                        },
                                    )
                                });
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let history = rec.into_history();
            assert!(
                check_linearizable(rel.schema(), &history),
                "non-linearizable update history on {} (round {round}): {history:#?}",
                rel.placement().name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Proptest: random op sequences, fast and general strategy side by side.
// ---------------------------------------------------------------------------

fn abcd_schema() -> Arc<RelationSchema> {
    RelationSchema::builder()
        .column("a")
        .column("b")
        .column("c")
        .column("d")
        .fd(&["a"], &["b", "c", "d"])
        .build()
}

/// Chain ρ -a→ x -b→ y -c→ z -d→ w: `d` lives only in the sink key, so
/// updating `d` is fast-path eligible; updating `b` (a mid-chain key) is
/// not.
fn abcd_chain() -> Arc<Decomposition> {
    let schema = abcd_schema();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    let x = b.node("x");
    let y = b.node("y");
    let z = b.node("z");
    let w = b.node("w");
    b.edge(root, x, &["a"], ContainerKind::ConcurrentHashMap)
        .unwrap();
    b.edge(x, y, &["b"], ContainerKind::HashMap).unwrap();
    b.edge(y, z, &["c"], ContainerKind::TreeMap).unwrap();
    b.edge(z, w, &["d"], ContainerKind::Singleton).unwrap();
    b.build().unwrap()
}

#[derive(Debug, Clone)]
enum FpOp {
    Insert(i64, i64, i64, i64),
    /// Update `d` by key `a` — the fast path on the abcd chain.
    UpdateLast(i64, i64),
    /// Update `b` (and `c`, `d`) by key `a` — forced general path.
    UpdateMid(i64, i64),
    Remove(i64),
    Contains(i64),
}

fn fp_op_strategy() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        (0i64..6, 0i64..4, 0i64..4, 0i64..4).prop_map(|(a, b, c, d)| FpOp::Insert(a, b, c, d)),
        (0i64..6, 0i64..8).prop_map(|(a, d)| FpOp::UpdateLast(a, d)),
        (0i64..6, 0i64..8).prop_map(|(a, b)| FpOp::UpdateMid(a, b)),
        (0i64..6).prop_map(FpOp::Remove),
        (0i64..6).prop_map(FpOp::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn proptest_fast_and_general_updates_match_oracle(
        ops in proptest::collection::vec(fp_op_strategy(), 1..120)
    ) {
        let d = abcd_chain();
        let schema = d.schema().clone();
        // Sanity-check the strategy split once per case.
        for p in [LockPlacement::coarse(&d).unwrap(), LockPlacement::fine(&d).unwrap()] {
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            let planner = rel.planner();
            let akey = schema.column_set(&["a"]).unwrap();
            prop_assert!(planner
                .plan_update(akey, schema.column_set(&["d"]).unwrap())
                .unwrap()
                .is_in_place());
            prop_assert!(!planner
                .plan_update(akey, schema.column_set(&["b", "c", "d"]).unwrap())
                .unwrap()
                .is_in_place());
            let oracle = OracleRelation::empty(schema.clone());
            let key = |a: i64| schema.tuple(&[("a", Value::from(a))]).unwrap();
            for op in &ops {
                match *op {
                    FpOp::Insert(a, b, c, dd) => {
                        let t = schema
                            .tuple(&[
                                ("b", Value::from(b)),
                                ("c", Value::from(c)),
                                ("d", Value::from(dd)),
                            ])
                            .unwrap();
                        prop_assert_eq!(
                            rel.insert(&key(a), &t).unwrap(),
                            oracle.insert(&key(a), &t).unwrap()
                        );
                    }
                    FpOp::UpdateLast(a, dd) => {
                        let t = schema.tuple(&[("d", Value::from(dd))]).unwrap();
                        prop_assert_eq!(
                            rel.update(&key(a), &t).unwrap(),
                            oracle.update(&key(a), &t).unwrap()
                        );
                    }
                    FpOp::UpdateMid(a, b) => {
                        let t = schema
                            .tuple(&[
                                ("b", Value::from(b)),
                                ("c", Value::from(b + 1)),
                                ("d", Value::from(b + 2)),
                            ])
                            .unwrap();
                        prop_assert_eq!(
                            rel.update(&key(a), &t).unwrap(),
                            oracle.update(&key(a), &t).unwrap()
                        );
                    }
                    FpOp::Remove(a) => {
                        prop_assert_eq!(rel.remove(&key(a)).unwrap(), oracle.remove(&key(a)));
                    }
                    FpOp::Contains(a) => {
                        prop_assert_eq!(
                            rel.contains(&key(a)).unwrap(),
                            !oracle.query(&key(a), relc_spec::ColumnSet::EMPTY).is_empty()
                        );
                    }
                }
                prop_assert_eq!(rel.len(), oracle.len());
            }
            let verified = rel.verify().map_err(TestCaseError::fail)?;
            let want: std::collections::BTreeSet<Tuple> =
                oracle.snapshot().into_iter().collect();
            prop_assert_eq!(verified, want);
        }
    }
}
