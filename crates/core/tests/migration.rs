//! Live-migration differential battery: oracle equivalence across a chain
//! of representation changes, constant-sum preservation under concurrent
//! writers racing the cutover (torn-read detector), linearizability of
//! histories that span `Migrate` records, pinned snapshot readers across
//! the root swap, sharded no-half-migrated-mix, and agreement of the
//! unified `StatsSnapshot` with the legacy per-facet stats accessors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use relc::decomp::library::{diamond, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition, ShardedRelation};
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

/// The migration chain: every hop changes the decomposition, the lock
/// placement, or both, over the shared graph schema.
fn candidates() -> Vec<(String, Arc<Decomposition>, Arc<LockPlacement>)> {
    let st = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let st2 = stick(ContainerKind::ConcurrentSkipListMap, ContainerKind::HashMap);
    let sp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let di = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    vec![
        (
            "stick/striped8".into(),
            st.clone(),
            LockPlacement::striped_root(&st, 8).unwrap(),
        ),
        (
            "split/fine".into(),
            sp.clone(),
            LockPlacement::fine(&sp).unwrap(),
        ),
        (
            "diamond/coarse".into(),
            di.clone(),
            LockPlacement::coarse(&di).unwrap(),
        ),
        (
            "stick(cslm)/speculative4".into(),
            st2.clone(),
            LockPlacement::speculative(&st2, 4).unwrap(),
        ),
        (
            "split/striped2".into(),
            sp.clone(),
            LockPlacement::striped_root(&sp, 2).unwrap(),
        ),
    ]
}

/// Candidates whose placements can plan full-relation scans (the
/// constant-sum readers snapshot the whole relation; speculative edges
/// cannot be scanned, so that hop is exercised only by the quiescent
/// chain tests and point-read workloads).
fn scannable_candidates() -> Vec<(String, Arc<Decomposition>, Arc<LockPlacement>)> {
    candidates()
        .into_iter()
        .filter(|(name, _, _)| !name.contains("speculative"))
        .collect()
}

fn edge(schema: &relc_spec::RelationSchema, s: i64, d: i64) -> Tuple {
    schema
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(schema: &relc_spec::RelationSchema, w: i64) -> Tuple {
    schema.tuple(&[("weight", Value::from(w))]).unwrap()
}

fn with_watchdog(secs: u64, name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {name} did not finish (deadlock?)"));
}

/// Sums the `weight` column of a full-relation snapshot.
fn sum_weights(schema: &relc_spec::RelationSchema, rows: &[Tuple]) -> i64 {
    let w = schema.column("weight").unwrap();
    rows.iter()
        .map(|t| t.get(w).and_then(|v| v.as_int()).unwrap())
        .sum()
}

// ---------------------------------------------------------------------------
// Oracle equivalence across a migration chain (quiescent differential).
// ---------------------------------------------------------------------------

/// Walking the whole candidate chain must preserve the abstract relation
/// exactly at every hop, bump the migration counter, and leave a fully
/// functional relation (inserts/removes/queries keep working after each
/// swap).
#[test]
fn migration_chain_preserves_contents() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let rel = ConcurrentRelation::new(Arc::clone(d0), Arc::clone(p0)).unwrap();
    let schema = rel.schema().clone();
    for k in 0..64i64 {
        assert!(rel
            .insert(&edge(&schema, k % 8, k), &weight(&schema, k * 3))
            .unwrap());
    }
    let expected = rel.verify().unwrap();
    assert_eq!(expected.len(), 64);

    for (hop, (name, d, p)) in chain.iter().enumerate().skip(1) {
        rel.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
        assert_eq!(rel.migration_count(), hop as u64, "{name}");
        assert_eq!(rel.len(), 64, "{name}");
        let got = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got, expected, "{name}: contents changed across migration");
        // Spot-check the compiled plans against the new representation.
        let wc = schema.column_set(&["weight"]).unwrap();
        assert_eq!(
            rel.query(&edge(&schema, 5, 5), wc).unwrap(),
            vec![weight(&schema, 15)],
            "{name}"
        );
        assert!(rel.contains(&edge(&schema, 0, 0)).unwrap(), "{name}");
        // The relation must stay writable after the swap.
        assert!(rel
            .insert(&edge(&schema, 100, hop as i64), &weight(&schema, 1))
            .unwrap());
        assert_eq!(rel.remove(&edge(&schema, 100, hop as i64)).unwrap(), 1);
    }
}

/// Same differential for the sharded flavor: every hop re-decomposes all
/// shards behind one cutover.
#[test]
fn sharded_migration_chain_preserves_contents() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let rel = ShardedRelation::new(Arc::clone(d0), Arc::clone(p0), 4).unwrap();
    let schema = rel.schema().clone();
    for k in 0..64i64 {
        assert!(rel
            .insert(&edge(&schema, k % 8, k), &weight(&schema, k * 3))
            .unwrap());
    }
    let expected = rel.verify().unwrap();
    for (hop, (name, d, p)) in chain.iter().enumerate().skip(1) {
        rel.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
        assert_eq!(rel.migration_count(), hop as u64, "{name}");
        let got = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got, expected, "{name}: contents changed across migration");
        assert_eq!(rel.len(), 64, "{name}");
    }
}

// ---------------------------------------------------------------------------
// Torn-read detector: constant sum under writers racing live migrations.
// ---------------------------------------------------------------------------

/// Concurrent transfer transactions conserve a total while the main
/// thread cycles the representation underneath them. Any read — locked
/// transaction or lock-free snapshot — observing a partial cutover
/// (tuples missing, duplicated, or a transfer half-applied) breaks the
/// sum.
#[test]
fn constant_sum_preserved_across_live_migrations() {
    let chain = scannable_candidates();
    let (_, d0, p0) = &chain[0];
    let rel = Arc::new(ConcurrentRelation::new(Arc::clone(d0), Arc::clone(p0)).unwrap());
    let schema = rel.schema().clone();
    let accounts = 8i64;
    let total = 100 * accounts;
    for k in 0..accounts {
        assert!(rel
            .insert(&edge(&schema, k, k), &weight(&schema, 100))
            .unwrap());
    }

    let rel2 = rel.clone();
    with_watchdog(
        120,
        "constant_sum_preserved_across_live_migrations",
        move || {
            let rel = rel2;
            let schema = rel.schema().clone();
            let stop = Arc::new(AtomicBool::new(false));
            let writers = 4;
            let readers = 2;
            let barrier = Arc::new(Barrier::new(writers + readers));
            let mut handles = Vec::new();
            for tid in 0..writers as u64 {
                let rel = rel.clone();
                let schema = schema.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let wc = schema.column_set(&["weight"]).unwrap();
                    let w = schema.column("weight").unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let a = (next() % accounts as u64) as i64;
                        let mut b = (next() % accounts as u64) as i64;
                        if a == b {
                            b = (b + 1) % accounts;
                        }
                        let (ka, kb) = (edge(&schema, a, a), edge(&schema, b, b));
                        rel.transaction(|tx| {
                            let wa = tx.query(&ka, wc)?[0].get(w).unwrap().as_int().unwrap();
                            let wb = tx.query(&kb, wc)?[0].get(w).unwrap().as_int().unwrap();
                            tx.update(&ka, &weight(&schema, wa - 1))?;
                            tx.update(&kb, &weight(&schema, wb + 1))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }));
            }
            for _ in 0..readers {
                let rel = rel.clone();
                let schema = schema.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        // Lock-free snapshot read: one consistent cut.
                        let rows = rel.snapshot().unwrap();
                        assert_eq!(rows.len(), accounts as usize, "torn snapshot: {rows:?}");
                        assert_eq!(
                            sum_weights(&schema, &rows),
                            total,
                            "torn snapshot sum: {rows:?}"
                        );
                        // Locked multi-key read inside one transaction (full
                        // scans are not plannable under speculative
                        // placements, so sum point reads instead).
                        let w = schema.column("weight").unwrap();
                        let wc = schema.column_set(&["weight"]).unwrap();
                        let locked_sum = rel
                            .transaction(|tx| {
                                let mut sum = 0i64;
                                for k in 0..accounts {
                                    let rows = tx.query(&edge(&schema, k, k), wc)?;
                                    sum += rows[0].get(w).unwrap().as_int().unwrap();
                                }
                                Ok(sum)
                            })
                            .unwrap();
                        assert_eq!(locked_sum, total, "torn locked read");
                    }
                }));
            }
            // Main thread: cycle live migrations under the workload.
            for (_, d, p) in scannable_candidates().iter().cycle().take(12) {
                rel.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
                std::thread::sleep(Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rel.migration_count(), 12);
            let rows = rel.snapshot().unwrap();
            assert_eq!(sum_weights(&schema, &rows), total);
            rel.verify().unwrap();
        },
    );
}

/// Sharded flavor of the torn-read detector: cross-shard transfers race
/// the shard-by-shard cutover; a fan-out read observing a half-migrated
/// mix (some shards old, some new, straddling a completed migration)
/// would tear the sum or the cardinality.
#[test]
fn sharded_constant_sum_across_live_migrations() {
    let chain = scannable_candidates();
    let (_, d0, p0) = &chain[0];
    let rel = Arc::new(ShardedRelation::new(Arc::clone(d0), Arc::clone(p0), 4).unwrap());
    let schema = rel.schema().clone();
    let accounts = 8i64;
    let total = 100 * accounts;
    for k in 0..accounts {
        assert!(rel
            .insert(&edge(&schema, k, k), &weight(&schema, 100))
            .unwrap());
    }

    let rel2 = rel.clone();
    with_watchdog(
        120,
        "sharded_constant_sum_across_live_migrations",
        move || {
            let rel = rel2;
            let schema = rel.schema().clone();
            let stop = Arc::new(AtomicBool::new(false));
            let writers = 4;
            let readers = 2;
            let barrier = Arc::new(Barrier::new(writers + readers));
            let mut handles = Vec::new();
            for tid in 0..writers as u64 {
                let rel = rel.clone();
                let schema = schema.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let wc = schema.column_set(&["weight"]).unwrap();
                    let w = schema.column("weight").unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let a = (next() % accounts as u64) as i64;
                        let mut b = (next() % accounts as u64) as i64;
                        if a == b {
                            b = (b + 1) % accounts;
                        }
                        let (ka, kb) = (edge(&schema, a, a), edge(&schema, b, b));
                        rel.transaction(|tx| {
                            let wa = tx.query(&ka, wc)?[0].get(w).unwrap().as_int().unwrap();
                            let wb = tx.query(&kb, wc)?[0].get(w).unwrap().as_int().unwrap();
                            tx.update(&ka, &weight(&schema, wa - 1))?;
                            tx.update(&kb, &weight(&schema, wb + 1))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }));
            }
            for _ in 0..readers {
                let rel = rel.clone();
                let schema = schema.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        // Fan-out snapshot read across every shard: must be one
                        // consistent cut even mid-cutover.
                        let rows = rel.snapshot().unwrap();
                        assert_eq!(rows.len(), accounts as usize, "torn fan-out: {rows:?}");
                        assert_eq!(
                            sum_weights(&schema, &rows),
                            total,
                            "half-migrated mix observed: {rows:?}"
                        );
                    }
                }));
            }
            for (_, d, p) in scannable_candidates().iter().cycle().take(8) {
                rel.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
                std::thread::sleep(Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rel.migration_count(), 8);
            let rows = rel.snapshot().unwrap();
            assert_eq!(sum_weights(&schema, &rows), total);
            rel.verify().unwrap();
        },
    );
}

// ---------------------------------------------------------------------------
// Linearizability across Migrate records.
// ---------------------------------------------------------------------------

/// Recorded histories that span live migrations must stay linearizable:
/// the `Migrate` record is the identity on the abstract state, so the
/// checker must find one total order explaining every read on both sides
/// of each cutover from the same evolving contents.
#[test]
fn lincheck_histories_spanning_migrations() {
    let chain = candidates();
    for round in 0..12u64 {
        let (_, d0, p0) = &chain[(round as usize) % chain.len()];
        let rel = Arc::new(ConcurrentRelation::new(Arc::clone(d0), Arc::clone(p0)).unwrap());
        let schema = rel.schema().clone();
        let rec = HistoryRecorder::new();
        let threads = 3;
        let barrier = Arc::new(Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let rel = rel.clone();
                let schema = schema.clone();
                let rec = rec.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut x = (round + 1) * (tid + 1) * 0x9e37_79b9;
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let cols = schema.column_set(&["dst", "weight"]).unwrap();
                    for _ in 0..5 {
                        let s = (next() % 2) as i64;
                        let dd = (next() % 2) as i64;
                        let w = (next() % 3) as i64;
                        match next() % 3 {
                            0 => rec.record(|| {
                                let r = rel
                                    .insert(&edge(&schema, s, dd), &weight(&schema, w))
                                    .unwrap();
                                (
                                    (),
                                    OpRecord::Insert {
                                        s: edge(&schema, s, dd),
                                        t: weight(&schema, w),
                                        result: r,
                                    },
                                )
                            }),
                            1 => rec.record(|| {
                                let r = rel.remove(&edge(&schema, s, dd)).unwrap();
                                (
                                    (),
                                    OpRecord::Remove {
                                        s: edge(&schema, s, dd),
                                        result: r,
                                    },
                                )
                            }),
                            _ => rec.record(|| {
                                let pat = schema.tuple(&[("src", Value::from(s))]).unwrap();
                                let r = rel.query(&pat, cols).unwrap();
                                (
                                    (),
                                    OpRecord::Query {
                                        s: pat,
                                        cols,
                                        result: r,
                                    },
                                )
                            }),
                        }
                    }
                })
            })
            .collect();
        // Migration thread: two representation swaps interleaved with the
        // recorded operations, themselves recorded as Migrate events.
        {
            let rel = rel.clone();
            let rec = rec.clone();
            let barrier = barrier.clone();
            let chain2 = candidates();
            let handle = std::thread::spawn(move || {
                barrier.wait();
                for i in 1..3 {
                    let (_, d, p) = &chain2[(round as usize + i) % chain2.len()];
                    rec.record(|| {
                        rel.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
                        ((), OpRecord::Migrate)
                    });
                }
            });
            for h in handles {
                h.join().unwrap();
            }
            handle.join().unwrap();
        }
        let history = rec.into_history();
        assert!(
            check_linearizable(rel.schema(), &history),
            "non-linearizable migration history (round {round}): {history:#?}"
        );
        rel.verify().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Snapshot readers pinned across a migration.
// ---------------------------------------------------------------------------

/// A snapshot reader opened before a migration keeps reading the
/// representation it captured — the root swap must neither block on it
/// nor invalidate it — while reads opened after the cutover see the new
/// representation with identical contents.
#[test]
fn snapshot_reader_pinned_across_migration() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let (_, d1, p1) = &chain[1];
    let rel = ConcurrentRelation::new(Arc::clone(d0), Arc::clone(p0)).unwrap();
    let schema = rel.schema().clone();
    for k in 0..16i64 {
        assert!(rel
            .insert(&edge(&schema, k, k), &weight(&schema, k))
            .unwrap());
    }
    rel.read_transaction(|snap| {
        let before = snap.snapshot().unwrap();
        assert_eq!(before.len(), 16);
        // Migrate from another thread while this reader stays open; the
        // fence drains writers only, so this must not deadlock.
        std::thread::scope(|s| {
            s.spawn(|| rel.migrate_to(Arc::clone(d1), Arc::clone(p1)).unwrap())
                .join()
                .unwrap();
        });
        assert_eq!(rel.migration_count(), 1);
        // The open reader still serves the pre-migration representation.
        let after = snap.snapshot().unwrap();
        assert_eq!(before, after, "pinned reader saw the cutover");
    });
    // A fresh read runs against the new representation, same contents.
    let rows = rel.snapshot().unwrap();
    assert_eq!(rows.len(), 16);
    rel.verify().unwrap();
}

/// Sharded flavor: a fan-out snapshot reader spanning the cutover keeps
/// its per-shard pinned representations; no half-migrated mix even though
/// the swap completes underneath it.
#[test]
fn sharded_snapshot_reader_pinned_across_migration() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let (_, d1, p1) = &chain[1];
    let rel = ShardedRelation::new(Arc::clone(d0), Arc::clone(p0), 4).unwrap();
    let schema = rel.schema().clone();
    for k in 0..16i64 {
        assert!(rel
            .insert(&edge(&schema, k, k), &weight(&schema, k))
            .unwrap());
    }
    rel.read_transaction(|snap| {
        let before = snap.snapshot().unwrap();
        assert_eq!(before.len(), 16);
        std::thread::scope(|s| {
            s.spawn(|| rel.migrate_to(Arc::clone(d1), Arc::clone(p1)).unwrap())
                .join()
                .unwrap();
        });
        assert_eq!(rel.migration_count(), 1);
        let after = snap.snapshot().unwrap();
        assert_eq!(before, after, "pinned fan-out reader saw the cutover");
    });
    let rows = rel.snapshot().unwrap();
    assert_eq!(rows.len(), 16);
    rel.verify().unwrap();
}

// ---------------------------------------------------------------------------
// StatsSnapshot agreement with the legacy per-facet accessors.
// ---------------------------------------------------------------------------

/// Runs the shared mixed workload against either flavor through a common
/// closure interface, returning the per-category op counts each thread
/// performed (deterministic, so the unified counters can be checked
/// exactly).
fn mixed_workload<R: Sync>(
    rel: &R,
    schema: &Arc<relc_spec::RelationSchema>,
    ops: &(dyn Fn(&R, &Tuple, &Tuple, u64) + Sync),
) {
    let threads = 4;
    let rounds = 50u64;
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        for tid in 0..threads as u64 {
            let barrier = &barrier;
            let schema = schema.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..rounds {
                    let k = ((tid * rounds + i) % 16) as i64;
                    let key = edge(&schema, k, k);
                    let val = weight(&schema, i as i64);
                    ops(rel, &key, &val, i);
                }
            });
        }
    });
}

/// The unified snapshot's per-relation facets must agree exactly with the
/// legacy accessors once the workload quiesces, and its process-global
/// facets must land inside a monotone bracket taken around the call.
#[test]
fn stats_snapshot_agrees_with_legacy_accessors() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let rel = ConcurrentRelation::new(Arc::clone(d0), Arc::clone(p0)).unwrap();
    let schema = rel.schema().clone();
    mixed_workload(&rel, &schema, &|rel, key, val, i| match i % 5 {
        0 => {
            let _ = rel.insert(key, val).unwrap();
        }
        1 => {
            let _ = rel.remove(key).unwrap();
        }
        2 => {
            let _ = rel
                .query(key, rel.schema().column_set(&["weight"]).unwrap())
                .unwrap();
        }
        3 => {
            let _ = rel.contains(key).unwrap();
        }
        _ => {
            let _ = rel.update(key, val).unwrap();
        }
    });

    // Quiescent now: per-relation facets are exact.
    let v1 = rel.version_stats();
    let r1 = rel.reclamation_stats();
    let s = rel.stats_snapshot();
    let v2 = rel.version_stats();
    let r2 = rel.reclamation_stats();

    assert_eq!(s.locks, rel.lock_stats());
    assert_eq!(s.len, rel.len());
    assert_eq!(s.migrations, rel.migration_count());
    // 4 threads x 50 rounds, i % 5 buckets of 10 each.
    assert_eq!(s.ops.inserts, 40);
    assert_eq!(s.ops.removes, 40);
    assert_eq!(s.ops.queries, 40);
    assert_eq!(s.ops.contains_checks, 40);
    assert_eq!(s.ops.updates, 40);
    assert_eq!(s.ops.total(), 200);
    // Process-global facets: monotone bracket (other tests in this binary
    // may churn the global counters concurrently).
    assert!(v1.created <= s.versions.created && s.versions.created <= v2.created);
    assert!(v1.retired <= s.versions.retired && s.versions.retired <= v2.retired);
    assert!(r1.retired <= s.reclamation.retired && s.reclamation.retired <= r2.retired);
    assert!(r1.reclaimed <= s.reclamation.reclaimed && s.reclamation.reclaimed <= r2.reclaimed);
}

/// Sharded flavor of the same agreement check: the aggregated lock facet
/// must equal the legacy aggregation, and the op counters must count each
/// top-level call once no matter how many shards it fans out to.
#[test]
fn sharded_stats_snapshot_agrees_with_legacy_accessors() {
    let chain = candidates();
    let (_, d0, p0) = &chain[0];
    let rel = ShardedRelation::new(Arc::clone(d0), Arc::clone(p0), 4).unwrap();
    let schema = rel.schema().clone();
    mixed_workload(&rel, &schema, &|rel, key, val, i| match i % 5 {
        0 => {
            let _ = rel.insert(key, val).unwrap();
        }
        1 => {
            let _ = rel.remove(key).unwrap();
        }
        2 => {
            let _ = rel
                .query(key, rel.schema().column_set(&["weight"]).unwrap())
                .unwrap();
        }
        3 => {
            let _ = rel.contains(key).unwrap();
        }
        _ => {
            let _ = rel.update(key, val).unwrap();
        }
    });

    let v1 = rel.version_stats();
    let r1 = rel.reclamation_stats();
    let s = rel.stats_snapshot();
    let v2 = rel.version_stats();
    let r2 = rel.reclamation_stats();

    assert_eq!(s.locks, rel.lock_stats());
    assert_eq!(s.len, rel.len());
    assert_eq!(s.migrations, rel.migration_count());
    assert_eq!(s.ops.inserts, 40);
    assert_eq!(s.ops.removes, 40);
    assert_eq!(s.ops.queries, 40);
    assert_eq!(s.ops.contains_checks, 40);
    assert_eq!(s.ops.updates, 40);
    assert!(v1.created <= s.versions.created && s.versions.created <= v2.created);
    assert!(v1.retired <= s.versions.retired && s.versions.retired <= v2.retired);
    assert!(r1.retired <= s.reclamation.retired && s.reclamation.retired <= r2.retired);
    assert!(r1.reclaimed <= s.reclamation.reclaimed && s.reclamation.reclaimed <= r2.reclaimed);
}

/// Regression: the snapshot-reader registration window against the
/// shard-by-shard cutover. A fan-out reader captures per-shard
/// representation pointers, registers its snapshot, then re-validates
/// the migration epoch and every captured pointer; if that window were
/// racy, a reader opening *during* the swap could pair pre-cutover
/// trees on some shards with post-cutover trees on others and observe a
/// torn cut. Hammer it: readers open continuously while a migrator
/// flips representations and a writer moves weight between shards under
/// a constant-sum invariant — every snapshot must be complete and
/// sum-exact.
#[test]
fn sharded_readers_racing_repeated_cutover_see_single_cut() {
    with_watchdog(120, "sharded cutover race", || {
        let chain = scannable_candidates();
        let (_, d0, p0) = &chain[0];
        let rel = Arc::new(ShardedRelation::new(Arc::clone(d0), Arc::clone(p0), 4).unwrap());
        let schema = rel.schema().clone();
        let n = 16i64;
        for k in 0..n {
            assert!(rel
                .insert(&edge(&schema, k, k), &weight(&schema, k))
                .unwrap());
        }
        let total: i64 = (0..n).sum();
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(4));
        std::thread::scope(|s| {
            // Two reader threads: open a fan-out snapshot per iteration —
            // each open races the cutover's register/re-validate window
            // afresh — and check the cut is whole and sum-constant.
            for _ in 0..2 {
                let rel = Arc::clone(&rel);
                let schema = schema.clone();
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        rel.read_transaction(|snap| {
                            let rows = snap.snapshot().unwrap();
                            assert_eq!(rows.len() as i64, n, "torn cut: lost/duplicated rows");
                            assert_eq!(
                                sum_weights(&schema, &rows),
                                total,
                                "torn cut: snapshot mixes shard states"
                            );
                        });
                    }
                });
            }
            // Writer: cross-shard weight transfers (sum-preserving).
            {
                let rel = Arc::clone(&rel);
                let schema = schema.clone();
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut x = 0x9e37_79b9_u64;
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let wcol = schema.column_set(&["weight"]).unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let a = (next() % n as u64) as i64;
                        let b = (next() % n as u64) as i64;
                        if a == b {
                            continue;
                        }
                        rel.transaction(|tx| {
                            let wa = tx.query(&edge(&schema, a, a), wcol)?[0]
                                .get(schema.column("weight").unwrap())
                                .and_then(|v| v.as_int())
                                .unwrap();
                            let wb = tx.query(&edge(&schema, b, b), wcol)?[0]
                                .get(schema.column("weight").unwrap())
                                .and_then(|v| v.as_int())
                                .unwrap();
                            tx.update(&edge(&schema, a, a), &weight(&schema, wa - 1))?;
                            tx.update(&edge(&schema, b, b), &weight(&schema, wb + 1))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
            // Migrator: a dozen back-to-back cutovers, then stop the run.
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let rel2 = Arc::clone(&rel);
            s.spawn(move || {
                barrier.wait();
                for i in 1..13usize {
                    let (_, d, p) = &chain[i % chain.len()];
                    rel2.migrate_to(Arc::clone(d), Arc::clone(p)).unwrap();
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(rel.migration_count(), 12);
        let rows = rel.snapshot().unwrap();
        assert_eq!(sum_weights(&schema, &rows), total);
        rel.verify().unwrap();
    });
}
