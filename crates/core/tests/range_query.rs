//! Differential validation of `query_range`: the snapshot path, the
//! locked transactional path, and the sharded fan-out must all agree
//! with the sequential oracle's §2-style range semantics — ordered by
//! (range-column value, projection), deduplicated, capped at the
//! limit — across every standard decomposition and lock placement,
//! for hand-picked and randomized intervals alike; and concurrent
//! range reads must observe one consistent snapshot cut.

use std::ops::Bound;
use std::sync::{Arc, Barrier};

use relc::decomp::library::{diamond, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition, ShardedRelation};
use relc_containers::ContainerKind;
use relc_spec::{ColumnSet, OracleRelation, RangePattern, Tuple, Value};

fn graph_decomps() -> Vec<(&'static str, Arc<Decomposition>)> {
    vec![
        (
            "stick(tm,tm)",
            stick(ContainerKind::TreeMap, ContainerKind::TreeMap),
        ),
        (
            "stick(chm,tm)",
            stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "stick(cslm,chm)",
            stick(
                ContainerKind::ConcurrentSkipListMap,
                ContainerKind::ConcurrentHashMap,
            ),
        ),
        (
            "split(chm,tm)",
            split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
        (
            "diamond(chm,tm)",
            diamond(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        ),
    ]
}

fn standard_placements(d: &Arc<Decomposition>) -> Vec<Arc<LockPlacement>> {
    [
        LockPlacement::coarse(d).ok(),
        LockPlacement::fine(d).ok(),
        LockPlacement::striped_root(d, 2).ok(),
        LockPlacement::striped_root(d, 8).ok(),
        LockPlacement::speculative(d, 4).ok(),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn tup(d: &Arc<Decomposition>, cols: &[(&str, i64)]) -> Tuple {
    let pairs: Vec<(&str, Value)> = cols.iter().map(|&(c, v)| (c, Value::from(v))).collect();
    d.schema().tuple(&pairs).unwrap()
}

/// 30 tuples with deliberately colliding values in every column, so
/// ranges overlap duplicates and projections dedup across them.
fn seed_data(d: &Arc<Decomposition>) -> Vec<(Tuple, Tuple)> {
    (0..30i64)
        .map(|k| {
            (
                tup(d, &[("src", k % 5), ("dst", k % 7)]),
                tup(d, &[("weight", (k * 3) % 11)]),
            )
        })
        .collect()
}

/// A battery of interval shapes over one column: both-ends bounds of
/// every openness, rays, unbounded, empty, and limits.
fn range_battery(d: &Arc<Decomposition>, col: &str) -> Vec<RangePattern> {
    let c = d.schema().column(col).unwrap();
    vec![
        RangePattern::all(c),
        RangePattern::all(c).with_limit(3),
        RangePattern::all(c).with_limit(1),
        RangePattern::closed(c, Value::from(2), Value::from(6)),
        RangePattern::half_open(c, Value::from(2), Value::from(6)),
        RangePattern::half_open(c, Value::from(3), Value::from(3)),
        RangePattern::at_least(c, Value::from(4)),
        RangePattern::at_least(c, Value::from(4)).with_limit(4),
        RangePattern::below(c, Value::from(5)),
        RangePattern::new(
            c,
            Bound::Excluded(Value::from(2)),
            Bound::Included(Value::from(8)),
        ),
        RangePattern::closed(c, Value::from(2), Value::from(6)).with_limit(2),
    ]
}

/// Every decomposition × placement must answer every pattern × range ×
/// projection shape exactly like the oracle — snapshot path and locked
/// transactional path alike.
#[test]
fn range_results_match_oracle_across_variants() {
    for (dname, d) in graph_decomps() {
        let oracle = OracleRelation::empty(d.schema().clone());
        for (s, t) in seed_data(&d) {
            let _ = oracle.insert(&s, &t);
        }
        let full = d.schema().columns();
        let projections = vec![
            full,
            d.schema().column_set(&["dst"]).unwrap(),
            d.schema().column_set(&["weight"]).unwrap(),
            d.schema().column_set(&["src", "weight"]).unwrap(),
            ColumnSet::new(),
        ];
        let patterns = vec![
            Tuple::empty(),
            tup(&d, &[("src", 1)]),
            tup(&d, &[("src", 2), ("dst", 3)]),
        ];
        for p in standard_placements(&d) {
            let rel = ConcurrentRelation::new(d.clone(), Arc::clone(&p)).unwrap();
            for (s, t) in seed_data(&d) {
                rel.insert(&s, &t).unwrap();
            }
            for col in ["src", "dst", "weight"] {
                for range in range_battery(&d, col) {
                    for &cols in &projections {
                        for s in &patterns {
                            let got = match rel.query_range(s, &range, cols) {
                                Ok(g) => g,
                                // Speculative edges cannot be scanned; shapes
                                // with no valid chain are skipped, mirroring
                                // `analyze_all`.
                                Err(relc::CoreError::NoValidPlan(_)) => continue,
                                Err(e) => panic!("{dname} under `{}`: {e}", p.name()),
                            };
                            let want = oracle.query_range(s, &range, cols);
                            assert_eq!(
                                got,
                                want,
                                "{dname} under `{}`: range {range} over {col}, \
                                 pattern {s:?}",
                                p.name()
                            );
                        }
                    }
                }
            }
            // Locked path spot-check: same answers under a two-phase
            // transaction, and the transaction sees its own writes.
            let wcol = d.schema().column("weight").unwrap();
            let r = RangePattern::at_least(wcol, Value::from(0));
            if rel.query_range(&Tuple::empty(), &r, full).is_ok() {
                rel.transaction(|tx| {
                    let got = tx.query_range(&Tuple::empty(), &r, full)?;
                    assert_eq!(got, oracle.query_range(&Tuple::empty(), &r, full));
                    Ok(())
                })
                .unwrap();
            }
        }
    }
}

/// Randomized differential: random churn, then random intervals with
/// random openness and limits, compared against the oracle on every
/// round.
#[test]
fn randomized_ranges_match_oracle() {
    for (dname, d) in graph_decomps().into_iter().take(3) {
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), Arc::clone(&p)).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let full = d.schema().columns();
        let cols_list = [
            full,
            d.schema().column_set(&["dst"]).unwrap(),
            d.schema().column_set(&["src", "weight"]).unwrap(),
        ];
        let col_names = ["src", "dst", "weight"];
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..200u64 {
            let src = (next() % 8) as i64;
            let dst = (next() % 8) as i64;
            let w = (next() % 16) as i64;
            let s = tup(&d, &[("src", src), ("dst", dst)]);
            if next() % 4 == 0 {
                let a = rel.remove(&s).unwrap();
                let b = oracle.remove(&s);
                assert_eq!(a, b, "{dname}: remove divergence");
            } else {
                let t = tup(&d, &[("weight", w)]);
                let a = rel.insert(&s, &t).unwrap();
                let b = oracle.insert(&s, &t).unwrap();
                assert_eq!(a, b, "{dname}: insert divergence");
            }
            if round % 5 != 0 {
                continue;
            }
            let c = d.schema().column(col_names[(next() % 3) as usize]).unwrap();
            let lo = (next() % 16) as i64;
            let hi = lo + (next() % 10) as i64 - 2;
            let lo_b = match next() % 3 {
                0 => Bound::Included(Value::from(lo)),
                1 => Bound::Excluded(Value::from(lo)),
                _ => Bound::Unbounded,
            };
            let hi_b = match next() % 3 {
                0 => Bound::Included(Value::from(hi)),
                1 => Bound::Excluded(Value::from(hi)),
                _ => Bound::Unbounded,
            };
            let mut range = RangePattern::new(c, lo_b, hi_b);
            if next() % 2 == 0 {
                range = range.with_limit((next() % 5) as usize + 1);
            }
            let cols = cols_list[(next() % 3) as usize];
            let pattern = if next() % 3 == 0 {
                tup(&d, &[("src", (next() % 8) as i64)])
            } else {
                Tuple::empty()
            };
            let want = oracle.query_range(&pattern, &range, cols);
            let got = rel.query_range(&pattern, &range, cols).unwrap();
            assert_eq!(got, want, "{dname}: range {range}, pattern {pattern:?}");
        }
    }
}

/// Sharded ranges: routed patterns hit one shard, fan-out patterns merge
/// every shard at one snapshot — both must match the oracle, including
/// limits that interact with cross-shard deduplication (the same
/// projection reachable from several shards at different range values).
#[test]
fn sharded_ranges_match_oracle() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let rel = ShardedRelation::new(d.clone(), Arc::clone(&p), 4).unwrap();
    let oracle = OracleRelation::empty(d.schema().clone());
    for (s, t) in seed_data(&d) {
        rel.insert(&s, &t).unwrap();
        let _ = oracle.insert(&s, &t);
    }
    let full = d.schema().columns();
    let projections = vec![
        full,
        d.schema().column_set(&["dst"]).unwrap(),
        // {src}: many (src, dst) pairs share a src, so the same
        // projection surfaces from several shards — the fan-out merge
        // must dedup at the smallest range value, not per shard.
        d.schema().column_set(&["src"]).unwrap(),
    ];
    let patterns = vec![
        Tuple::empty(),
        tup(&d, &[("src", 1)]),
        // Binds the full routing key: served by one shard.
        tup(&d, &[("src", 2), ("dst", 3)]),
    ];
    for col in ["src", "dst", "weight"] {
        for range in range_battery(&d, col) {
            for &cols in &projections {
                for s in &patterns {
                    let want = oracle.query_range(s, &range, cols);
                    let got = rel.query_range(s, &range, cols).unwrap();
                    assert_eq!(
                        got, want,
                        "sharded: range {range} over {col}, pattern {s:?}"
                    );
                }
            }
        }
    }
    // Locked sharded path: same answers, serializable across shards.
    let wcol = d.schema().column("weight").unwrap();
    let r = RangePattern::closed(wcol, Value::from(2), Value::from(9)).with_limit(5);
    rel.transaction(|tx| {
        let got = tx.query_range(&Tuple::empty(), &r, full)?;
        assert_eq!(got, oracle.query_range(&Tuple::empty(), &r, full));
        Ok(())
    })
    .unwrap();
}

/// Concurrent range reads observe one consistent cut: every writer
/// transaction inserts a *pair* of tuples atomically, so any range read
/// over the whole window must count an even number of results — on the
/// single relation and across shards.
#[test]
fn range_reads_are_one_snapshot_cut() {
    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let full = d.schema().columns();
    let wcol = d.schema().column("weight").unwrap();
    let range = RangePattern::all(wcol);

    let rel = Arc::new(ConcurrentRelation::new(d.clone(), Arc::clone(&p)).unwrap());
    let barrier = Arc::new(Barrier::new(3));
    let writer = {
        let rel = Arc::clone(&rel);
        let d = d.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for k in 0..60i64 {
                rel.transaction(|tx| {
                    tx.insert(
                        &tup(&d, &[("src", 2 * k), ("dst", 2 * k)]),
                        &tup(&d, &[("weight", k % 7)]),
                    )?;
                    tx.insert(
                        &tup(&d, &[("src", 2 * k + 1), ("dst", 2 * k + 1)]),
                        &tup(&d, &[("weight", k % 7)]),
                    )?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let rel = Arc::clone(&rel);
            let range = range.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..150 {
                    let got = rel.query_range(&Tuple::empty(), &range, full).unwrap();
                    assert_eq!(got.len() % 2, 0, "torn range read: {} results", got.len());
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Sharded: the pair straddles shards, so a torn fan-out would be
    // visible unless all shards are read at one registered timestamp.
    let srel = Arc::new(ShardedRelation::new(d.clone(), p, 4).unwrap());
    let barrier = Arc::new(Barrier::new(3));
    let writer = {
        let srel = Arc::clone(&srel);
        let d = d.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for k in 0..60i64 {
                srel.transaction(|tx| {
                    tx.insert(
                        &tup(&d, &[("src", 2 * k), ("dst", 2 * k)]),
                        &tup(&d, &[("weight", k % 7)]),
                    )?;
                    tx.insert(
                        &tup(&d, &[("src", 2 * k + 1), ("dst", 2 * k + 1)]),
                        &tup(&d, &[("weight", k % 7)]),
                    )?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let srel = Arc::clone(&srel);
            let range = range.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..150 {
                    let got = srel.query_range(&Tuple::empty(), &range, full).unwrap();
                    assert_eq!(
                        got.len() % 2,
                        0,
                        "torn cross-shard range read: {} results",
                        got.len()
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// Small mixed histories of writers and range readers must be
/// linearizable under the §2 range semantics (Wing–Gong with the
/// `Range` record).
#[test]
fn concurrent_range_histories_linearize() {
    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::fine(&d).unwrap();
    let wcol = d.schema().column("weight").unwrap();
    for round in 0..20u64 {
        let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
        let rec = HistoryRecorder::new();
        let threads = 3usize;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as u64)
            .map(|tid| {
                let rel = Arc::clone(&rel);
                let d = d.clone();
                let rec = Arc::clone(&rec);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut x = (round + 1) * (tid + 2) * 0x9e37_79b9;
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    for _ in 0..4 {
                        let sv = (next() % 2) as i64;
                        let dv = (next() % 2) as i64;
                        let wv = (next() % 3) as i64;
                        if tid == 0 {
                            let range = RangePattern::closed(wcol, Value::from(0), Value::from(1))
                                .with_limit(2);
                            let cols = d.schema().column_set(&["src", "dst"]).unwrap();
                            rec.record(|| {
                                let result =
                                    rel.query_range(&Tuple::empty(), &range, cols).unwrap();
                                (
                                    (),
                                    OpRecord::Range {
                                        s: Tuple::empty(),
                                        range: range.clone(),
                                        cols,
                                        result,
                                    },
                                )
                            });
                        } else if next() % 3 == 0 {
                            let s = tup(&d, &[("src", sv), ("dst", dv)]);
                            rec.record(|| {
                                let result = rel.remove(&s).unwrap();
                                (
                                    (),
                                    OpRecord::Remove {
                                        s: s.clone(),
                                        result,
                                    },
                                )
                            });
                        } else {
                            let s = tup(&d, &[("src", sv), ("dst", dv)]);
                            let t = tup(&d, &[("weight", wv)]);
                            rec.record(|| {
                                let result = rel.insert(&s, &t).unwrap();
                                (
                                    (),
                                    OpRecord::Insert {
                                        s: s.clone(),
                                        t: t.clone(),
                                        result,
                                    },
                                )
                            });
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = rec.into_history();
        assert!(
            check_linearizable(d.schema(), &history),
            "round {round}: non-linearizable range history: {history:#?}"
        );
    }
}

/// Per-relation retirement (regression): an idle snapshot reader held on
/// relation A must not pin relation B's version chains — B's churn
/// reclaims back to its baseline footprint while the A-reader stays
/// open. A reader on B itself still pins, and its release lets the next
/// commits sweep the backlog.
#[test]
fn held_reader_on_other_relation_does_not_pin_retirement() {
    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let a = ConcurrentRelation::new(d.clone(), Arc::clone(&p)).unwrap();
    let b = ConcurrentRelation::new(d.clone(), Arc::clone(&p)).unwrap();
    a.insert(
        &tup(&d, &[("src", 1), ("dst", 1)]),
        &tup(&d, &[("weight", 0)]),
    )
    .unwrap();
    b.insert(
        &tup(&d, &[("src", 1), ("dst", 1)]),
        &tup(&d, &[("weight", 0)]),
    )
    .unwrap();
    let baseline = b.version_footprint();
    a.read_transaction(|snap| {
        let pinned_a = snap.snapshot().unwrap();
        // Churn B hard while the A-reader stays registered. With one
        // process-global registry this pinned every superseded version
        // of B (footprint ≈ baseline + 300); with per-relation
        // registries each commit retires B back down.
        for i in 1..=300i64 {
            b.update(
                &tup(&d, &[("src", 1), ("dst", 1)]),
                &tup(&d, &[("weight", i)]),
            )
            .unwrap();
        }
        let churned = b.version_footprint();
        assert!(
            churned <= baseline + 8,
            "idle reader on A pinned B's retirement: footprint {churned} \
             vs baseline {baseline}"
        );
        // Converse: a reader registered on B itself does pin B.
        let g = b.snapshots().register(relc_locks::commit_clock());
        for i in 301..=360i64 {
            b.update(
                &tup(&d, &[("src", 1), ("dst", 1)]),
                &tup(&d, &[("weight", i)]),
            )
            .unwrap();
        }
        let pinned = b.version_footprint();
        assert!(
            pinned >= baseline + 50,
            "reader on B must pin B's versions: footprint {pinned} \
             vs baseline {baseline}"
        );
        drop(g);
        // Released: the next commits sweep the backlog back down.
        for i in 361..=364i64 {
            b.update(
                &tup(&d, &[("src", 1), ("dst", 1)]),
                &tup(&d, &[("weight", i)]),
            )
            .unwrap();
        }
        let reclaimed = b.version_footprint();
        assert!(
            reclaimed <= baseline + 8,
            "B's backlog not reclaimed after reader release: footprint \
             {reclaimed} vs baseline {baseline}"
        );
        // The A-reader still observes its pinned state.
        assert_eq!(snap.snapshot().unwrap(), pinned_a);
    });
}
