//! Property tests over *randomly generated decomposition structures*: build
//! a trie of random ordered partitions of the column set (always adequate by
//! construction), pick random containers and placements, and differentially
//! test the synthesized relation against the §2 oracle.
//!
//! This explores decomposition shapes far beyond the paper's three (deep
//! chains, wide fans, shared suffix columns, multi-column edges).

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, RelationSchema, Tuple, Value};

const COLS: [&str; 4] = ["a", "b", "c", "d"];

fn schema() -> Arc<RelationSchema> {
    // FD: a → b, c, d — so {a} is a key (needed for generic removals) and
    // edges binding later columns under a fixed `a` are singletons.
    RelationSchema::builder()
        .column("a")
        .column("b")
        .column("c")
        .column("d")
        .fd(&["a"], &["b", "c", "d"])
        .build()
}

/// An ordered partition of {0,1,2,3} into 1..=4 groups, e.g. [[2],[0,1],[3]].
fn partition_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    // A permutation plus group boundaries.
    (Just([0usize, 1, 2, 3]), 0u8..27).prop_perturb(|(mut cols, splits), mut rng| {
        use proptest::test_runner::RngAlgorithm;
        let _ = RngAlgorithm::default();
        // Fisher-Yates with the proptest rng.
        for i in (1..cols.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            cols.swap(i, j);
        }
        // splits encodes boundaries after positions 0,1,2 (3 bits).
        let mut groups: Vec<Vec<usize>> = vec![vec![cols[0]]];
        for (pos, &c) in cols.iter().enumerate().skip(1) {
            if splits & (1 << (pos - 1)) != 0 {
                groups.push(vec![c]);
            } else {
                groups.last_mut().expect("nonempty").push(c);
            }
        }
        groups
    })
}

fn container_strategy() -> impl Strategy<Value = ContainerKind> {
    prop_oneof![
        Just(ContainerKind::HashMap),
        Just(ContainerKind::TreeMap),
        Just(ContainerKind::ConcurrentHashMap),
        Just(ContainerKind::ConcurrentSkipListMap),
        Just(ContainerKind::CopyOnWriteArrayList),
    ]
}

/// Builds a trie decomposition from 1..=3 ordered partitions: branches with
/// common group prefixes share nodes, so every branch covers all columns —
/// adequate by construction.
fn build_decomposition(
    partitions: &[Vec<Vec<usize>>],
    containers: &[ContainerKind],
) -> Arc<Decomposition> {
    let schema = schema();
    let mut b = Decomposition::builder(schema.clone());
    // Trie keyed by the group-prefix path.
    let mut trie: BTreeMap<Vec<Vec<usize>>, relc::NodeId> = BTreeMap::new();
    let mut edges_made: Vec<(relc::NodeId, relc::NodeId)> = Vec::new();
    let mut ci = 0usize;
    for part in partitions {
        let mut prefix: Vec<Vec<usize>> = Vec::new();
        let mut cur = b.root();
        for group in part {
            prefix.push(group.clone());
            let next = match trie.get(&prefix) {
                Some(&n) => n,
                None => {
                    let name = format!(
                        "n{}",
                        prefix
                            .iter()
                            .map(|g| g.iter().map(|c| COLS[*c]).collect::<String>())
                            .collect::<Vec<_>>()
                            .join("_")
                    );
                    // Trie prefixes are unique, but two *different* prefixes
                    // can collide in name only if equal — impossible.
                    let n = b.node(&name);
                    trie.insert(prefix.clone(), n);
                    n
                }
            };
            if !edges_made.contains(&(cur, next)) {
                let cols: Vec<&str> = group.iter().map(|c| COLS[*c]).collect();
                let kind = containers[ci % containers.len()];
                ci += 1;
                b.edge(cur, next, &cols, kind).expect("known columns");
                edges_made.push((cur, next));
            }
            cur = next;
        }
    }
    b.build().expect("trie decompositions are adequate")
}

fn tuple4(schema: &RelationSchema, a: i64, bb: i64, c: i64, d: i64) -> Tuple {
    schema
        .tuple(&[
            ("a", Value::from(a)),
            ("b", Value::from(bb)),
            ("c", Value::from(c)),
            ("d", Value::from(d)),
        ])
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn random_batches_match_sequential_oracle_fold(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
        placement_pick in 0u8..3,
        batches in proptest::collection::vec(
            (proptest::collection::vec((0i64..6, 0i64..3, 0i64..3, 0i64..3), 1..8), 0u8..4),
            1..12,
        ),
    ) {
        let d = build_decomposition(&partitions, &containers);
        let p = match placement_pick {
            0 => LockPlacement::coarse(&d).ok(),
            1 => LockPlacement::fine(&d).ok(),
            _ => LockPlacement::striped_root(&d, 4).ok(),
        };
        let Some(p) = p else { return Ok(()); }; // container-incompatible
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let schema = d.schema().clone();

        for (batch, which) in batches {
            match which {
                // insert_all: per-row results must equal the sequential
                // §2 put-if-absent fold (duplicates inside batches are
                // frequent with this tiny key range).
                0 | 1 => {
                    let rows: Vec<(Tuple, Tuple)> = batch
                        .iter()
                        .map(|&(a, bb, c, dd)| {
                            (
                                schema.tuple(&[("a", Value::from(a))]).unwrap(),
                                schema
                                    .tuple(&[
                                        ("b", Value::from(bb)),
                                        ("c", Value::from(c)),
                                        ("d", Value::from(dd)),
                                    ])
                                    .unwrap(),
                            )
                        })
                        .collect();
                    let got = rel.insert_all(&rows).unwrap();
                    let want: Vec<bool> = rows
                        .iter()
                        .map(|(s, t)| oracle.insert(s, t).unwrap())
                        .collect();
                    prop_assert_eq!(got, want);
                }
                // remove_all: per-key outcomes must equal the sequential
                // removal fold.
                2 => {
                    let keys: Vec<Tuple> = batch
                        .iter()
                        .map(|&(a, _, _, _)| schema.tuple(&[("a", Value::from(a))]).unwrap())
                        .collect();
                    let got = rel.remove_all(&keys).unwrap();
                    let want: Vec<bool> = keys.iter().map(|k| oracle.remove(k) == 1).collect();
                    prop_assert_eq!(got, want);
                }
                // Poisoned batch: valid rows followed by a row whose s/t
                // domains overlap — the whole batch must abort and the
                // relation must be bit-identical to its pre-batch state.
                _ => {
                    let before = rel.verify().map_err(TestCaseError::fail)?;
                    let mut rows: Vec<(Tuple, Tuple)> = batch
                        .iter()
                        .map(|&(a, bb, c, dd)| {
                            (
                                schema.tuple(&[("a", Value::from(a))]).unwrap(),
                                schema
                                    .tuple(&[
                                        ("b", Value::from(bb)),
                                        ("c", Value::from(c)),
                                        ("d", Value::from(dd)),
                                    ])
                                    .unwrap(),
                            )
                        })
                        .collect();
                    rows.push((
                        schema
                            .tuple(&[("a", Value::from(0)), ("b", Value::from(0))])
                            .unwrap(),
                        schema
                            .tuple(&[
                                ("b", Value::from(1)),
                                ("c", Value::from(1)),
                                ("d", Value::from(1)),
                            ])
                            .unwrap(),
                    ));
                    prop_assert!(rel.insert_all(&rows).is_err());
                    let after = rel.verify().map_err(TestCaseError::fail)?;
                    prop_assert_eq!(before, after, "poisoned batch must be a no-op");
                }
            }
            prop_assert_eq!(rel.len(), oracle.len());
        }
        let final_rel = rel.verify().map_err(TestCaseError::fail)?;
        let final_oracle: std::collections::BTreeSet<Tuple> =
            oracle.snapshot().into_iter().collect();
        prop_assert_eq!(final_rel, final_oracle);

        // Drain through remove_all in one batch: everything must go.
        let all_keys: Vec<Tuple> = oracle.snapshot();
        let drained = rel.remove_all(&all_keys).unwrap();
        prop_assert!(drained.iter().all(|&b| b), "every drained key existed");
        prop_assert_eq!(drained.len(), all_keys.len());
        prop_assert!(rel.verify().map_err(TestCaseError::fail)?.is_empty());
    }

    #[test]
    fn random_trie_decompositions_match_oracle(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
        placement_pick in 0u8..3,
        ops in proptest::collection::vec((0i64..5, 0i64..3, 0i64..3, 0i64..3, 0u8..4), 1..60),
    ) {
        let d = build_decomposition(&partitions, &containers);
        let p = match placement_pick {
            0 => LockPlacement::coarse(&d).ok(),
            1 => LockPlacement::fine(&d).ok(),
            _ => LockPlacement::striped_root(&d, 4).ok(),
        };
        let Some(p) = p else { return Ok(()); }; // container-incompatible
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let schema = d.schema().clone();

        for (a, bb, c, dd, which) in ops {
            match which {
                0 | 1 => {
                    // Insert keyed on `a` (the FD key).
                    let s = schema.tuple(&[("a", Value::from(a))]).unwrap();
                    let t = schema
                        .tuple(&[
                            ("b", Value::from(bb)),
                            ("c", Value::from(c)),
                            ("d", Value::from(dd)),
                        ])
                        .unwrap();
                    let got = rel.insert(&s, &t).unwrap();
                    let want = oracle.insert(&s, &t).unwrap();
                    prop_assert_eq!(got, want);
                }
                2 => {
                    let s = schema.tuple(&[("a", Value::from(a))]).unwrap();
                    let got = rel.remove(&s).unwrap();
                    let want = oracle.remove(&s);
                    prop_assert_eq!(got, want);
                }
                _ => {
                    // Query on a random single column with full projection.
                    let col = ["a", "b", "c", "d"][(a.unsigned_abs() as usize) % 4];
                    let pat = schema.tuple(&[(col, Value::from(bb))]).unwrap();
                    let got = rel.query(&pat, schema.columns()).unwrap();
                    prop_assert_eq!(got, oracle.query(&pat, schema.columns()));
                }
            }
        }
        let final_rel = rel.verify().map_err(TestCaseError::fail)?;
        let final_oracle: std::collections::BTreeSet<Tuple> =
            oracle.snapshot().into_iter().collect();
        prop_assert_eq!(final_rel, final_oracle);

        // Full-tuple removal drains the relation through every branch.
        for t in oracle.snapshot() {
            prop_assert_eq!(rel.remove(&t).unwrap(), 1);
        }
        prop_assert!(rel.verify().map_err(TestCaseError::fail)?.is_empty());
        let _ = tuple4; // helper retained for debugging sessions
    }
}
