//! Batched operation tests: `insert_all` / `remove_all` must be the
//! *atomic, amortized* form of the sequential per-op fold — differentially
//! checked against per-op loops and the §2 oracle, including duplicate
//! keys inside one batch, whole-batch aborts on poisoned rows, forced
//! mid-batch restarts, and contention against single-op writers.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, CoreError, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, SpecError, Tuple, Value};

fn variants() -> Vec<(String, Arc<ConcurrentRelation>)> {
    let mut out: Vec<(String, Arc<ConcurrentRelation>)> = Vec::new();
    let decomps: Vec<Arc<Decomposition>> = vec![
        stick(ContainerKind::HashMap, ContainerKind::TreeMap),
        stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        split(ContainerKind::ConcurrentSkipListMap, ContainerKind::TreeMap),
        diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
        diamond(
            ContainerKind::ConcurrentHashMap,
            ContainerKind::CopyOnWriteArrayList,
        ),
    ];
    for d in decomps {
        for p in [
            LockPlacement::coarse(&d).ok(),
            LockPlacement::fine(&d).ok(),
            LockPlacement::striped_root(&d, 16).ok(),
            LockPlacement::speculative(&d, 8).ok(),
        ]
        .into_iter()
        .flatten()
        {
            let name = format!("{} / {}", d.describe(), p.name());
            out.push((
                name,
                Arc::new(ConcurrentRelation::new(d.clone(), p).unwrap()),
            ));
        }
    }
    out
}

fn edge(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

fn with_watchdog(secs: u64, name: String, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {name} did not finish (deadlock?)"));
}

/// `insert_all` / `remove_all` must observably equal the sequential per-op
/// fold: differential against a per-op-driven twin relation *and* the §2
/// oracle, over pseudo-random batches with duplicate keys inside batches.
#[test]
fn batch_ops_match_per_op_fold_across_variants() {
    for (name, rel) in variants() {
        // The twin is driven per-op on the same decomposition/placement.
        let twin =
            ConcurrentRelation::new(rel.decomposition().clone(), rel.placement().clone()).unwrap();
        let oracle = OracleRelation::empty(rel.schema().clone());
        let mut x = 0xfeed_5eed_u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..60 {
            let len = (step() % 6) as usize + 1;
            if step() % 3 == 0 {
                let keys: Vec<Tuple> = (0..len)
                    .map(|_| edge(&rel, (step() % 5) as i64, (step() % 5) as i64))
                    .collect();
                let got = rel.remove_all(&keys).unwrap();
                let mut want_twin = Vec::with_capacity(keys.len());
                let mut want_oracle = Vec::with_capacity(keys.len());
                for k in &keys {
                    want_twin.push(twin.remove(k).unwrap() == 1);
                    want_oracle.push(oracle.remove(k) == 1);
                }
                assert_eq!(
                    got, want_twin,
                    "remove_all vs twin on {name} (round {round})"
                );
                assert_eq!(got, want_oracle, "remove_all vs oracle on {name}");
            } else {
                // Small key range: duplicates inside one batch are common.
                let rows: Vec<(Tuple, Tuple)> = (0..len)
                    .map(|_| {
                        (
                            edge(&rel, (step() % 5) as i64, (step() % 5) as i64),
                            weight(&rel, (step() % 4) as i64),
                        )
                    })
                    .collect();
                let got = rel.insert_all(&rows).unwrap();
                let want_twin: Vec<bool> = rows
                    .iter()
                    .map(|(s, t)| twin.insert(s, t).unwrap())
                    .collect();
                let want_oracle: Vec<bool> = rows
                    .iter()
                    .map(|(s, t)| oracle.insert(s, t).unwrap())
                    .collect();
                assert_eq!(
                    got, want_twin,
                    "insert_all vs twin on {name} (round {round})"
                );
                assert_eq!(got, want_oracle, "insert_all vs oracle on {name}");
            }
            assert_eq!(rel.len(), oracle.len(), "len on {name}");
        }
        let got = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let twin_got = twin.verify().unwrap_or_else(|e| panic!("{name} twin: {e}"));
        let want: std::collections::BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
        assert_eq!(got, want, "final contents on {name}");
        assert_eq!(twin_got, want, "twin final contents on {name}");
    }
}

/// Duplicate patterns inside one batch: the first occurrence wins, later
/// ones report `false` — and only one tuple lands.
#[test]
fn duplicate_keys_in_one_batch_first_wins() {
    for (name, rel) in variants() {
        let rows = vec![
            (edge(&rel, 1, 2), weight(&rel, 10)),
            (edge(&rel, 3, 4), weight(&rel, 20)),
            (edge(&rel, 1, 2), weight(&rel, 99)),
            (edge(&rel, 1, 2), weight(&rel, 98)),
        ];
        let results = rel.insert_all(&rows).unwrap();
        assert_eq!(results, vec![true, true, false, false], "{name}");
        assert_eq!(rel.len(), 2, "{name}");
        let wcol = rel.schema().column("weight").unwrap();
        let wc = rel.schema().column_set(&["weight"]).unwrap();
        let got = rel.query(&edge(&rel, 1, 2), wc).unwrap();
        assert_eq!(got.len(), 1, "{name}");
        assert_eq!(
            got[0].get(wcol),
            Some(&Value::from(10)),
            "{name}: the first row's payload must win"
        );
        // Duplicate keys in a removal batch remove once, and the per-key
        // outcomes say which occurrence won (and which keys were absent).
        let removed = rel
            .remove_all(&[
                edge(&rel, 1, 2),
                edge(&rel, 1, 2),
                edge(&rel, 3, 4),
                edge(&rel, 7, 7),
            ])
            .unwrap();
        assert_eq!(removed, vec![true, false, true, false], "{name}");
        assert!(rel.is_empty(), "{name}");
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// A poisoned row anywhere in the batch aborts the whole batch before any
/// effect: the relation is bit-identical to its pre-batch state.
#[test]
fn poisoned_batch_aborts_whole_batch() {
    for (name, rel) in variants() {
        rel.insert(&edge(&rel, 9, 9), &weight(&rel, 1)).unwrap();
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let len_before = rel.len();
        // Overlapping s/t domains: an FD-shape violation caught by
        // validation — but only in the *last* row, after valid ones.
        let poison_t = rel
            .schema()
            .tuple(&[("dst", Value::from(2)), ("weight", Value::from(3))])
            .unwrap();
        let rows = vec![
            (edge(&rel, 1, 2), weight(&rel, 10)),
            (edge(&rel, 3, 4), weight(&rel, 20)),
            (edge(&rel, 5, 6), poison_t),
        ];
        let err = rel.insert_all(&rows).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Spec(SpecError::OverlappingInsertDomains { .. })
            ),
            "{name}: {err}"
        );
        // Partial tuples poison the batch the same way.
        let partial = vec![
            (edge(&rel, 1, 2), weight(&rel, 10)),
            (
                rel.schema().tuple(&[("src", Value::from(5))]).unwrap(),
                weight(&rel, 3),
            ),
        ];
        assert!(matches!(
            rel.insert_all(&partial).unwrap_err(),
            CoreError::Spec(SpecError::NotAValuation { .. })
        ));
        // A non-key pattern poisons a removal batch.
        let bad_key = rel.schema().tuple(&[("dst", Value::from(2))]).unwrap();
        assert!(matches!(
            rel.remove_all(&[edge(&rel, 9, 9), bad_key]).unwrap_err(),
            CoreError::Spec(SpecError::RemoveNotByKey { .. })
        ));
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: poisoned batches must be no-ops");
        assert_eq!(rel.len(), len_before, "{name}");
    }
}

/// An abort *after* a batch inside a transaction rolls back every row of
/// the batch — the batch's undo segment is replayed as one unit.
#[test]
fn aborted_transaction_rolls_back_whole_batch() {
    for (name, rel) in variants() {
        rel.insert(&edge(&rel, 0, 0), &weight(&rel, 5)).unwrap();
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let err = rel
            .transaction(|tx| -> Result<(), relc::TxnError> {
                let rows = vec![
                    (edge(&rel, 1, 1), weight(&rel, 1)),
                    (edge(&rel, 2, 2), weight(&rel, 2)),
                    (edge(&rel, 3, 3), weight(&rel, 3)),
                ];
                assert_eq!(tx.insert_all(&rows)?, vec![true, true, true]);
                // Read-your-writes: the batch is visible inside the txn.
                assert!(tx.contains(&edge(&rel, 2, 2))?);
                assert_eq!(
                    tx.remove_all(&[edge(&rel, 0, 0), edge(&rel, 1, 1)])?,
                    vec![true, true]
                );
                Err(tx.abort("poisoned"))
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::TransactionAborted(_)), "{name}");
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: rollback must be exact");
        assert_eq!(rel.len(), 1, "{name}");
    }
}

/// A shared→exclusive upgrade *after* a query forces the whole closure —
/// including an already-applied batch — to roll back and re-run; the
/// committed state is the second run's.
#[test]
fn forced_mid_transaction_restart_replays_batch() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
    let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
    let runs = std::cell::Cell::new(0u32);
    let results = rel
        .transaction(|tx| {
            runs.set(runs.get() + 1);
            // Shared locks first...
            let succ = tx.query(&d.schema().tuple(&[("src", Value::from(1))]).unwrap(), dw)?;
            assert!(succ.is_empty() || runs.get() > 1);
            // ...then a batch needing exclusive access: first run restarts.
            tx.insert_all(&[
                (
                    d.schema()
                        .tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])
                        .unwrap(),
                    d.schema().tuple(&[("weight", Value::from(7))]).unwrap(),
                ),
                (
                    d.schema()
                        .tuple(&[("src", Value::from(1)), ("dst", Value::from(3))])
                        .unwrap(),
                    d.schema().tuple(&[("weight", Value::from(8))]).unwrap(),
                ),
            ])
        })
        .unwrap();
    assert_eq!(results, vec![true, true]);
    assert_eq!(runs.get(), 2, "the upgrade must force exactly one re-run");
    assert_eq!(rel.len(), 2);
    rel.verify().unwrap();
}

/// Batch writers racing single-op writers and readers over a small shared
/// keyspace: put-if-absent winners stay unique per key, rollback/restart
/// machinery keeps the structure sound, and everything terminates.
#[test]
fn batch_contention_stress_against_single_op_writers() {
    for (name, rel) in variants() {
        let rel2 = rel.clone();
        with_watchdog(120, name.clone(), move || {
            let threads = 8usize;
            let keyspace = 6i64;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        let dw = rel.schema().column_set(&["dst", "weight"]).unwrap();
                        for _ in 0..60 {
                            let mk = |n: &mut dyn FnMut() -> u64| {
                                (
                                    ((*n)() % keyspace as u64) as i64,
                                    ((*n)() % keyspace as u64) as i64,
                                )
                            };
                            match tid % 2 {
                                0 => {
                                    // Batch writer: insert a 4-row batch,
                                    // then remove a (different) 4-key batch.
                                    let rows: Vec<(Tuple, Tuple)> = (0..4)
                                        .map(|_| {
                                            let (a, b) = mk(&mut next);
                                            (edge(&rel, a, b), weight(&rel, (next() % 8) as i64))
                                        })
                                        .collect();
                                    rel.insert_all(&rows).unwrap();
                                    let keys: Vec<Tuple> = (0..4)
                                        .map(|_| {
                                            let (a, b) = mk(&mut next);
                                            edge(&rel, a, b)
                                        })
                                        .collect();
                                    rel.remove_all(&keys).unwrap();
                                }
                                _ => {
                                    // Single-op writer/reader.
                                    let (a, b) = mk(&mut next);
                                    let _ =
                                        rel.insert(&edge(&rel, a, b), &weight(&rel, 1)).unwrap();
                                    let pat =
                                        rel.schema().tuple(&[("src", Value::from(a))]).unwrap();
                                    match rel.query(&pat, dw) {
                                        Ok(_) | Err(CoreError::NoValidPlan(_)) => {}
                                        Err(e) => panic!("{e}"),
                                    }
                                    let _ = rel.remove(&edge(&rel, a, b)).unwrap();
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // Quiescent: structurally perfect, and every surviving key unique.
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Regression (found by the batch tests, but reachable with single ops):
/// a mid-transaction insert materializes fresh node instances; a later
/// *shared* read of the same transaction traverses them; rollback's
/// compensating unlink then needs those locks exclusively. The insert
/// must pre-acquire fresh hosts' locks exclusively (they are unpublished,
/// so the acquisition can never fail) or rollback panics on the upgrade.
#[test]
fn insert_then_shared_read_then_abort_rolls_back() {
    for (name, rel) in variants() {
        let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let err = rel
            .transaction(|tx| -> Result<(), relc::TxnError> {
                assert!(tx.insert(&edge(&rel, 4, 5), &weight(&rel, 1))?);
                // Shared locks over the freshly built subtree.
                assert!(tx.contains(&edge(&rel, 4, 5))?);
                Err(tx.abort("change of plans"))
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::TransactionAborted(_)), "{name}");
        let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(after, before, "{name}: rollback must be exact");
    }
}

/// Mixed-shape batches fall back to the per-row path but keep the exact
/// fold semantics (a full-tuple pattern can collide with an earlier
/// key-pattern row's tuple).
#[test]
fn mixed_shape_batches_keep_fold_semantics() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
    let full = edge(&rel, 1, 2).union(&weight(&rel, 10)).unwrap();
    let rows = vec![
        (edge(&rel, 1, 2), weight(&rel, 10)),
        // Full-tuple pattern, empty payload: extends the first row's tuple.
        (full, Tuple::empty()),
        (edge(&rel, 3, 4), weight(&rel, 20)),
    ];
    assert_eq!(rel.insert_all(&rows).unwrap(), vec![true, false, true]);
    assert_eq!(rel.len(), 2);
    // Mixed-shape removals: full tuple key and (src, dst) key.
    let removed = rel
        .remove_all(&[
            edge(&rel, 3, 4).union(&weight(&rel, 20)).unwrap(),
            edge(&rel, 1, 2),
        ])
        .unwrap();
    assert_eq!(removed, vec![true, true]);
    assert!(rel.is_empty());
    rel.verify().unwrap();
}

/// Empty batches are no-ops.
#[test]
fn empty_batches_are_noops() {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::fine(&d).unwrap();
    let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
    assert_eq!(rel.insert_all(&[]).unwrap(), Vec::<bool>::new());
    assert_eq!(rel.remove_all(&[]).unwrap(), Vec::<bool>::new());
    assert!(rel.is_empty());
    rel.verify().unwrap();
}
