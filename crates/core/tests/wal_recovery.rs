//! Durability battery: kill-and-reopen crash simulation for the
//! write-ahead log. Crashes are simulated at the file level — run a
//! committed workload against a durable relation (recording a
//! per-commit oracle), copy the log directory, mutilate the copy the
//! way a crash would (truncate the log at arbitrary byte offsets, leave
//! a checkpoint temp file behind, rename a checkpoint without
//! truncating the log, drop a cross-shard commit marker), then recover
//! a fresh relation from the copy and check it equals the
//! committed-prefix oracle.
//!
//! Also covered: recovery idempotence (replay-twice is a no-op keyed on
//! the replay floor), the commit clock resuming strictly above the
//! highest replayed stamp, and the group-commit acceptance bound
//! (>= 2 commits per fsync under a concurrent commit workload).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

use relc::decomp::library::split;
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, ShardedRelation, WalOptions};
use relc_containers::ContainerKind;
use relc_spec::{Tuple, Value};

/// The commit clock is process-global; every test here serializes so
/// clock-resumption assertions are not perturbed by parallel tests.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Framed size of a cross-shard commit marker record:
/// magic(1) + kind(1) + len(4) + checksum(8) + ts payload(8).
const MARKER_FRAME_LEN: u64 = 22;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relc-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn graph() -> (
    Arc<relc::Decomposition>,
    Arc<relc::placement::LockPlacement>,
) {
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let p = LockPlacement::fine(&d).unwrap();
    (d, p)
}

fn key(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn payload(rel: &ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

/// Full contents as a set of complete rows.
fn dump(rel: &ConcurrentRelation) -> HashSet<Tuple> {
    let all = rel.schema().columns();
    rel.query(&Tuple::empty(), all)
        .unwrap()
        .into_iter()
        .collect()
}

fn dump_sharded(rel: &ShardedRelation) -> HashSet<Tuple> {
    let all = rel.schema().columns();
    rel.query(&Tuple::empty(), all)
        .unwrap()
        .into_iter()
        .collect()
}

/// Materializes a `(src, dst) -> weight` oracle into full rows.
fn oracle_rows(rel: &ConcurrentRelation, m: &HashMap<(i64, i64), i64>) -> HashSet<Tuple> {
    m.iter()
        .map(|(&(s, d), &w)| {
            rel.schema()
                .tuple(&[
                    ("src", Value::from(s)),
                    ("dst", Value::from(d)),
                    ("weight", Value::from(w)),
                ])
                .unwrap()
        })
        .collect()
}

struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Runs `commits` single-threaded committed transactions (insert /
/// update / remove over a small key space), returning the oracle state
/// *after each commit* and the log file length after each commit (the
/// exact durable-record boundaries, since fsync-on commits wait for
/// their own record).
/// Per-commit oracle states plus the log-file length after each commit.
type WorkloadTrace = (Vec<HashMap<(i64, i64), i64>>, Vec<u64>);

fn committed_workload(
    rel: &ConcurrentRelation,
    log_path: &Path,
    commits: usize,
    seed: u64,
) -> WorkloadTrace {
    committed_workload_from(rel, log_path, commits, seed, HashMap::new())
}

/// [`committed_workload`] continuing from a known oracle state (so a
/// second batch against a non-empty relation plans no no-op inserts,
/// which would log nothing).
fn committed_workload_from(
    rel: &ConcurrentRelation,
    log_path: &Path,
    commits: usize,
    seed: u64,
    initial: HashMap<(i64, i64), i64>,
) -> WorkloadTrace {
    let mut rng = XorShift(seed | 1);
    let mut oracle: HashMap<(i64, i64), i64> = initial;
    let mut states = vec![oracle.clone()];
    let mut sizes = vec![std::fs::metadata(log_path).map(|m| m.len()).unwrap_or(0)];
    for _ in 0..commits {
        let n_ops = 1 + (rng.next() % 3) as usize;
        let mut planned: Vec<(u8, (i64, i64), i64)> = Vec::new();
        let mut next_state = oracle.clone();
        for _ in 0..n_ops {
            let s = (rng.next() % 4) as i64;
            let d = (rng.next() % 4) as i64;
            let w = (rng.next() % 100) as i64;
            match next_state.get(&(s, d)) {
                Some(_) if rng.next().is_multiple_of(2) => {
                    next_state.insert((s, d), w);
                    planned.push((1, (s, d), w)); // update
                }
                Some(_) => {
                    next_state.remove(&(s, d));
                    planned.push((2, (s, d), 0)); // remove
                }
                None => {
                    next_state.insert((s, d), w);
                    planned.push((0, (s, d), w)); // insert
                }
            }
        }
        rel.transaction(|tx| {
            for &(op, (s, d), w) in &planned {
                let k = key(rel, s, d);
                match op {
                    0 => {
                        tx.insert(&k, &payload(rel, w))?;
                    }
                    1 => {
                        tx.update(&k, &payload(rel, w))?;
                    }
                    _ => {
                        tx.remove(&k)?;
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        oracle = next_state;
        states.push(oracle.clone());
        sizes.push(std::fs::metadata(log_path).unwrap().len());
    }
    (states, sizes)
}

/// Basic reopen: a clean shutdown (no crash) recovers exactly the
/// committed state, and the commit clock resumes strictly above the
/// highest replayed stamp (observed as a strictly increasing `max_ts`
/// across generations that each add a commit).
#[test]
fn reopen_recovers_committed_state_and_clock_resumes_above() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("reopen");

    let (rel, report) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    assert_eq!(report.replayed, 0);
    assert_eq!(report.checkpoint_rows, 0);
    let (states, _) = committed_workload(&rel, &dir.join("relation.wal"), 40, 0x5eed);
    let expect = oracle_rows(&rel, states.last().unwrap());
    assert_eq!(dump(&rel), expect);
    drop(rel);

    let (rel2, report2) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    assert_eq!(dump(&rel2), expect);
    assert!(!report2.torn_tail);
    assert!(report2.replayed > 0);
    assert!(
        relc_locks::commit_clock().now() >= report2.max_ts,
        "clock must resume at or above the highest replayed stamp"
    );
    // A post-recovery commit must stamp strictly above every replayed
    // stamp: reopen a third time and watch max_ts strictly increase.
    rel2.insert(&key(&rel2, 7, 7), &payload(&rel2, 7)).unwrap();
    drop(rel2);
    let (rel3, report3) =
        ConcurrentRelation::open_durable(d, p, &dir, WalOptions::default()).unwrap();
    assert!(
        report3.max_ts > report2.max_ts,
        "new commit must be stamped strictly above the replayed history \
         ({} vs {})",
        report3.max_ts,
        report2.max_ts
    );
    assert!(dump(&rel3).contains(
        &rel3
            .schema()
            .tuple(&[
                ("src", Value::from(7)),
                ("dst", Value::from(7)),
                ("weight", Value::from(7)),
            ])
            .unwrap()
    ));
}

/// The kill-and-reopen sweep: truncate a copy of the log at random byte
/// offsets (plus every exact record boundary) and check the recovered
/// state equals the committed prefix whose records fit wholly below the
/// cut — never a torn suffix, never a lost durable prefix.
#[test]
fn torn_tail_truncation_sweep_recovers_committed_prefix() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("sweep");
    let (rel, _) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    let (states, sizes) = committed_workload(&rel, &dir.join("relation.wal"), 30, 0xc0ffee);
    drop(rel);

    let total = *sizes.last().unwrap();
    let mut rng = XorShift(0xdead_beef);
    let mut cuts: Vec<u64> = sizes.clone(); // every exact boundary
    cuts.extend((0..40).map(|_| rng.next() % (total + 1))); // random crash points
    let crash = fresh_dir("sweep-crash");
    for cut in cuts {
        copy_dir(&dir, &crash);
        let log = crash.join("relation.wal");
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let (rec, report) =
            ConcurrentRelation::open_durable(d.clone(), p.clone(), &crash, WalOptions::default())
                .unwrap();
        // Number of commits whose record lies wholly below the cut.
        let prefix = sizes.iter().filter(|&&s| s <= cut).count() - 1;
        assert_eq!(
            dump(&rec),
            oracle_rows(&rec, &states[prefix]),
            "cut at byte {cut} must recover exactly the {prefix}-commit prefix"
        );
        assert_eq!(report.replayed, prefix, "cut at byte {cut}");
        let at_boundary = sizes.contains(&cut);
        assert_eq!(
            report.torn_tail, !at_boundary,
            "cut at byte {cut}: torn iff mid-record"
        );
    }
}

/// Replay idempotence: re-running recovery over the same tail is a
/// no-op — both on a freshly recovered relation and after new commits
/// land (every logged commit raises the replay floor as it publishes,
/// so its own record is never double-applied).
#[test]
fn replay_twice_is_a_noop() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("idem");
    let (rel, _) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    let (states, _) = committed_workload(&rel, &dir.join("relation.wal"), 25, 0x1de8);
    drop(rel);

    let (rec, first) = ConcurrentRelation::open_durable(d, p, &dir, WalOptions::default()).unwrap();
    let after_recovery = dump(&rec);
    assert_eq!(after_recovery, oracle_rows(&rec, states.last().unwrap()));

    let again = rec.replay_log().unwrap();
    assert_eq!(
        again.replayed, 0,
        "second pass over the same tail replays nothing"
    );
    assert_eq!(dump(&rec), after_recovery);

    // New commits append to the log; replaying on the live relation must
    // skip them too (their effects are already in memory).
    rec.insert(&key(&rec, 9, 9), &payload(&rec, 9)).unwrap();
    let live = dump(&rec);
    let third = rec.replay_log().unwrap();
    assert_eq!(third.replayed, 0, "live commits must not be double-applied");
    assert_eq!(dump(&rec), live);
    assert!(first.max_ts > 0);
}

/// Crash mid-checkpoint, state (a): the temp sidecar was being written
/// when the process died — never renamed. Recovery must ignore it and
/// replay the full (untruncated) log.
#[test]
fn crash_before_checkpoint_rename_recovers_from_log() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("ckpt-tmp");
    let (rel, _) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    let (states, _) = committed_workload(&rel, &dir.join("relation.wal"), 20, 0xaaaa);
    drop(rel);

    // A half-written (garbage) temp sidecar, as a crash mid-write leaves.
    std::fs::write(dir.join("relation.tmp"), b"half-written checkpoint garbag").unwrap();
    let (rec, report) =
        ConcurrentRelation::open_durable(d, p, &dir, WalOptions::default()).unwrap();
    assert_eq!(report.checkpoint_rows, 0, "temp file is not a checkpoint");
    assert_eq!(report.replayed, 20);
    assert_eq!(dump(&rec), oracle_rows(&rec, states.last().unwrap()));
}

/// Crash mid-checkpoint, state (b): the sidecar was renamed into place
/// but the process died before truncating the log. Recovery loads the
/// checkpoint and must skip every log record at or below its cut —
/// the checkpoint already contains those effects.
#[test]
fn crash_after_checkpoint_rename_before_truncate_is_idempotent() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("ckpt-untruncated");
    let (rel, _) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    let (states, _) = committed_workload(&rel, &dir.join("relation.wal"), 20, 0xbbbb);
    let expect = oracle_rows(&rel, states.last().unwrap());

    // Save the pre-checkpoint log, checkpoint (which truncates it), then
    // put the old log back: exactly the crash window between rename and
    // truncate.
    let log_path = dir.join("relation.wal");
    let old_log = std::fs::read(&log_path).unwrap();
    let rows = rel.checkpoint().unwrap();
    assert_eq!(rows, states.last().unwrap().len());
    drop(rel);
    std::fs::write(&log_path, &old_log).unwrap();

    let (rec, report) =
        ConcurrentRelation::open_durable(d, p, &dir, WalOptions::default()).unwrap();
    assert_eq!(report.checkpoint_rows, rows);
    assert_eq!(
        report.replayed, 0,
        "every surviving log record predates the checkpoint cut"
    );
    assert_eq!(dump(&rec), expect);
}

/// Checkpoint + post-checkpoint tail: recovery is checkpoint rows plus
/// exactly the commits after the cut.
#[test]
fn checkpoint_then_tail_recovers_both() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("ckpt-tail");
    let (rel, _) =
        ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, WalOptions::default())
            .unwrap();
    let (states, _) = committed_workload(&rel, &dir.join("relation.wal"), 15, 0xcccc);
    let ckpt_rows = rel.checkpoint().unwrap();
    assert_eq!(ckpt_rows, states.last().unwrap().len());
    let (states2, _) = committed_workload_from(
        &rel,
        &dir.join("relation.wal"),
        10,
        0xdddd,
        states.last().unwrap().clone(),
    );
    let expect = oracle_rows(&rel, states2.last().unwrap());
    drop(rel);

    let (rec, report) =
        ConcurrentRelation::open_durable(d, p, &dir, WalOptions::default()).unwrap();
    assert_eq!(report.checkpoint_rows, ckpt_rows);
    assert_eq!(report.replayed, 10);
    assert_eq!(dump(&rec), expect);
}

/// Group-commit acceptance: under a concurrent commit workload with a
/// small leader window, fsyncs batch at least two commits each on
/// average pace — observed as `max_batch >= 2` and strictly fewer
/// fsyncs than appends.
#[test]
fn group_commit_batches_at_least_two_commits_per_fsync() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("batch");
    let opts = WalOptions {
        fsync: true,
        group_window: Duration::from_millis(3),
    };
    let (rel, _) = ConcurrentRelation::open_durable(d, p, &dir, opts).unwrap();
    let rel = Arc::new(rel);
    let threads = 8usize;
    let per = 16i64;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads as i64)
        .map(|t| {
            let rel = Arc::clone(&rel);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per {
                    rel.insert(&key(&rel, t, i), &payload(&rel, t * per + i))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = rel.wal_stats().unwrap();
    assert_eq!(stats.appends, (threads as i64 * per) as u64);
    assert!(
        stats.max_batch >= 2,
        "no fsync ever covered two commits: {stats:?}"
    );
    assert!(
        stats.fsyncs < stats.appends,
        "group commit amortized nothing: {stats:?}"
    );
    assert_eq!(rel.len(), threads * per as usize);
}

fn skey(rel: &ShardedRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn spayload(rel: &ShardedRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

/// Sharded reopen: per-shard logs recover the whole partitioned state,
/// including cross-shard transactions (whose markers are durable).
#[test]
fn sharded_reopen_recovers_cross_shard_transactions() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("sharded");
    let (rel, report) =
        ShardedRelation::open_durable(d.clone(), p.clone(), 4, &dir, WalOptions::default())
            .unwrap();
    assert_eq!(report.replayed, 0);
    // Cross-shard transactions: each writes a diagonal of keys that hash
    // across shards.
    for round in 0..12i64 {
        rel.transaction(|tx| {
            for i in 0..5i64 {
                tx.insert(&skey(&rel, round, i), &spayload(&rel, round * 10 + i))?;
            }
            Ok(())
        })
        .unwrap();
    }
    // And some routed single-shard writes.
    for i in 0..10i64 {
        rel.insert(&skey(&rel, 100 + i, 0), &spayload(&rel, i))
            .unwrap();
    }
    let expect = dump_sharded(&rel);
    assert_eq!(rel.len(), 12 * 5 + 10);
    drop(rel);

    let (rec, report) =
        ShardedRelation::open_durable(d, p, 4, &dir, WalOptions::default()).unwrap();
    assert_eq!(dump_sharded(&rec), expect);
    assert!(!report.torn_tail);
    assert!(
        relc_locks::commit_clock().now() >= report.max_ts,
        "clock resumes above the highest stamp of any shard"
    );
}

/// Cross-shard atomic abort: if the commit marker for a cross-shard
/// transaction never reached disk, recovery must abort the transaction
/// on *every* shard — even shards whose data records are durable.
/// Restoring the marker commits it everywhere.
#[test]
fn sharded_missing_marker_aborts_cross_shard_transaction_everywhere() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("marker");
    let (rel, _) =
        ShardedRelation::open_durable(d.clone(), p.clone(), 4, &dir, WalOptions::default())
            .unwrap();
    // Baseline: routed writes on every shard.
    for i in 0..20i64 {
        rel.insert(&skey(&rel, i, 0), &spayload(&rel, i)).unwrap();
    }
    let baseline = dump_sharded(&rel);
    // One cross-shard transaction, last in every involved log. Spread
    // keys until at least two shards are written.
    rel.transaction(|tx| {
        for i in 0..6i64 {
            tx.insert(&skey(&rel, 50 + i, 1), &spayload(&rel, 500 + i))?;
        }
        Ok(())
    })
    .unwrap();
    let full = dump_sharded(&rel);
    assert_eq!(full.len(), baseline.len() + 6);
    // The marker protocol only engages when >1 shard writes; make sure
    // this key diagonal really spreads (deterministic router, so this
    // either always holds or the keys need changing).
    let spread: HashSet<usize> = (0..6i64)
        .map(|i| rel.shard_of(&skey(&rel, 50 + i, 1)))
        .collect();
    assert!(spread.len() >= 2, "test keys must span at least two shards");
    drop(rel);

    // Crash copy 1: shard 0's log loses its trailing marker record (the
    // marker is appended after every data record, so it is the last
    // record in shard-0.wal).
    let crash = fresh_dir("marker-crash");
    copy_dir(&dir, &crash);
    let log0 = crash.join("shard-0.wal");
    let len = std::fs::metadata(&log0).unwrap().len();
    assert!(len > MARKER_FRAME_LEN);
    std::fs::OpenOptions::new()
        .write(true)
        .open(&log0)
        .unwrap()
        .set_len(len - MARKER_FRAME_LEN)
        .unwrap();
    let (aborted, _) =
        ShardedRelation::open_durable(d.clone(), p.clone(), 4, &crash, WalOptions::default())
            .unwrap();
    assert_eq!(
        dump_sharded(&aborted),
        baseline,
        "without the marker, the cross-shard transaction must vanish from every shard"
    );
    drop(aborted);

    // Crash copy 2: marker intact — the transaction commits everywhere.
    copy_dir(&dir, &crash);
    let (committed, _) =
        ShardedRelation::open_durable(d, p, 4, &crash, WalOptions::default()).unwrap();
    assert_eq!(dump_sharded(&committed), full);
}

/// Sharded checkpoint: one cut across all shards, then reopen recovers
/// checkpoint + tail; the aggregated WAL stats surface afterwards.
#[test]
fn sharded_checkpoint_then_reopen() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("sharded-ckpt");
    let (rel, _) =
        ShardedRelation::open_durable(d.clone(), p.clone(), 3, &dir, WalOptions::default())
            .unwrap();
    for i in 0..15i64 {
        rel.insert(&skey(&rel, i, i), &spayload(&rel, i)).unwrap();
    }
    let ckpt_rows = rel.checkpoint().unwrap();
    assert_eq!(ckpt_rows, 15);
    // Post-checkpoint tail, including a cross-shard transaction.
    rel.transaction(|tx| {
        for i in 0..4i64 {
            tx.insert(&skey(&rel, 30 + i, 2), &spayload(&rel, i))?;
        }
        Ok(())
    })
    .unwrap();
    let expect = dump_sharded(&rel);
    assert!(rel.wal_stats().unwrap().appends > 0);
    drop(rel);

    let (rec, report) =
        ShardedRelation::open_durable(d, p, 3, &dir, WalOptions::default()).unwrap();
    assert_eq!(report.checkpoint_rows, ckpt_rows);
    assert_eq!(dump_sharded(&rec), expect);
    assert_eq!(rec.len(), 19);
}

/// A durable relation with fsync disabled still recovers everything the
/// OS flushed (here: everything, since the process exits cleanly) — the
/// benchmark configuration stays functional.
#[test]
fn fsync_off_still_logs_and_recovers_on_clean_shutdown() {
    let _serial = serialize();
    let (d, p) = graph();
    let dir = fresh_dir("nosync");
    let opts = WalOptions {
        fsync: false,
        group_window: Duration::ZERO,
    };
    let (rel, _) = ConcurrentRelation::open_durable(d.clone(), p.clone(), &dir, opts).unwrap();
    for i in 0..10i64 {
        rel.insert(&key(&rel, i, 0), &payload(&rel, i)).unwrap();
    }
    let expect = dump(&rel);
    let stats = rel.wal_stats().unwrap();
    assert_eq!(stats.fsyncs, 0, "fsync disabled must issue no fsyncs");
    assert!(stats.appends >= 10);
    drop(rel);
    let (rec, _) = ConcurrentRelation::open_durable(d, p, &dir, opts).unwrap();
    assert_eq!(dump(&rec), expect);
}
