//! MVCC snapshot-read validation: lock-free read-only transactions must
//! (a) linearize with concurrent writers (Wing–Gong over mixed
//! histories), (b) observe only committed prefix states — never torn,
//! partial, or future-timestamp state, (c) agree with the sequential
//! oracle op-for-op when single-threaded, (d) see cross-shard
//! transactions atomically through one shared snapshot timestamp, and
//! (e) retire superseded versions through the epoch collector instead of
//! leaking them.
//!
//! The version/reclamation counters are process-global, so every test in
//! this binary serializes on a mutex.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use proptest::prelude::*;
use relc::decomp::library::{diamond, split, stick};
use relc::lincheck::{check_linearizable, HistoryRecorder, OpRecord};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, ShardedRelation};
use relc_containers::{version_stats, ContainerKind};
use relc_spec::{OracleRelation, Tuple, Value};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn edge(rel: &ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

/// Snapshot read-only transactions mixed with writers must produce
/// linearizable histories: the whole read transaction is one
/// linearization point (its snapshot timestamp), recorded as an atomic
/// `Txn` of queries.
#[test]
fn snapshot_read_transactions_linearize_with_writers() {
    let _serial = serialize();
    let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let placements = vec![
        LockPlacement::fine(&d).unwrap(),
        LockPlacement::speculative(&d, 4).unwrap(),
    ];
    for p in placements {
        for round in 0..25u64 {
            let rel = Arc::new(ConcurrentRelation::new(d.clone(), p.clone()).unwrap());
            let rec = HistoryRecorder::new();
            let threads = 3usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads as u64)
                .map(|tid| {
                    let rel = rel.clone();
                    let rec = rec.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        let mut x = (round + 1) * (tid + 1) * 0x9e37_79b9;
                        let mut next = move || {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        };
                        barrier.wait();
                        for _ in 0..4 {
                            let s = (next() % 2) as i64;
                            let dd = (next() % 2) as i64;
                            let w = (next() % 2) as i64;
                            if tid == 0 {
                                // Dedicated reader: a two-query snapshot
                                // transaction. Both queries resolve at one
                                // commit timestamp captured inside the
                                // recorded interval, so the pair is a
                                // sound atomic linearization candidate.
                                let cols = rel.schema().column_set(&["dst", "weight"]).unwrap();
                                rec.record(|| {
                                    let p1 =
                                        rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                                    let p2 =
                                        rel.schema().tuple(&[("src", Value::from(1 - s))]).unwrap();
                                    let (r1, r2) = rel.read_transaction(|snap| {
                                        (
                                            snap.query(&p1, cols).unwrap(),
                                            snap.query(&p2, cols).unwrap(),
                                        )
                                    });
                                    (
                                        (),
                                        OpRecord::Txn {
                                            ops: vec![
                                                OpRecord::Query {
                                                    s: p1,
                                                    cols,
                                                    result: r1,
                                                },
                                                OpRecord::Query {
                                                    s: p2,
                                                    cols,
                                                    result: r2,
                                                },
                                            ],
                                        },
                                    )
                                });
                            } else {
                                match next() % 2 {
                                    0 => rec.record(|| {
                                        let r = rel
                                            .insert(&edge(&rel, s, dd), &weight(&rel, w))
                                            .unwrap();
                                        (
                                            (),
                                            OpRecord::Insert {
                                                s: edge(&rel, s, dd),
                                                t: weight(&rel, w),
                                                result: r,
                                            },
                                        )
                                    }),
                                    _ => rec.record(|| {
                                        let r = rel.remove(&edge(&rel, s, dd)).unwrap();
                                        (
                                            (),
                                            OpRecord::Remove {
                                                s: edge(&rel, s, dd),
                                                result: r,
                                            },
                                        )
                                    }),
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let history = rec.into_history();
            assert!(
                check_linearizable(rel.schema(), &history),
                "non-linearizable snapshot/writer history on {} (round {round}): {history:#?}",
                rel.placement().name()
            );
        }
    }
}

/// Under single-writer churn, every snapshot a reader observes must be
/// *exactly* one of the committed prefix states the writer has produced —
/// no torn entries, no uncommitted (future-timestamp) versions — and two
/// reads inside one read transaction must agree (repeatable read).
#[test]
fn snapshots_observe_only_committed_prefix_states() {
    let _serial = serialize();
    for d in [
        stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
        split(
            ContainerKind::ConcurrentSkipListMap,
            ContainerKind::ConcurrentSkipListMap,
        ),
    ] {
        let rel =
            Arc::new(ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap());
        let oracle = OracleRelation::empty(d.schema().clone());
        // Every committed state, in commit order. The writer pushes each
        // state *after* the relation op commits, so by join time the log
        // contains every state any reader can have observed.
        let states = Arc::new(Mutex::new(vec![Vec::<Tuple>::new()]));
        let ops = 800u64;
        let barrier = Arc::new(Barrier::new(3));

        let writer = {
            let rel = Arc::clone(&rel);
            let states = Arc::clone(&states);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut x = 0x2545_f491_4f6c_dd1du64;
                for _ in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x % 12) as i64;
                    match (x >> 32) % 3 {
                        0 => {
                            rel.insert(&edge(&rel, k, k), &weight(&rel, k)).unwrap();
                            let _ = oracle.insert(&edge(&rel, k, k), &weight(&rel, k));
                        }
                        1 => {
                            rel.remove(&edge(&rel, k, k)).unwrap();
                            oracle.remove(&edge(&rel, k, k));
                        }
                        _ => {
                            rel.update(&edge(&rel, k, k), &weight(&rel, -k)).unwrap();
                            let _ = oracle.update(&edge(&rel, k, k), &weight(&rel, -k));
                        }
                    }
                    let mut snap = oracle.snapshot();
                    snap.sort();
                    states.lock().unwrap().push(snap);
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let rel = Arc::clone(&rel);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut observed = Vec::new();
                    for _ in 0..120 {
                        let (ts, s1, s2, probe) = rel.read_transaction(|snap| {
                            let s1 = snap.snapshot().unwrap();
                            let s2 = snap.snapshot().unwrap();
                            let probe = snap.contains(&edge(&rel, 3, 3)).unwrap();
                            (snap.snapshot_ts(), s1, s2, probe)
                        });
                        assert_eq!(s1, s2, "repeatable read violated within one snapshot");
                        let has3 = s1.iter().any(|t| {
                            let src = rel.schema().column("src").unwrap();
                            t.get(src).and_then(|v| v.as_int()) == Some(3)
                        });
                        assert_eq!(probe, has3, "contains disagrees with snapshot at ts {ts}");
                        observed.push(s1);
                    }
                    observed
                })
            })
            .collect();

        let observations: Vec<Vec<Vec<Tuple>>> =
            readers.into_iter().map(|r| r.join().unwrap()).collect();
        writer.join().unwrap();

        let states = states.lock().unwrap();
        for observed in observations {
            for snap in observed {
                assert!(
                    states.contains(&snap),
                    "snapshot is not any committed prefix state (torn or future read): {snap:?}"
                );
            }
        }
        rel.verify().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Sequential differential: after every mutation, a snapshot read
    /// transaction's query/contains/snapshot must equal the sequential
    /// oracle exactly — the MVCC read path is a drop-in replacement for
    /// the locked read path on every plannable shape.
    #[test]
    fn snapshot_reads_match_sequential_oracle(
        ops in proptest::collection::vec((0u8..4, 0i64..8, 0i64..8, -4i64..4), 1..60),
        coarse in any::<bool>(),
    ) {
        let _serial = serialize();
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let p = if coarse {
            LockPlacement::coarse(&d).unwrap()
        } else {
            LockPlacement::fine(&d).unwrap()
        };
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let wcols = rel.schema().column_set(&["weight"]).unwrap();
        let dcols = rel.schema().column_set(&["dst", "weight"]).unwrap();
        for (which, s, dd, w) in ops {
            match which {
                0 => {
                    let got = rel.insert(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                    let want = oracle.insert(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                    prop_assert_eq!(got, want);
                }
                1 => {
                    let got = rel.remove(&edge(&rel, s, dd)).unwrap();
                    let want = oracle.remove(&edge(&rel, s, dd));
                    prop_assert_eq!(got, want);
                }
                2 => {
                    let got = rel.update(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                    let want = oracle.update(&edge(&rel, s, dd), &weight(&rel, w)).unwrap();
                    prop_assert_eq!(got, want);
                }
                _ => {}
            }
            // Snapshot reads after every op: full-key query, partial
            // pattern query, contains, and the full snapshot.
            let pat = rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
            let (q1, q2, c1, all) = rel.read_transaction(|snap| {
                (
                    snap.query(&edge(&rel, s, dd), wcols).unwrap(),
                    snap.query(&pat, dcols).unwrap(),
                    snap.contains(&edge(&rel, s, dd)).unwrap(),
                    snap.snapshot().unwrap(),
                )
            });
            let mut w1 = oracle.query(&edge(&rel, s, dd), wcols);
            w1.sort();
            let mut w2 = oracle.query(&pat, dcols);
            w2.sort();
            prop_assert_eq!(q1, w1);
            prop_assert_eq!(q2, w2);
            prop_assert_eq!(c1, !oracle.query(&edge(&rel, s, dd), wcols).is_empty());
            let mut wall = oracle.snapshot();
            wall.sort();
            prop_assert_eq!(all, wall);
        }
    }
}

/// Cross-shard transfers observed through one sharded snapshot must
/// always conserve the total: the shared commit stamp makes the
/// cross-shard commit atomic at one timestamp, and the single shared
/// snapshot registration reads every shard at one cut. A reader seeing
/// shard A's debit without shard B's credit breaks the sum.
#[test]
fn cross_shard_snapshot_is_one_consistent_cut() {
    let _serial = serialize();
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let graph =
        Arc::new(ShardedRelation::new(d.clone(), LockPlacement::fine(&d).unwrap(), 4).unwrap());
    let schema = graph.schema().clone();
    let key = |s: i64| {
        schema
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(s))])
            .unwrap()
    };
    let w = |v: i64| schema.tuple(&[("weight", Value::from(v))]).unwrap();
    // Two accounts owned by different shards.
    let a = 0i64;
    let b = (1..64)
        .find(|&x| graph.shard_of(&key(x)) != graph.shard_of(&key(a)))
        .expect("some key routes elsewhere");
    let initial = 1_000i64;
    graph.insert(&key(a), &w(initial)).unwrap();
    graph.insert(&key(b), &w(initial)).unwrap();

    let barrier = Arc::new(Barrier::new(4));
    let wcol = schema.column("weight").unwrap();
    let wcols = schema.column_set(&["weight"]).unwrap();
    let writers: Vec<_> = (0..2u64)
        .map(|tid| {
            let graph = Arc::clone(&graph);
            let barrier = Arc::clone(&barrier);
            let (ka, kb) = (key(a), key(b));
            let schema = schema.clone();
            std::thread::spawn(move || {
                let w = |v: i64| schema.tuple(&[("weight", Value::from(v))]).unwrap();
                barrier.wait();
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                for _ in 0..150 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let amt = (x % 7) as i64;
                    graph
                        .transaction(|tx| {
                            let qa = tx.query(&ka, wcols)?;
                            let qb = tx.query(&kb, wcols)?;
                            let wa = qa[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                            let wb = qb[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                            tx.update(&ka, &w(wa - amt))?;
                            tx.update(&kb, &w(wb + amt))?;
                            Ok(())
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2u64)
        .map(|_| {
            let graph = Arc::clone(&graph);
            let barrier = Arc::clone(&barrier);
            let (ka, kb) = (key(a), key(b));
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..200 {
                    // One snapshot spanning both shards; also exercise the
                    // single-shot fan-out path, which reroutes here.
                    let (qa, qb, all) = graph.read_transaction(|snap| {
                        (
                            snap.query(&ka, wcols).unwrap(),
                            snap.query(&kb, wcols).unwrap(),
                            snap.snapshot().unwrap(),
                        )
                    });
                    let wa = qa[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                    let wb = qb[0].get(wcol).and_then(|v| v.as_int()).unwrap();
                    assert_eq!(
                        wa + wb,
                        2 * initial,
                        "snapshot saw a torn cross-shard transfer"
                    );
                    assert_eq!(all.len(), 2, "snapshot saw a key mid-relocation");
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    // The lock-free single-shot fan-out (rerouted through one snapshot)
    // agrees at quiescence.
    let total: i64 = graph
        .snapshot()
        .unwrap()
        .iter()
        .map(|t| t.get(wcol).and_then(|v| v.as_int()).unwrap())
        .sum();
    assert_eq!(total, 2 * initial);
    assert!(graph.lock_stats().snapshot_reads > 0);
}

/// Superseded versions must be retired, not accumulated: overwriting one
/// entry N times with no reader registered keeps the live version count
/// bounded, dead (tombstoned) cells are purged from the index through the
/// epoch collector, and dropping the relation frees whatever remains.
#[test]
fn superseded_versions_are_retired_and_reclaimed() {
    let _serial = serialize();
    relc_containers::reclamation_flush();
    let v0 = version_stats();
    let r0 = relc_containers::reclamation_stats();

    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let rel = ConcurrentRelation::new(d.clone(), LockPlacement::coarse(&d).unwrap()).unwrap();
    rel.insert(&edge(&rel, 1, 1), &weight(&rel, 0)).unwrap();
    for i in 0..500 {
        rel.update(&edge(&rel, 1, 1), &weight(&rel, i)).unwrap();
    }
    // Flush so cells parked in the epoch collector's in-flight bags (their
    // versions still count as live) are actually freed before we bound the
    // live count.
    rel.flush_reclamation();
    let mid = version_stats();
    assert!(
        mid.created > v0.created + 500,
        "every mirrored write creates a version: {mid}"
    );
    assert!(
        mid.retired > v0.retired + 400,
        "with no registered reader, superseded versions retire eagerly: {mid}"
    );
    // Each chain holds at most the newest committed version (plus the
    // key's sibling edges); nothing proportional to the 500 updates
    // survives.
    assert!(
        mid.live() < v0.live() + 32,
        "live version count must stay bounded under same-key churn: {mid}"
    );

    // Tombstone + same-key rewrite purges the dead cell from the index;
    // the skip list hands the Arc to the epoch collector.
    rel.remove(&edge(&rel, 1, 1)).unwrap();
    rel.insert(&edge(&rel, 1, 1), &weight(&rel, 7)).unwrap();
    rel.remove(&edge(&rel, 1, 1)).unwrap();
    let rstats = rel.flush_reclamation();
    assert!(
        rstats.retired > r0.retired,
        "dead version cells flow through the epoch collector: {rstats:?}"
    );

    // Dropping the relation frees every remaining chain: the global
    // created/retired balance for this test's serialized window closes.
    let created_before_drop = version_stats().created;
    drop(rel);
    relc_containers::reclamation_flush();
    let end = version_stats();
    assert_eq!(end.created, created_before_drop, "drop creates no versions");
    assert_eq!(
        end.live(),
        v0.live(),
        "relation drop retires every version it ever created: {end}"
    );
}

/// A dead cell that a registered reader pins at its own commit must be
/// reclaimed by a *later* commit's whole-index sweep — not wait for "the
/// next write of the same entry key", which on a value-keyed edge (the
/// weight sink here) may never come. Every update below commits with a
/// reader registered, so its tombstoned old-weight cell always survives
/// its own retirement pass; without the sweep, one dead cell per
/// distinct weight value accumulates and every snapshot scan crawls the
/// corpses (~200x read slowdown in the 95/5 bench before the fix).
#[test]
fn pinned_dead_cells_are_swept_by_later_commits() {
    let _serial = serialize();
    relc_containers::reclamation_flush();
    let v0 = version_stats();

    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let rel = ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap();
    rel.insert(&edge(&rel, 3, 3), &weight(&rel, 0)).unwrap();
    for i in 1..=400 {
        // Register before the update so this commit's min_active is the
        // reader's (pre-update) snapshot: the weight-(i-1) cell it
        // tombstones is still visible to the reader and must survive
        // this commit. The next iteration's commit sweeps it. The
        // registration must target *this relation's* registry —
        // registries are per relation now.
        let g = rel.snapshots().register(relc_locks::commit_clock());
        rel.update(&edge(&rel, 3, 3), &weight(&rel, i)).unwrap();
        drop(g);
    }
    rel.flush_reclamation();
    let vs = version_stats();
    assert!(
        vs.live() < v0.live() + 32,
        "later commits must sweep reader-pinned dead cells (got {} new live \
         versions; ~400 means the sweep is gone): {vs}",
        vs.live() - v0.live()
    );
    drop(rel);
    relc_containers::reclamation_flush();
}

/// A reader registered at an old snapshot pins history: versions it can
/// still see are not truncated under it, and it reads the old value even
/// after hundreds of newer commits.
#[test]
fn registered_reader_pins_its_version() {
    let _serial = serialize();
    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let rel =
        Arc::new(ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap());
    rel.insert(&edge(&rel, 9, 9), &weight(&rel, 111)).unwrap();
    let wcols = rel.schema().column_set(&["weight"]).unwrap();
    let wcol = rel.schema().column("weight").unwrap();

    rel.read_transaction(|snap| {
        let before = snap.query(&edge(&rel, 9, 9), wcols).unwrap();
        assert_eq!(before[0].get(wcol).and_then(|v| v.as_int()), Some(111));
        // A writer on another thread overwrites the entry many times
        // while this snapshot stays registered.
        let rel2 = Arc::clone(&rel);
        std::thread::spawn(move || {
            for i in 0..300 {
                rel2.update(&edge(&rel2, 9, 9), &weight(&rel2, i)).unwrap();
            }
        })
        .join()
        .unwrap();
        // Still the pinned value, and stable across re-reads.
        let after = snap.query(&edge(&rel, 9, 9), wcols).unwrap();
        assert_eq!(before, after, "registered reader lost its version");
    });
    // A fresh snapshot sees the newest commit.
    let now = rel.read_transaction(|snap| snap.query(&edge(&rel, 9, 9), wcols).unwrap());
    assert_eq!(now[0].get(wcol).and_then(|v| v.as_int()), Some(299));
}

/// Regression: single-shot reads route through `read_transaction`, so a
/// `relB.contains()` inside `relA.read_transaction(..)` registers a
/// second snapshot on the same thread. With the old one-slot-per-thread
/// registry the inner registration overwrote the outer's slot and its
/// guard drop deregistered the still-active outer reader, letting
/// committers retire versions the outer snapshot needed. Each
/// registration now holds its own slot.
#[test]
fn nested_read_does_not_deregister_outer_snapshot() {
    let _serial = serialize();
    let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let rel =
        Arc::new(ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap());
    let other = ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap();
    rel.insert(&edge(&rel, 9, 9), &weight(&rel, 111)).unwrap();
    other
        .insert(&edge(&other, 1, 1), &weight(&other, 1))
        .unwrap();
    let wcols = rel.schema().column_set(&["weight"]).unwrap();
    let wcol = rel.schema().column("weight").unwrap();

    rel.read_transaction(|snap| {
        let before = snap.query(&edge(&rel, 9, 9), wcols).unwrap();
        assert_eq!(before[0].get(wcol).and_then(|v| v.as_int()), Some(111));
        // Nested registration + drop on this thread.
        assert!(other.contains(&edge(&other, 1, 1)).unwrap());
        // Commit-side retirement on another thread must still honor the
        // outer snapshot after the inner guard dropped.
        let rel2 = Arc::clone(&rel);
        std::thread::spawn(move || {
            for i in 0..300 {
                rel2.update(&edge(&rel2, 9, 9), &weight(&rel2, i)).unwrap();
            }
        })
        .join()
        .unwrap();
        let after = snap.query(&edge(&rel, 9, 9), wcols).unwrap();
        assert_eq!(
            before, after,
            "outer snapshot was deregistered by the nested read"
        );
    });
    let now = rel.read_transaction(|snap| snap.query(&edge(&rel, 9, 9), wcols).unwrap());
    assert_eq!(now[0].get(wcol).and_then(|v| v.as_int()), Some(299));
}

/// The new counters surface through the public stats accessors and are
/// non-zero after snapshot traffic: `snapshot_reads` on
/// `LockStats`/sharded aggregation, `versions_created`/`versions_retired`
/// through `version_stats()` on both relation flavors.
#[test]
fn snapshot_counters_surface_through_stats() {
    let _serial = serialize();
    let v0 = version_stats();
    let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    let rel = ConcurrentRelation::new(d.clone(), LockPlacement::fine(&d).unwrap()).unwrap();
    let s0 = rel.lock_stats().snapshot_reads;
    for k in 0..20 {
        rel.insert(&edge(&rel, k, k), &weight(&rel, k)).unwrap();
        rel.update(&edge(&rel, k, k), &weight(&rel, -k)).unwrap();
    }
    let wcols = rel.schema().column_set(&["weight"]).unwrap();
    for k in 0..20 {
        assert!(!rel.query(&edge(&rel, k, k), wcols).unwrap().is_empty());
        assert!(rel.contains(&edge(&rel, k, k)).unwrap());
    }
    rel.read_transaction(|snap| snap.snapshot().unwrap());
    let stats = rel.lock_stats();
    assert!(
        stats.snapshot_reads >= s0 + 41,
        "single-shot query/contains and read_transaction all count: {stats}"
    );
    let vs = rel.version_stats();
    assert!(vs.created > v0.created, "writers created versions: {vs}");
    assert!(
        vs.retired > v0.retired,
        "updates retired predecessors: {vs}"
    );

    let graph = ShardedRelation::new(d.clone(), LockPlacement::fine(&d).unwrap(), 4).unwrap();
    let schema = graph.schema().clone();
    let key = |s: i64| {
        schema
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(s))])
            .unwrap()
    };
    let w = |v: i64| schema.tuple(&[("weight", Value::from(v))]).unwrap();
    let g0 = graph.lock_stats().snapshot_reads;
    for k in 0..8 {
        graph.insert(&key(k), &w(k)).unwrap();
    }
    graph.snapshot().unwrap(); // fan-out: one registration, N shard reads
    let pat = schema.tuple(&[("src", Value::from(3))]).unwrap();
    assert!(graph.contains(&pat).unwrap());
    assert!(
        graph.lock_stats().snapshot_reads > g0,
        "sharded aggregation surfaces snapshot reads: {}",
        graph.lock_stats()
    );
    assert!(graph.version_stats().created > v0.created);
}
