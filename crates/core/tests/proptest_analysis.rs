//! Property tests for the lock-discipline analyzer over *randomly
//! generated* decomposition structures (same trie generator as
//! `proptest_random_decomps`):
//!
//! * **no false positives** — every placement the §4.3 validator accepts
//!   passes `analyze_all` clean, whatever the decomposition shape;
//! * **no false negatives** — seeding a violation into a random structure
//!   (forgotten MVCC mirror, edge hosted below its source, unsorted
//!   stripe sweep) is always flagged with the expected diagnostic kind.
//!
//! The deterministic per-class battery lives in `tests/analysis.rs`; this
//! file checks the oracle generalizes beyond the standard library shapes.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use relc::analysis::{Analyzer, AnalyzerOptions, DiagnosticKind};
use relc::placement::LockPlacement;
use relc::{Decomposition, EdgeId};
use relc_containers::ContainerKind;
use relc_spec::{ColumnSet, RelationSchema};

const COLS: [&str; 4] = ["a", "b", "c", "d"];

fn schema() -> Arc<RelationSchema> {
    RelationSchema::builder()
        .column("a")
        .column("b")
        .column("c")
        .column("d")
        .fd(&["a"], &["b", "c", "d"])
        .build()
}

/// An ordered partition of {0,1,2,3} into 1..=4 groups.
fn partition_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (Just([0usize, 1, 2, 3]), 0u8..27).prop_perturb(|(mut cols, splits), mut rng| {
        for i in (1..cols.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            cols.swap(i, j);
        }
        let mut groups: Vec<Vec<usize>> = vec![vec![cols[0]]];
        for (pos, &c) in cols.iter().enumerate().skip(1) {
            if splits & (1 << (pos - 1)) != 0 {
                groups.push(vec![c]);
            } else {
                groups.last_mut().expect("nonempty").push(c);
            }
        }
        groups
    })
}

fn container_strategy() -> impl Strategy<Value = ContainerKind> {
    prop_oneof![
        Just(ContainerKind::HashMap),
        Just(ContainerKind::TreeMap),
        Just(ContainerKind::ConcurrentHashMap),
        Just(ContainerKind::ConcurrentSkipListMap),
        Just(ContainerKind::CopyOnWriteArrayList),
    ]
}

/// Trie decomposition from 1..=3 ordered partitions (adequate by
/// construction); identical to the generator in `proptest_random_decomps`.
fn build_decomposition(
    partitions: &[Vec<Vec<usize>>],
    containers: &[ContainerKind],
) -> Arc<Decomposition> {
    let schema = schema();
    let mut b = Decomposition::builder(schema.clone());
    let mut trie: BTreeMap<Vec<Vec<usize>>, relc::NodeId> = BTreeMap::new();
    let mut edges_made: Vec<(relc::NodeId, relc::NodeId)> = Vec::new();
    let mut ci = 0usize;
    for part in partitions {
        let mut prefix: Vec<Vec<usize>> = Vec::new();
        let mut cur = b.root();
        for group in part {
            prefix.push(group.clone());
            let next = match trie.get(&prefix) {
                Some(&n) => n,
                None => {
                    let name = format!(
                        "n{}",
                        prefix
                            .iter()
                            .map(|g| g.iter().map(|c| COLS[*c]).collect::<String>())
                            .collect::<Vec<_>>()
                            .join("_")
                    );
                    let n = b.node(&name);
                    trie.insert(prefix.clone(), n);
                    n
                }
            };
            if !edges_made.contains(&(cur, next)) {
                let cols: Vec<&str> = group.iter().map(|c| COLS[*c]).collect();
                let kind = containers[ci % containers.len()];
                ci += 1;
                b.edge(cur, next, &cols, kind).expect("known columns");
                edges_made.push((cur, next));
            }
            cur = next;
        }
    }
    b.build().expect("trie decompositions are adequate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No false positives: whatever random structure the validator
    /// accepts, the symbolic executor finds nothing to complain about in
    /// any plan shape.
    #[test]
    fn valid_random_placements_pass_the_analyzer(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
        placement_pick in 0u8..4,
    ) {
        let d = build_decomposition(&partitions, &containers);
        let p = match placement_pick {
            0 => LockPlacement::coarse(&d).ok(),
            1 => LockPlacement::fine(&d).ok(),
            2 => LockPlacement::striped_root(&d, 4).ok(),
            _ => LockPlacement::speculative(&d, 4).ok(),
        };
        let Some(p) = p else { return Ok(()); }; // container-incompatible
        let diags = Analyzer::new(Arc::clone(&d), Arc::clone(&p)).analyze_all();
        prop_assert!(
            diags.is_empty(),
            "false positives under `{}`: {:?}",
            p.name(),
            diags.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No false negatives (mirror omission): forgetting the `mvcc_write`
    /// mirror on *any* edge of *any* structure is flagged on the insert
    /// path, which writes every edge of a fresh tuple.
    #[test]
    fn forgotten_mirror_is_always_rejected(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
        edge_pick in 0usize..16,
    ) {
        let d = build_decomposition(&partitions, &containers);
        let Ok(p) = LockPlacement::fine(&d) else { return Ok(()); };
        let edges: Vec<EdgeId> = d.edges().map(|(e, _)| e).collect();
        let victim = edges[edge_pick % edges.len()];
        let opts = AnalyzerOptions {
            suppress_mirror: Some(victim),
            ..Default::default()
        };
        let analyzer = Analyzer::with_options(Arc::clone(&d), p, opts);
        let diags = analyzer
            .analyze_insert(d.schema().columns())
            .expect("full-bound inserts always plan");
        prop_assert!(
            diags.iter().any(|x| x.kind == DiagnosticKind::MissingMvccMirror),
            "mirror omission on edge {victim:?} not flagged: {diags:?}"
        );
    }

    /// No false negatives (domination): hosting any edge at its
    /// destination — strictly below the source in the trie — can never
    /// dominate, and the structural pass must say so.
    #[test]
    fn dst_hosting_is_always_rejected(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
        edge_pick in 0usize..16,
    ) {
        let d = build_decomposition(&partitions, &containers);
        let edges: Vec<EdgeId> = d.edges().map(|(e, _)| e).collect();
        let victim = edges[edge_pick % edges.len()];
        let mut b = LockPlacement::builder(Arc::clone(&d));
        for (e, em) in d.edges() {
            b.place(e, if e == victim { em.dst } else { em.src });
        }
        let Ok(p) = b.named("prop-bad-host").build_unchecked() else { return Ok(()); };
        let diags = Analyzer::new(Arc::clone(&d), p).check_placement();
        prop_assert!(
            diags.iter().any(|x| x.kind == DiagnosticKind::NonDominatingHost),
            "dst-hosted edge {victim:?} not flagged: {diags:?}"
        );
    }

    /// No false negatives (sweep order): a striped root with its stripe
    /// columns unbound sweeps every stripe; skipping the global sort must
    /// surface as an unsorted sweep on some insert shape.
    #[test]
    fn unsorted_stripe_sweep_is_always_rejected(
        partitions in proptest::collection::vec(partition_strategy(), 1..4),
        containers in proptest::collection::vec(container_strategy(), 1..6),
    ) {
        let d = build_decomposition(&partitions, &containers);
        let Ok(p) = LockPlacement::striped_root(&d, 4) else { return Ok(()); };
        let opts = AnalyzerOptions {
            suppress_sweep_sort: true,
            ..Default::default()
        };
        let analyzer = Analyzer::with_options(Arc::clone(&d), p, opts);
        // Empty bound leaves the stripe columns unbound, so the sweep
        // takes all four stripes of each root-hosted edge.
        let diags = analyzer
            .analyze_insert(ColumnSet::new())
            .expect("unbound inserts always plan");
        prop_assert!(
            diags.iter().any(|x| x.kind == DiagnosticKind::UnsortedSweep),
            "reversed stripe sweep not flagged: {diags:?}"
        );
    }
}
