//! Error types for the synthesis compiler.

use std::fmt;

use relc_spec::SpecError;

/// Errors from building or validating decompositions and lock placements,
/// or from compiling relational operations against them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The decomposition graph is malformed (cycle, unreachable node,
    /// duplicate edge, bad root).
    MalformedDecomposition(String),
    /// The decomposition fails an adequacy condition of \[12\]: it cannot
    /// represent every relation satisfying the specification.
    Inadequate(String),
    /// The lock placement violates a well-formedness condition (§4.3):
    /// domination, path-sharing, striping, or speculation constraints.
    IllFormedPlacement(String),
    /// A container choice is incompatible with the lock placement (e.g. a
    /// concurrency-unsafe container on an edge whose placement admits
    /// concurrent access).
    IncompatibleContainer(String),
    /// The query planner found no valid plan for an operation under this
    /// decomposition and placement.
    NoValidPlan(String),
    /// An operation's arguments violate its contract (§2), e.g. `remove`
    /// with a non-key pattern.
    Spec(SpecError),
    /// A transaction closure aborted via [`Transaction::abort`]; all of
    /// its effects were rolled back.
    ///
    /// [`Transaction::abort`]: crate::txn::Transaction::abort
    TransactionAborted(String),
    /// The write-ahead log or checkpoint failed (I/O error, corrupt
    /// checkpoint, malformed record where the format demands one). The
    /// string carries the underlying error's description — `io::Error`
    /// itself is neither `Clone` nor `Eq`.
    ///
    /// **From a commit path this is *not* an abort.** When a transaction
    /// closure has already succeeded and this error surfaces from the
    /// durability wait, the transaction **did commit in memory** — its
    /// effects are published and visible to every later transaction —
    /// but durability is unknown (the record may or may not survive a
    /// crash). Do **not** retry the closure: the effects would be
    /// applied twice. The log is poisoned at this point, so every later
    /// commit on the same relation fails the same way until the log is
    /// reset — by a successful checkpoint (which snapshots the committed
    /// in-memory state wholesale and truncates the log) or by a process
    /// restart plus recovery.
    Durability(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MalformedDecomposition(m) => write!(f, "malformed decomposition: {m}"),
            CoreError::Inadequate(m) => write!(f, "decomposition is not adequate: {m}"),
            CoreError::IllFormedPlacement(m) => write!(f, "ill-formed lock placement: {m}"),
            CoreError::IncompatibleContainer(m) => write!(f, "incompatible container: {m}"),
            CoreError::NoValidPlan(m) => write!(f, "no valid query plan: {m}"),
            CoreError::Spec(e) => write!(f, "{e}"),
            CoreError::TransactionAborted(m) => write!(f, "transaction aborted: {m}"),
            CoreError::Durability(m) => write!(f, "durability: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for CoreError {
    fn from(e: SpecError) -> Self {
        CoreError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Inadequate("node x misses column weight".into());
        assert!(e.to_string().contains("adequate"));
        let e: CoreError = SpecError::UnknownColumn("zap".into()).into();
        assert!(e.to_string().contains("zap"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
