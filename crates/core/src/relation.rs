//! The synthesized concurrent relation: the public API of the system (§2).
//!
//! A [`ConcurrentRelation`] is the object the compiler produces for one
//! (decomposition, lock placement) pair: it owns the root of the
//! decomposition instance, compiles and caches one plan per operation
//! *shape* (the bound/output column sets), and runs each operation as a
//! two-phase, well-locked, deadlock-free transaction with automatic restart
//! and backoff. Operations are linearizable by construction (§4.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use relc_locks::{Backoff, LockStats, LockStatsSnapshot, TwoPhaseEngine};
#[cfg(doc)]
use relc_spec::SpecError;
use relc_spec::{ColumnSet, RangePattern, RelationSchema, Tuple};

use crate::decomp::Decomposition;
use crate::error::CoreError;
use crate::exec::Executor;
use crate::instance::{self, NodeInstance, NodeRef};
use crate::mvcc;
use crate::placement::{LockPlacement, LockToken};
use crate::planner::{
    InsertBatchPlan, InsertPlan, Plan, Planner, RemoveBatchPlan, RemovePlan, UpdatePlan,
};
use crate::txn::{Transaction, TxnError};

/// A concurrent relation synthesized from a decomposition and a lock
/// placement.
///
/// # Examples
///
/// ```
/// use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
/// use relc_containers::ContainerKind;
/// use relc_spec::Value;
///
/// let d = decomp::library::stick(ContainerKind::HashMap, ContainerKind::TreeMap);
/// let p = LockPlacement::coarse(&d)?;
/// let graph = ConcurrentRelation::new(d.clone(), p)?;
///
/// let s = d.schema().tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
/// let t = d.schema().tuple(&[("weight", Value::from(42))])?;
/// assert!(graph.insert(&s, &t)?);
/// assert!(!graph.insert(&s, &t)?); // put-if-absent
/// assert_eq!(graph.remove(&s)?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ConcurrentRelation {
    /// The schema is fixed for the relation's lifetime — migrations swap
    /// the representation, never the logical relation — so it is cached
    /// here and handed out by reference while `repr` changes underneath.
    schema: Arc<RelationSchema>,
    /// The current physical representation. Swapped atomically by
    /// [`Self::migrate_to`] under the migration write fence; every
    /// transaction attempt and snapshot reader pins one `Arc<Repr>` for
    /// its whole scope, so in-flight work keeps the representation it
    /// started on alive until it finishes.
    repr: RwLock<Arc<Repr>>,
    stats: Arc<LockStats>,
    len: AtomicUsize,
    always_sort_locks: AtomicBool,
    /// Unique id for the re-entrancy guard (stable across migrations;
    /// the per-representation plan memos key on [`Repr::id`] instead).
    id: u64,
    /// Per-relation snapshot-reader registry: a long-lived reader of
    /// *this* relation pins only this relation's version retirement, not
    /// every relation in the process. Shards of one sharded relation
    /// share a single registry so a cross-shard reader is one floor.
    /// Shared by every representation the relation migrates through.
    snapshots: Arc<relc_locks::SnapshotRegistry>,
    /// Top-level operation counters (see [`OpCountersSnapshot`]).
    ops: OpCounters,
    /// Number of completed [`Self::migrate_to`] cutovers.
    migrations: std::sync::atomic::AtomicU64,
    /// The write-ahead log, attached by [`Self::open_durable`] after
    /// recovery. `None` (the default) costs one branch on the commit
    /// path and nothing else — WAL off is zero-overhead.
    wal: Option<Arc<crate::wal::Wal>>,
}

/// One physical representation of a relation: a `(decomposition, lock
/// placement)` pair plus the instance tree that realizes it and the plan
/// caches compiled against it. [`ConcurrentRelation`] holds the *current*
/// representation behind an `RwLock<Arc<Repr>>`; live migration builds a
/// fresh `Repr` and swaps the pointer, while transactions and snapshot
/// readers that pinned the old one keep using it until they drop — at
/// which point the old instance tree retires through the epoch collector
/// like any other unlinked subtree.
pub(crate) struct Repr {
    /// Unique id for the thread-local plan memo (avoids cross-thread cache
    /// traffic on the shared plan maps in the per-operation hot path).
    /// Per representation, not per relation: plans compiled for the old
    /// decomposition must not leak into the new one after a migration.
    pub(crate) id: u64,
    pub(crate) decomp: Arc<Decomposition>,
    pub(crate) placement: Arc<LockPlacement>,
    pub(crate) planner: Planner,
    pub(crate) root: NodeRef,
    query_plans: RwLock<HashMap<(u64, u64), Arc<Plan>>>,
    range_plans: RwLock<HashMap<(u64, usize, u64), Arc<Plan>>>,
    insert_plans: RwLock<HashMap<u64, Arc<InsertPlan>>>,
    remove_plans: RwLock<HashMap<u64, Arc<RemovePlan>>>,
    update_plans: RwLock<HashMap<(u64, u64), Arc<UpdatePlan>>>,
    insert_batch_plans: RwLock<HashMap<u64, Arc<InsertBatchPlan>>>,
    remove_batch_plans: RwLock<HashMap<u64, Arc<RemoveBatchPlan>>>,
}

/// Top-level operation counters for one relation flavor, surfaced through
/// [`StatsSnapshot::ops`]. Counts public API calls (one `insert_all` of
/// `n` rows is `n` batch rows and one batch), not internal retries —
/// restart pressure is visible in [`LockStatsSnapshot::restarts`] instead.
#[derive(Default)]
pub(crate) struct OpCounters {
    pub(crate) inserts: std::sync::atomic::AtomicU64,
    pub(crate) removes: std::sync::atomic::AtomicU64,
    pub(crate) updates: std::sync::atomic::AtomicU64,
    pub(crate) queries: std::sync::atomic::AtomicU64,
    pub(crate) range_queries: std::sync::atomic::AtomicU64,
    pub(crate) contains_checks: std::sync::atomic::AtomicU64,
    pub(crate) batch_rows: std::sync::atomic::AtomicU64,
    pub(crate) transactions: std::sync::atomic::AtomicU64,
    pub(crate) read_transactions: std::sync::atomic::AtomicU64,
}

impl OpCounters {
    pub(crate) fn bump(counter: &std::sync::atomic::AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> OpCountersSnapshot {
        OpCountersSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            range_queries: self.range_queries.load(Ordering::Relaxed),
            contains_checks: self.contains_checks.load(Ordering::Relaxed),
            batch_rows: self.batch_rows.load(Ordering::Relaxed),
            transactions: self.transactions.load(Ordering::Relaxed),
            read_transactions: self.read_transactions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a relation's top-level operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCountersSnapshot {
    /// Single-shot `insert` calls.
    pub inserts: u64,
    /// Single-shot `remove` / `remove_returning` calls.
    pub removes: u64,
    /// Single-shot `update` calls.
    pub updates: u64,
    /// `query` / `snapshot` calls (lock-free snapshot reads).
    pub queries: u64,
    /// `query_range` calls.
    pub range_queries: u64,
    /// `contains` calls.
    pub contains_checks: u64,
    /// Rows submitted through `insert_all` / `remove_all` batches.
    pub batch_rows: u64,
    /// Explicit multi-operation `transaction` calls.
    pub transactions: u64,
    /// `read_transaction` calls.
    pub read_transactions: u64,
}

impl OpCountersSnapshot {
    /// Total top-level operations (each batch row counts once).
    pub fn total(&self) -> u64 {
        self.inserts
            + self.removes
            + self.updates
            + self.queries
            + self.range_queries
            + self.contains_checks
            + self.batch_rows
            + self.transactions
            + self.read_transactions
    }
}

/// The unified observability surface the autotuner consumes: lock,
/// version, and reclamation counters plus per-op counts and migration
/// progress, captured in one call on either relation flavor
/// ([`ConcurrentRelation::stats_snapshot`],
/// [`crate::ShardedRelation::stats_snapshot`]). The `locks`, `versions`,
/// and `reclamation` fields agree with the legacy `lock_stats()` /
/// `version_stats()` / `reclamation_stats()` accessors — they read the
/// same counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Two-phase engine counters (acquisitions, restarts, commits, …).
    pub locks: LockStatsSnapshot,
    /// Process-global MVCC version-chain counters.
    pub versions: relc_containers::VersionStats,
    /// Process-global epoch-reclamation counters.
    pub reclamation: relc_containers::ReclamationStats,
    /// Top-level operation counters of this relation flavor.
    pub ops: OpCountersSnapshot,
    /// Current tuple count (same caveat as [`ConcurrentRelation::len`]).
    pub len: usize,
    /// Completed live migrations on this relation.
    pub migrations: u64,
}

/// Monotonic relation ids for the thread-local plan memo.
static NEXT_RELATION_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

thread_local! {
    /// Relations with an open transaction on this thread (see
    /// [`ActiveTxnGuard`]). At most a handful deep in practice.
    static ACTIVE_TXNS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII marker for "this thread is inside a transaction on relation
/// `id`"; entering twice for the same relation is a certain
/// self-deadlock, so it panics with a diagnosis instead of hanging.
pub(crate) struct ActiveTxnGuard {
    id: u64,
}

impl ActiveTxnGuard {
    pub(crate) fn enter(id: u64) -> Self {
        ACTIVE_TXNS.with(|t| {
            let mut t = t.borrow_mut();
            assert!(
                !t.contains(&id),
                "re-entrant operation on a relation already inside a \
                 transaction on this thread: use the `Transaction` handle \
                 for every operation inside a transaction closure \
                 (calling single-shot methods there would self-deadlock)"
            );
            t.push(id);
        });
        ActiveTxnGuard { id }
    }
}

impl Drop for ActiveTxnGuard {
    fn drop(&mut self) {
        ACTIVE_TXNS.with(|t| {
            let mut t = t.borrow_mut();
            let pos = t
                .iter()
                .rposition(|&x| x == self.id)
                .expect("guard entered");
            t.remove(pos);
        });
    }
}

/// Memo key for range plans:
/// (relation id, bound-column bits, range column, output bits).
type RangePlanKey = (u64, u64, usize, u64);

thread_local! {
    static QUERY_MEMO: std::cell::RefCell<PlanMemo<(u64, u64, u64), Arc<Plan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static RANGE_MEMO: std::cell::RefCell<PlanMemo<RangePlanKey, Arc<Plan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static INSERT_MEMO: std::cell::RefCell<PlanMemo<(u64, u64), Arc<InsertPlan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static REMOVE_MEMO: std::cell::RefCell<PlanMemo<(u64, u64), Arc<RemovePlan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static UPDATE_MEMO: std::cell::RefCell<PlanMemo<(u64, u64, u64), Arc<UpdatePlan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static INSERT_BATCH_MEMO: std::cell::RefCell<PlanMemo<(u64, u64), Arc<InsertBatchPlan>>> =
        std::cell::RefCell::new(PlanMemo::new());
    static REMOVE_BATCH_MEMO: std::cell::RefCell<PlanMemo<(u64, u64), Arc<RemoveBatchPlan>>> =
        std::cell::RefCell::new(PlanMemo::new());
}

/// Ids of live relations. The thread-local memos above are keyed by
/// relation id and would otherwise retain Arc'd plans of dropped
/// relations forever on long-lived worker threads; once a memo grows past
/// its sweep point, inserting into it first drops every entry whose
/// relation is no longer here.
static LIVE_RELATIONS: std::sync::LazyLock<RwLock<std::collections::HashSet<u64>>> =
    std::sync::LazyLock::new(|| RwLock::new(std::collections::HashSet::new()));

/// Initial memo size at which an insert sweeps dead-relation entries. A
/// single relation memoizes one plan per operation *shape*, so a memo
/// this large means many relations have passed through this thread.
const MEMO_SWEEP_WATERMARK: usize = 128;

/// A thread-local plan memo with lazy dead-relation eviction. Sweeps are
/// O(len) with the live-set read lock held, but only ever run on a memo
/// *miss* (a fresh (relation, shape) pair on this thread), never on the
/// per-operation hot path — and the sweep point doubles past the live
/// population, so a thread legitimately serving many live relations does
/// not re-sweep fruitlessly on every miss.
struct PlanMemo<K, V> {
    map: HashMap<K, V>,
    /// Size at which the next insert sweeps first.
    sweep_at: usize,
}

impl<K: std::hash::Hash + Eq, V> PlanMemo<K, V> {
    fn new() -> Self {
        PlanMemo {
            map: HashMap::new(),
            sweep_at: MEMO_SWEEP_WATERMARK,
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    fn insert(&mut self, key: K, value: V, relation_id: impl Fn(&K) -> u64) {
        if self.map.len() >= self.sweep_at {
            let live = LIVE_RELATIONS.read().expect("live-relation set");
            self.map.retain(|k, _| live.contains(&relation_id(k)));
            drop(live);
            self.sweep_at = (self.map.len() * 2).max(MEMO_SWEEP_WATERMARK);
        }
        self.map.insert(key, value);
    }
}

/// The shared body of every plan accessor: probe the thread-local memo,
/// then the relation's shared cache (building and publishing the plan on
/// a miss), then fill the memo. One definition, six plan kinds — the
/// memo-sweep and double-planning subtleties live here only.
fn plan_cached<MK, CK, P>(
    memo: &'static std::thread::LocalKey<std::cell::RefCell<PlanMemo<MK, Arc<P>>>>,
    memo_key: MK,
    rel_id: fn(&MK) -> u64,
    cache: &RwLock<HashMap<CK, Arc<P>>>,
    cache_key: CK,
    build: impl FnOnce() -> Result<P, CoreError>,
) -> Result<Arc<P>, CoreError>
where
    MK: std::hash::Hash + Eq,
    CK: std::hash::Hash + Eq,
{
    if let Some(p) = memo.with(|m| m.borrow().get(&memo_key).cloned()) {
        return Ok(p);
    }
    let cached = cache.read().expect("plan cache").get(&cache_key).cloned();
    let plan = match cached {
        Some(p) => p,
        None => {
            let plan = Arc::new(build()?);
            cache
                .write()
                .expect("plan cache")
                .insert(cache_key, Arc::clone(&plan));
            plan
        }
    };
    memo.with(|m| {
        m.borrow_mut().insert(memo_key, Arc::clone(&plan), rel_id);
    });
    Ok(plan)
}

impl Repr {
    /// Builds a fresh (empty) representation.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllFormedPlacement`] if the placement belongs to a
    /// different decomposition.
    pub(crate) fn new(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
    ) -> Result<Arc<Self>, CoreError> {
        if !Arc::ptr_eq(placement.decomposition(), &decomp) {
            return Err(CoreError::IllFormedPlacement(
                "placement belongs to a different decomposition".into(),
            ));
        }
        let root = NodeInstance::new(&decomp, &placement, decomp.root(), Tuple::empty());
        let planner = Planner::new(Arc::clone(&decomp), Arc::clone(&placement));
        let id = NEXT_RELATION_ID.fetch_add(1, Ordering::Relaxed);
        LIVE_RELATIONS
            .write()
            .expect("live-relation set")
            .insert(id);
        Ok(Arc::new(Repr {
            id,
            decomp,
            placement,
            planner,
            root,
            query_plans: RwLock::new(HashMap::new()),
            range_plans: RwLock::new(HashMap::new()),
            insert_plans: RwLock::new(HashMap::new()),
            remove_plans: RwLock::new(HashMap::new()),
            update_plans: RwLock::new(HashMap::new()),
            insert_batch_plans: RwLock::new(HashMap::new()),
            remove_batch_plans: RwLock::new(HashMap::new()),
        }))
    }

    /// The root node instance of this representation's tree.
    pub(crate) fn root(&self) -> &NodeRef {
        &self.root
    }

    /// Snapshot query at an externally-captured `(snap, guard)` pair —
    /// readers capture a representation and a registration together, so
    /// the traversal always runs against the tree its snapshot was
    /// registered for. `stats` is the owning relation's counter sink.
    pub(crate) fn snapshot_query_at(
        &self,
        stats: &LockStats,
        s: &Tuple,
        cols: ColumnSet,
        snap: u64,
        guard: &relc_containers::epoch::Guard,
    ) -> Result<Vec<Tuple>, CoreError> {
        let plan = self.query_plan(s.dom(), cols)?;
        stats.record_snapshot_reads(1);
        Ok(mvcc::snapshot_query(
            &self.decomp,
            &plan,
            s,
            &self.root,
            snap,
            guard,
        ))
    }

    /// Snapshot range query at an externally-captured `(snap, guard)`
    /// pair; see [`Self::snapshot_query_at`].
    pub(crate) fn snapshot_query_range_at(
        &self,
        stats: &LockStats,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
        snap: u64,
        guard: &relc_containers::epoch::Guard,
    ) -> Result<Vec<Tuple>, CoreError> {
        let plan = self.range_plan(s.dom(), range, cols)?;
        stats.record_snapshot_reads(1);
        Ok(mvcc::snapshot_query_range(
            &self.decomp,
            &plan,
            s,
            range,
            &self.root,
            snap,
            guard,
        ))
    }

    /// Snapshot existence check at an externally-captured `(snap, guard)`
    /// pair; see [`Self::snapshot_query_at`].
    pub(crate) fn snapshot_exists_at(
        &self,
        stats: &LockStats,
        s: &Tuple,
        snap: u64,
        guard: &relc_containers::epoch::Guard,
    ) -> Result<bool, CoreError> {
        let plan = self.query_plan(s.dom(), ColumnSet::EMPTY)?;
        stats.record_snapshot_reads(1);
        Ok(mvcc::snapshot_exists(
            &self.decomp,
            &plan,
            s,
            &self.root,
            snap,
            guard,
        ))
    }

    pub(crate) fn query_plan(
        &self,
        bound: ColumnSet,
        output: ColumnSet,
    ) -> Result<Arc<Plan>, CoreError> {
        plan_cached(
            &QUERY_MEMO,
            (self.id, bound.bits(), output.bits()),
            |k| k.0,
            &self.query_plans,
            (bound.bits(), output.bits()),
            || self.planner.plan_query(bound, output),
        )
    }

    pub(crate) fn range_plan(
        &self,
        bound: ColumnSet,
        range: &RangePattern,
        output: ColumnSet,
    ) -> Result<Arc<Plan>, CoreError> {
        let col = range.col().index();
        plan_cached(
            &RANGE_MEMO,
            (self.id, bound.bits(), col, output.bits()),
            |k| k.0,
            &self.range_plans,
            (bound.bits(), col, output.bits()),
            || self.planner.plan_range(bound, range.col(), output),
        )
    }

    pub(crate) fn insert_plan(&self, bound: ColumnSet) -> Result<Arc<InsertPlan>, CoreError> {
        plan_cached(
            &INSERT_MEMO,
            (self.id, bound.bits()),
            |k| k.0,
            &self.insert_plans,
            bound.bits(),
            || self.planner.plan_insert(bound),
        )
    }

    pub(crate) fn remove_plan(&self, bound: ColumnSet) -> Result<Arc<RemovePlan>, CoreError> {
        plan_cached(
            &REMOVE_MEMO,
            (self.id, bound.bits()),
            |k| k.0,
            &self.remove_plans,
            bound.bits(),
            || self.planner.plan_remove(bound),
        )
    }

    pub(crate) fn insert_batch_plan(
        &self,
        bound: ColumnSet,
    ) -> Result<Arc<InsertBatchPlan>, CoreError> {
        plan_cached(
            &INSERT_BATCH_MEMO,
            (self.id, bound.bits()),
            |k| k.0,
            &self.insert_batch_plans,
            bound.bits(),
            || self.planner.plan_insert_batch(bound),
        )
    }

    pub(crate) fn remove_batch_plan(
        &self,
        bound: ColumnSet,
    ) -> Result<Arc<RemoveBatchPlan>, CoreError> {
        plan_cached(
            &REMOVE_BATCH_MEMO,
            (self.id, bound.bits()),
            |k| k.0,
            &self.remove_batch_plans,
            bound.bits(),
            || self.planner.plan_remove_batch(bound),
        )
    }

    pub(crate) fn update_plan(
        &self,
        bound: ColumnSet,
        updated: ColumnSet,
    ) -> Result<Arc<UpdatePlan>, CoreError> {
        plan_cached(
            &UPDATE_MEMO,
            (self.id, bound.bits(), updated.bits()),
            |k| k.0,
            &self.update_plans,
            (bound.bits(), updated.bits()),
            || self.planner.plan_update(bound, updated),
        )
    }
}

impl Drop for Repr {
    fn drop(&mut self) {
        // Unregister so the thread-local plan memos can shed this
        // representation's entries at their next sweep.
        LIVE_RELATIONS
            .write()
            .expect("live-relation set")
            .remove(&self.id);
    }
}

impl ConcurrentRelation {
    /// Synthesizes a relation from a decomposition and a placement.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllFormedPlacement`] if the placement belongs to a
    /// different decomposition.
    pub fn new(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
    ) -> Result<Self, CoreError> {
        Self::new_with_registry(decomp, placement, relc_locks::SnapshotRegistry::new())
    }

    /// As [`Self::new`], but registering snapshot readers with the given
    /// registry — the sharding layer passes one registry to every shard
    /// so a cross-shard reader establishes a single retirement floor.
    pub(crate) fn new_with_registry(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        snapshots: Arc<relc_locks::SnapshotRegistry>,
    ) -> Result<Self, CoreError> {
        let repr = Repr::new(decomp, placement)?;
        let schema = Arc::clone(repr.decomp.schema());
        Ok(ConcurrentRelation {
            schema,
            repr: RwLock::new(repr),
            stats: Arc::new(LockStats::new()),
            len: AtomicUsize::new(0),
            always_sort_locks: AtomicBool::new(false),
            id: NEXT_RELATION_ID.fetch_add(1, Ordering::Relaxed),
            snapshots,
            ops: OpCounters::default(),
            migrations: std::sync::atomic::AtomicU64::new(0),
            wal: None,
        })
    }

    /// The relation's schema (fixed for the relation's lifetime — live
    /// migration swaps the representation, never the logical relation).
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The decomposition currently representing the relation. Owned:
    /// [`Self::migrate_to`] may install a different representation at any
    /// moment, so callers get a pinned `Arc`, not a reference into the
    /// relation.
    pub fn decomposition(&self) -> Arc<Decomposition> {
        Arc::clone(&self.current_repr().decomp)
    }

    /// The lock placement currently in force (owned, like
    /// [`Self::decomposition`]).
    pub fn placement(&self) -> Arc<LockPlacement> {
        Arc::clone(&self.current_repr().placement)
    }

    /// The current representation's planner (exposed for plan inspection
    /// and rendering; owned, like [`Self::decomposition`]).
    pub fn planner(&self) -> Planner {
        self.current_repr().planner.clone()
    }

    /// Pins the current representation. Cheap (one `RwLock` read + `Arc`
    /// clone); writers are only ever [`Self::migrate_to`]'s pointer swap.
    pub(crate) fn current_repr(&self) -> Arc<Repr> {
        Arc::clone(&self.repr.read().expect("repr lock"))
    }

    /// Installs a new representation. Called only under the migration
    /// write fence (all root stripes held exclusively), with the new
    /// tree fully loaded and its bulk-load commit stamps published.
    pub(crate) fn install_repr(&self, repr: Arc<Repr>) {
        *self.repr.write().expect("repr lock") = repr;
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of completed [`Self::migrate_to`] cutovers.
    pub fn migration_count(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Captures the unified observability surface: lock + version +
    /// reclamation counters, per-op counts, the tuple count, and the
    /// migration count, in one struct (the autotuner's input).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            locks: self.stats.snapshot(),
            versions: relc_containers::version_stats(),
            reclamation: relc_containers::reclamation_stats(),
            ops: self.ops.snapshot(),
            len: self.len(),
            migrations: self.migration_count(),
        }
    }

    /// Lock statistics accumulated so far.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.stats.snapshot()
    }

    /// Epoch reclamation counters (retired / reclaimed deferred
    /// destructions from lock-free containers — today the skip list).
    ///
    /// The epoch domain is process-global, so this aggregates every
    /// epoch-managed container in the process, not just this relation's
    /// edges; take deltas around a workload. Churn suites assert the
    /// in-flight count stays bounded and returns to zero after
    /// [`Self::flush_reclamation`] at quiescence.
    pub fn reclamation_stats(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_stats()
    }

    /// Test-only: drives the epoch collector to quiescence (no thread
    /// pinned ⇒ everything retired is freed) and returns the counters.
    pub fn flush_reclamation(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_flush()
    }

    /// Ablation knob (§5.2): ignore the planner's sort-elision analysis and
    /// always sort lock sets at runtime.
    pub fn set_always_sort_locks(&self, v: bool) {
        self.always_sort_locks.store(v, Ordering::Relaxed);
    }

    /// Number of tuples (maintained outside the locking protocol; exact
    /// under quiescence, approximate during concurrent mutation).
    ///
    /// The counter is published *before* a committing transaction releases
    /// its locks (see [`Self::apply_len_delta`]), so any transaction
    /// ordered after a commit — anything that contends on one of its locks
    /// — observes the updated count: at quiescence
    /// `len() == snapshot().len()` always holds, and the stress suites
    /// assert it.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the relation is empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` as one two-phase transaction over this relation: every
    /// operation invoked on the [`Transaction`] shares a single lock
    /// scope, released only when the closure returns (§4.2's
    /// serializability argument applies to the whole sequence). When the
    /// lock engine demands a restart — out-of-order contention, a
    /// shared→exclusive upgrade, a failed speculation — the closure's
    /// effects are rolled back and the **whole closure re-runs** after
    /// randomized backoff, which is what makes read-modify-write
    /// sequences atomic.
    ///
    /// The closure must propagate [`TxnError`] with `?`; returning
    /// `Err(tx.abort(..))` rolls back and surfaces
    /// [`CoreError::TransactionAborted`]. This is enforced: a closure
    /// that swallows a restart and returns `Ok` anyway is rolled back
    /// and re-run, never committed.
    ///
    /// Closures may run several times and must therefore be free of side
    /// effects other than operations on the transaction (or idempotent
    /// ones).
    ///
    /// # Re-entrancy
    ///
    /// All operations on this relation inside the closure must go through
    /// `tx`. Calling a single-shot method (or opening a nested
    /// transaction) on the *same relation* from inside the closure would
    /// open a second lock engine on the same thread and self-deadlock on
    /// the locks the transaction already holds; the runtime detects this
    /// and panics instead of hanging.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
    /// use relc_containers::ContainerKind;
    /// use relc_spec::Value;
    ///
    /// let d = decomp::library::stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    /// let p = LockPlacement::coarse(&d)?;
    /// let graph = ConcurrentRelation::new(d.clone(), p)?;
    /// let edge = d.schema().tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
    /// let w = |w: i64| d.schema().tuple(&[("weight", Value::from(w))]).unwrap();
    ///
    /// // Atomic read-modify-write: halve the weight if the edge exists.
    /// graph.insert(&edge, &w(42))?;
    /// let halved = graph.transaction(|tx| {
    ///     match tx.remove_returning(&edge)? {
    ///         Some(old) => {
    ///             let wcol = tx.relation().schema().column("weight").unwrap();
    ///             let half = match old.get(wcol) {
    ///                 Some(v) => v.as_int().unwrap() / 2,
    ///                 None => 0,
    ///             };
    ///             tx.insert(&edge, &w(half))?;
    ///             Ok(true)
    ///         }
    ///         None => Ok(false),
    ///     }
    /// })?;
    /// assert!(halved);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Whatever [`TxnError::Core`] error the closure propagates (planner
    /// and spec errors from the operations, or an explicit abort).
    /// [`TxnError::Restart`] never escapes — it is consumed by the retry
    /// loop.
    ///
    /// On a durable relation, [`CoreError::Durability`] can also surface
    /// *after* the closure succeeded, from the group-commit fsync wait.
    /// That case is **not** an abort: the transaction already committed
    /// in memory (its effects are published and its locks released) but
    /// durability is unknown. Retrying the closure would apply its
    /// effects twice — treat the error as fatal for this relation (see
    /// the [`CoreError::Durability`] docs).
    pub fn transaction<R>(
        &self,
        f: impl FnMut(&mut Transaction<'_>) -> Result<R, TxnError>,
    ) -> Result<R, CoreError> {
        OpCounters::bump(&self.ops.transactions, 1);
        self.run_transaction(false, f)
    }

    /// The transaction loop shared by [`Self::transaction`] and the
    /// single-shot sugar: run, commit on success, roll back effects and
    /// either retry (restart) or surface the error (abort).
    fn run_transaction<R>(
        &self,
        single_shot: bool,
        mut f: impl FnMut(&mut Transaction<'_>) -> Result<R, TxnError>,
    ) -> Result<R, CoreError> {
        // Re-entrancy guard: a second engine on the same thread for the
        // same relation would block on locks the first engine holds — a
        // guaranteed self-deadlock (or restart livelock). Fail loudly.
        let _guard = ActiveTxnGuard::enter(self.id);
        let mut engine: TwoPhaseEngine<LockToken> = TwoPhaseEngine::new(Arc::clone(&self.stats));
        let mut backoff = Backoff::new();
        loop {
            // Pin the representation for this attempt. A migration may
            // install a new one while this attempt runs — but only after
            // draining every writer through the all-stripe fence, and any
            // attempt that acquired at least one lock holds a root-hosted
            // one, so a completed swap implies this attempt held nothing
            // when the fence was taken. The `Arc::ptr_eq` check below
            // catches exactly that stale window: the attempt rolls back
            // its (now-unreachable) effects and retries on the new tree.
            let repr = self.current_repr();
            let mut exec = Executor::new(&repr.decomp, &repr.placement, &mut engine);
            exec.always_sort_locks = self.always_sort_locks.load(Ordering::Relaxed);
            let mut tx = Transaction::new(self, &repr, exec, single_shot);
            match f(&mut tx) {
                Ok(r) if !tx.needs_restart() && Arc::ptr_eq(&self.current_repr(), &repr) => {
                    let delta = tx.len_delta();
                    let redo = tx.take_redo();
                    let scope = tx.take_mvcc();
                    drop(tx);
                    // The counter moves *before* the locks release: a
                    // delta applied after `finish()` would let an observer
                    // acquire the freed locks, read the new contents, and
                    // still see the stale count. Likewise the MVCC commit
                    // stamp publishes before the locks release — that
                    // ordering is what lets a snapshot reader treat
                    // "stamp ≤ snapshot" as "fully committed".
                    self.apply_len_delta(delta);
                    let mut wal_seq = None;
                    match self.wal.as_ref().filter(|_| !redo.is_empty()) {
                        Some(wal) => {
                            // Encode outside the order lock, append inside
                            // it: the order lock spans timestamp allocation
                            // and the buffer append, so log order equals
                            // timestamp order and every flushed prefix is a
                            // committed prefix. The fsync wait happens off
                            // the lock path, after release.
                            let ops_bytes = crate::wal::encode_ops(&redo);
                            let order = wal.lock_order();
                            mvcc::finish_attempt_with(
                                &repr.placement,
                                &self.snapshots,
                                std::slice::from_ref(&scope),
                                |ts| {
                                    wal_seq = Some(wal.append_commit(ts, false, &ops_bytes));
                                    wal.raise_applied_through(ts);
                                    drop(order);
                                },
                            );
                        }
                        None => mvcc::finish_attempt(
                            &repr.placement,
                            &self.snapshots,
                            std::slice::from_ref(&scope),
                        ),
                    }
                    engine.finish();
                    // Group-commit durability wait, after lock release:
                    // conflicting transactions append in timestamp order
                    // under the 2PL locks, and per-log durability is
                    // prefix-closed, so a durable dependent implies a
                    // durable antecedent — recovery still yields a
                    // consistent committed prefix. (Sound here because a
                    // single-instance relation has exactly one log; the
                    // sharded commit path must instead wait *before*
                    // releasing, since prefix-closure says nothing about
                    // cross-log dependencies.) An `Err` from this wait
                    // means committed-in-memory-but-durability-unknown,
                    // not aborted — see [`CoreError::Durability`].
                    if let (Some(wal), Some(seq)) = (self.wal.as_ref(), wal_seq) {
                        wal.wait_durable(seq)?;
                    }
                    return Ok(r);
                }
                // Ok with a swallowed MustRestart must not commit — the
                // failed operation may be half-applied (an update whose
                // unlink landed but whose re-insert restarted). Enforced,
                // not just documented: handled exactly like a propagated
                // restart.
                // This arm also catches a successful closure whose
                // representation was swapped out mid-attempt (the
                // `Arc::ptr_eq` guard above): its effects landed in the
                // retired tree, so they are rolled back — under the
                // attempt's own still-held locks — and the closure
                // re-runs against the new representation.
                Ok(_) | Err(TxnError::Restart(_)) => {
                    tx.rollback_effects();
                    let scope = tx.take_mvcc();
                    drop(tx);
                    // The aborted attempt's versions (original writes plus
                    // the compensations that net them out) still publish
                    // at one timestamp, before the locks release.
                    mvcc::finish_attempt(
                        &repr.placement,
                        &self.snapshots,
                        std::slice::from_ref(&scope),
                    );
                    engine.rollback();
                    backoff.wait();
                }
                Err(TxnError::Core(e)) => {
                    tx.rollback_effects();
                    let scope = tx.take_mvcc();
                    drop(tx);
                    mvcc::finish_attempt(
                        &repr.placement,
                        &self.snapshots,
                        std::slice::from_ref(&scope),
                    );
                    // Only explicit application aborts count as user
                    // rollbacks; validation errors (bad patterns, no valid
                    // plan) never applied an effect and would dilute the
                    // counter.
                    if matches!(e, CoreError::TransactionAborted(_)) {
                        engine.rollback_user();
                    } else {
                        engine.rollback();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// `insert r s t` (§2): inserts `s ∪ t` provided no existing tuple
    /// extends `s`; returns whether the insert happened. Generalizes
    /// put-if-absent. Sugar for a one-operation [`Self::transaction`].
    ///
    /// # Errors
    ///
    /// * [`SpecError::OverlappingInsertDomains`] if `s` and `t` share
    ///   columns;
    /// * [`SpecError::NotAValuation`] if `s ∪ t` is not a full tuple;
    /// * [`CoreError::NoValidPlan`] if the placement cannot support the
    ///   existence check for this shape of `s`.
    pub fn insert(&self, s: &Tuple, t: &Tuple) -> Result<bool, CoreError> {
        OpCounters::bump(&self.ops.inserts, 1);
        self.run_transaction(true, |tx| tx.insert(s, t))
    }

    /// Batched `insert r s t` (§2) over many rows as **one transaction**:
    /// semantically the sequential fold of [`Self::insert`] over `rows`
    /// (one put-if-absent result per row, duplicates losing to the first
    /// occurrence), but atomic — observers see all of the batch's effects
    /// or none — and amortized: the plan is fetched once, every row's root
    /// lock targets are deduplicated and acquired in one globally sorted
    /// sweep, and root-edge publications are fused into one bulk container
    /// write per edge ([`relc_containers::Container::extend_entries`]).
    ///
    /// A validation error in *any* row aborts the whole batch with no
    /// effect.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
    /// use relc_containers::ContainerKind;
    /// use relc_spec::Value;
    ///
    /// let d = decomp::library::stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    /// let graph = ConcurrentRelation::new(d.clone(), LockPlacement::coarse(&d)?)?;
    /// let row = |s: i64, t: i64, w: i64| {
    ///     (
    ///         d.schema().tuple(&[("src", Value::from(s)), ("dst", Value::from(t))]).unwrap(),
    ///         d.schema().tuple(&[("weight", Value::from(w))]).unwrap(),
    ///     )
    /// };
    /// let inserted = graph.insert_all(&[row(1, 2, 10), row(1, 3, 11), row(1, 2, 99)])?;
    /// assert_eq!(inserted, vec![true, true, false]); // duplicate key loses
    /// assert_eq!(graph.len(), 2);
    /// let removed = graph.remove_all(&[row(1, 2, 0).0, row(1, 3, 0).0, row(9, 9, 0).0])?;
    /// assert_eq!(removed, vec![true, true, false]); // per-key outcomes
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Self::insert`], for any row; the batch has no effect.
    pub fn insert_all(&self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, CoreError> {
        OpCounters::bump(&self.ops.batch_rows, rows.len() as u64);
        // Single-shot: the batch is the whole transaction, which lets the
        // executor skip the fresh-subtree host locks (the batch still
        // records its undo segment — a mid-batch restart rolls it back).
        self.run_transaction(true, |tx| tx.insert_all(rows))
    }

    /// Batched `remove r s` (§2) over many keys as one atomic, amortized
    /// transaction: the sequential fold of [`Self::remove`] over `keys`
    /// (duplicate keys remove once), with one plan fetch and one globally
    /// sorted bulk lock sweep. Returns one outcome per key — whether that
    /// key's tuple existed and was removed (a later duplicate of a removed
    /// key reads `false`), mirroring [`Self::insert_all`]'s per-row
    /// results; `results.iter().filter(|b| **b).count()` is the removed
    /// total.
    ///
    /// # Errors
    ///
    /// As for [`Self::remove`], for any key; the batch has no effect.
    pub fn remove_all(&self, keys: &[Tuple]) -> Result<Vec<bool>, CoreError> {
        OpCounters::bump(&self.ops.batch_rows, keys.len() as u64);
        self.run_transaction(true, |tx| tx.remove_all(keys))
    }

    /// `remove r s` (§2): removes the tuple matching the key pattern `s`,
    /// returning how many tuples were removed (0 or 1, since `s` must be a
    /// key). Sugar for a one-operation [`Self::transaction`].
    ///
    /// # Errors
    ///
    /// * [`SpecError::RemoveNotByKey`] if `dom s` is not a key;
    /// * [`CoreError::NoValidPlan`] if the placement cannot locate tuples
    ///   for this shape of `s`.
    pub fn remove(&self, s: &Tuple) -> Result<usize, CoreError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`Self::remove`], but returns the removed tuple.
    ///
    /// # Errors
    ///
    /// As for [`Self::remove`].
    pub fn remove_returning(&self, s: &Tuple) -> Result<Option<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.removes, 1);
        self.run_transaction(true, |tx| tx.remove_returning(s))
    }

    /// `update r s t` (§2): replaces the unique tuple `u ⊇ s` with
    /// `u ⊕ t` (right-biased override), returning the replaced tuple, or
    /// `None` if no tuple extends `s`. `s` must be a key, and `dom t` must
    /// be disjoint from `dom s`. Sugar for a one-operation
    /// [`Self::transaction`].
    ///
    /// # Errors
    ///
    /// * [`SpecError::RemoveNotByKey`] if `dom s` is not a key;
    /// * [`SpecError::EmptyUpdate`] if `t` assigns nothing;
    /// * [`SpecError::UpdateOverlapsPattern`] if `t` assigns a column of
    ///   `dom s`;
    /// * [`CoreError::NoValidPlan`] if the placement cannot locate tuples
    ///   for this shape of `s`.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
    /// use relc_containers::ContainerKind;
    /// use relc_spec::Value;
    ///
    /// let d = decomp::library::stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    /// let graph = ConcurrentRelation::new(d.clone(), LockPlacement::coarse(&d)?)?;
    /// let edge = d.schema().tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
    /// let w = |w: i64| d.schema().tuple(&[("weight", Value::from(w))]).unwrap();
    /// graph.insert(&edge, &w(42))?;
    /// let old = graph.update(&edge, &w(7))?.expect("edge exists");
    /// let wcol = d.schema().column("weight")?;
    /// assert_eq!(old.get(wcol), Some(&Value::from(42)));
    /// assert_eq!(graph.update(&edge, &w(8))?.unwrap().get(wcol), Some(&Value::from(7)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn update(&self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.updates, 1);
        self.run_transaction(true, |tx| tx.update(s, t))
    }

    /// `query r s C` (§2): the projection onto `cols` of all tuples
    /// extending `s`, deduplicated and sorted. Sugar for a one-operation
    /// [`Self::transaction`].
    ///
    /// # Errors
    ///
    /// [`CoreError::NoValidPlan`] if no chain can bind this shape under the
    /// placement (e.g. it would have to scan a speculative edge).
    /// Since the MVCC layer landed this routes onto the lock-free
    /// snapshot path: the result is a serializable read at the current
    /// commit timestamp, it acquires no locks, and it can neither block
    /// nor restart writers. Reads that must observe a transaction's own
    /// uncommitted writes use [`Transaction::query`] instead.
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.queries, 1);
        self.open_reader(|snap| snap.query(s, cols))
    }

    /// Range query: the projection onto `cols` of all tuples extending
    /// `s` whose `range` column falls inside the interval, ordered by
    /// (range-column value, projection), deduplicated, truncated to
    /// `range.limit()` if set.
    ///
    /// Like [`Self::query`] this routes onto the lock-free snapshot
    /// path: one consistent cut, no locks, writers neither blocked nor
    /// restarted. When the planner can put an ordered container on the
    /// range column the traversal visits only the in-interval prefix
    /// (and stops at `limit` distinct results); otherwise it degrades to
    /// a filtered scan with identical results.
    ///
    /// # Errors
    ///
    /// As for [`Self::query`]. A range column already bound by `s` is
    /// not an error: the interval simply filters the bound value.
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.range_queries, 1);
        self.open_reader(|snap| snap.query_range(s, range, cols))
    }

    /// Whether any tuple extends `s` — a short-circuiting existence check
    /// that stops at the first witness tuple instead of materializing,
    /// deduplicating, and sorting the full projection the way
    /// `query(s, ∅)` would.
    ///
    /// # Errors
    ///
    /// As for [`Self::query`].
    /// Routes onto the lock-free snapshot path, like [`Self::query`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        OpCounters::bump(&self.ops.contains_checks, 1);
        self.open_reader(|snap| snap.contains(s))
    }

    /// All tuples, sorted (a `query` with an empty pattern and all columns).
    ///
    /// # Errors
    ///
    /// As for [`Self::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        self.query(&Tuple::empty(), self.schema().columns())
    }

    /// Runs a lock-free read-only transaction: every read through the
    /// [`SnapshotReader`] observes one consistent snapshot of the
    /// relation — the state as of the commit timestamp captured at entry
    /// — no matter how many writers commit while the closure runs.
    /// Readers acquire no locks, never restart, and never block or
    /// restart writers; they traverse the decomposition's shadow version
    /// indexes under an epoch guard (see [`crate::mvcc`]).
    ///
    /// Snapshot reads are *serializable at their snapshot timestamp*:
    /// the closure's reads interleave with concurrent writers exactly as
    /// if the whole closure ran atomically at the moment of entry.
    ///
    /// # Examples
    ///
    /// ```
    /// use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
    /// use relc_containers::ContainerKind;
    /// use relc_spec::Value;
    ///
    /// let d = decomp::library::stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    /// let graph = ConcurrentRelation::new(d.clone(), LockPlacement::coarse(&d)?)?;
    /// let s = d.schema().tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
    /// let t = d.schema().tuple(&[("weight", Value::from(42))])?;
    /// graph.insert(&s, &t)?;
    /// let (all, n) = graph.read_transaction(|snap| {
    ///     let all = snap.snapshot()?;
    ///     // A second read in the same transaction sees the same state,
    ///     // even if a writer committed in between.
    ///     Ok::<_, relc::CoreError>((all.clone(), all.len()))
    /// })?;
    /// assert_eq!(n, 1);
    /// assert_eq!(all.len(), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if called on a thread that is already inside a transaction
    /// on this relation (the same re-entrancy diagnosis as the locked
    /// single-shot operations, kept for API uniformity).
    pub fn read_transaction<R>(&self, f: impl FnOnce(&SnapshotReader<'_>) -> R) -> R {
        OpCounters::bump(&self.ops.read_transactions, 1);
        self.open_reader(f)
    }

    /// The body of [`Self::read_transaction`], shared with the
    /// single-read sugar (`query`/`query_range`/`contains`) so those
    /// count under their own op counters rather than as read
    /// transactions.
    fn open_reader<R>(&self, f: impl FnOnce(&SnapshotReader<'_>) -> R) -> R {
        let _guard = ActiveTxnGuard::enter(self.id);
        let reader = SnapshotReader::open(self);
        f(&reader)
    }

    /// Process-global version-chain counters (`created` / `retired`);
    /// the MVCC analogue of [`Self::reclamation_stats`].
    pub fn version_stats(&self) -> relc_containers::VersionStats {
        relc_containers::version_stats()
    }

    /// Structural verification of the quiescent instance (tests):
    /// branch agreement, sharing, no exhausted instances, and the MVCC
    /// version-chain invariants (strictly decreasing stamps, no
    /// tentative stamps, compaction to the retirement floor, mirror
    /// completeness against the containers — see
    /// [`mvcc::verify_versions`](crate::mvcc)). Returns the represented
    /// relation.
    ///
    /// # Errors
    ///
    /// A description of the violated invariant.
    pub fn verify(&self) -> Result<std::collections::BTreeSet<Tuple>, String> {
        let repr = self.current_repr();
        mvcc::verify_versions(&repr.decomp, &repr.root, &self.snapshots)?;
        instance::verify_instance(&repr.decomp, &repr.root)
    }

    /// Total number of versions held across every version chain reachable
    /// from the root (test support for retirement regressions: after
    /// churn at quiescence this should return to one version per live
    /// entry — even while a snapshot reader on a *different* relation
    /// stays open, since registries are per relation).
    pub fn version_footprint(&self) -> usize {
        let repr = self.current_repr();
        mvcc::version_footprint(&repr.decomp, &repr.root)
    }

    /// The snapshot-reader registry owned by this relation (advanced:
    /// registering directly pins this relation's version retirement
    /// without opening a [`Self::read_transaction`]; most callers never
    /// need this).
    pub fn snapshots(&self) -> &Arc<relc_locks::SnapshotRegistry> {
        &self.snapshots
    }

    /// Applies a committed transaction's net tuple-count change. Called
    /// while the transaction's locks are still held (release-ordered, so
    /// the count is visible to anything ordered after the commit).
    pub(crate) fn apply_len_delta(&self, delta: isize) {
        match delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.len.fetch_add(delta as usize, Ordering::Release);
            }
            std::cmp::Ordering::Less => {
                self.len.fetch_sub(delta.unsigned_abs(), Ordering::Release);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// The statistics sink shared with this relation's engines (the
    /// sharding layer builds per-shard engines against it).
    pub(crate) fn stats_arc(&self) -> &Arc<LockStats> {
        &self.stats
    }

    /// Current value of the §5.2 sort-elision ablation knob.
    pub(crate) fn always_sort_locks(&self) -> bool {
        self.always_sort_locks.load(Ordering::Relaxed)
    }

    /// The relation's unique id (for the re-entrancy guard).
    pub(crate) fn relation_id(&self) -> u64 {
        self.id
    }

    /// Live migration: rebuilds the relation under a new `(decomposition,
    /// placement)` pair and atomically cuts traffic over, without ever
    /// blocking readers and with writers paused only for the cutover
    /// itself.
    ///
    /// The protocol:
    ///
    /// 1. **Fence.** Acquire every stripe of every root-hosted edge
    ///    exclusively (the 2PL engine's all-stripe sweep, widened to the
    ///    whole root — [`Executor`]'s migration fence). Every locked
    ///    operation holds at least one root-hosted lock for its whole
    ///    two-phase scope, so holding the complete sweep drains all
    ///    in-flight writers and blocks new ones.
    /// 2. **Cut.** Capture one MVCC commit timestamp. Under the fence no
    ///    writer can commit, so the old tree is frozen at exactly this
    ///    cut.
    /// 3. **Bulk load.** Read the full contents at the cut (lock-free
    ///    snapshot read) and load them into a freshly built tree for the
    ///    new pair via the batched `insert_all` sweep (one fused
    ///    container write per root edge).
    /// 4. **Swap.** Atomically install the new representation, then
    ///    release the fence.
    ///
    /// Snapshot readers registered before the swap pinned the old
    /// representation and keep reading it — frozen at their snapshot —
    /// until they drop; the old tree then retires through the epoch
    /// collector. Writers that raced the fence (captured the old
    /// representation but acquired their locks only after the swap) fail
    /// the commit-time representation check in the transaction loop, roll
    /// back under their own locks, and retry against the new tree.
    ///
    /// # Errors
    ///
    /// * [`CoreError::IllFormedPlacement`] if `placement` belongs to a
    ///   different decomposition, or if `decomp`'s schema differs from
    ///   this relation's (migration changes the representation, never the
    ///   logical relation);
    /// * any planner error from bulk-loading the new representation (e.g.
    ///   the new pair cannot plan full-tuple inserts); the relation is
    ///   left on the old representation, unchanged.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a transaction on this relation (the
    /// same re-entrancy diagnosis as every other entry point).
    pub fn migrate_to(
        &self,
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
    ) -> Result<(), CoreError> {
        if decomp.schema() != &self.schema {
            return Err(CoreError::IllFormedPlacement(
                "migration target has a different schema".into(),
            ));
        }
        // Validates placement/decomposition agreement; the new tree is
        // invisible to everyone until the swap.
        let new_repr = Repr::new(decomp, placement)?;

        let _guard = ActiveTxnGuard::enter(self.id);
        let mut engine: TwoPhaseEngine<LockToken> = TwoPhaseEngine::new(Arc::clone(&self.stats));
        let mut backoff = Backoff::new();
        loop {
            let repr = self.current_repr();
            let fence = {
                let mut exec = Executor::new(&repr.decomp, &repr.placement, &mut engine);
                exec.always_sort_locks = self.always_sort_locks.load(Ordering::Relaxed);
                exec.acquire_migration_fence(&repr.root)
            };
            if fence.is_err() {
                engine.rollback();
                backoff.wait();
                continue;
            }
            // Fence held: no writer in flight, none can start. The old
            // tree is frozen at this cut.
            let result = self.load_frozen_contents(&repr, &new_repr);
            match result {
                Ok(rows) => {
                    debug_assert_eq!(rows, self.len(), "quiescent cut must be exact");
                    // Publish the new representation *before* releasing
                    // the fence, mirroring the commit path's
                    // publish-before-unlock ordering.
                    self.install_repr(new_repr);
                    engine.finish();
                    return Ok(());
                }
                Err(e) => {
                    engine.rollback();
                    return Err(e);
                }
            }
        }
    }

    /// The bulk-load step of [`Self::migrate_to`], run under the fence:
    /// reads the frozen contents at one MVCC cut and loads them into
    /// `new_repr`'s (still private) tree. Returns the row count.
    pub(crate) fn load_frozen_contents(
        &self,
        repr: &Repr,
        new_repr: &Arc<Repr>,
    ) -> Result<usize, CoreError> {
        let rows = self.frozen_rows(repr)?;

        // Load through a scratch relation wrapping the new representation
        // so the batched insert path (plans, bulk sweeps, fused container
        // writes, MVCC mirrors) is reused verbatim. Its locks are private
        // until the swap, so this contends with nobody; its bulk commits
        // stamp the new tree's version chains *before* the swap makes
        // them reachable, so any reader registered after the swap has a
        // snapshot at or above every bulk stamp.
        let scratch = ConcurrentRelation {
            schema: Arc::clone(&self.schema),
            repr: RwLock::new(Arc::clone(new_repr)),
            stats: Arc::new(LockStats::new()),
            len: AtomicUsize::new(0),
            always_sort_locks: AtomicBool::new(false),
            id: NEXT_RELATION_ID.fetch_add(1, Ordering::Relaxed),
            snapshots: Arc::clone(&self.snapshots),
            ops: OpCounters::default(),
            migrations: std::sync::atomic::AtomicU64::new(0),
            wal: None,
        };
        let n = rows.len();
        const CHUNK: usize = 4096;
        for chunk in rows.chunks(CHUNK.max(1)) {
            let batch: Vec<(Tuple, Tuple)> =
                chunk.iter().map(|t| (t.clone(), Tuple::empty())).collect();
            scratch.insert_all(&batch)?;
        }
        Ok(n)
    }

    /// Reads the relation's frozen contents at the current clock time.
    /// Only sound with the migration write-fence held (every writer
    /// drained): shared by [`Self::load_frozen_contents`] and the
    /// checkpoint path.
    pub(crate) fn frozen_rows(&self, repr: &Repr) -> Result<Vec<Tuple>, CoreError> {
        let snap = relc_locks::commit_clock().now();
        let guard = relc_containers::epoch::pin();
        let all = self.schema.columns();
        // Prefer the MVCC snapshot traversal at the cut; placements that
        // cannot plan a full scan (e.g. all-speculative roots) fall back
        // to the direct structural walk, which under the fence reads the
        // same frozen state.
        match repr.snapshot_query_at(&self.stats, &Tuple::empty(), all, snap, &guard) {
            Ok(rows) => Ok(rows),
            Err(CoreError::NoValidPlan(_)) => {
                Ok(instance::abstract_relation(&repr.decomp, &repr.root)
                    .into_iter()
                    .collect())
            }
            Err(e) => Err(e),
        }
    }

    /// Whether this relation logs to a WAL (drives redo capture in the
    /// transaction layer).
    pub(crate) fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// The WAL handle (sharding layer and tests).
    pub(crate) fn wal(&self) -> Option<&Arc<crate::wal::Wal>> {
        self.wal.as_ref()
    }

    /// Attaches a WAL. Only valid before the relation is shared (the
    /// field is plain, not atomic); [`Self::open_durable`] and the
    /// sharded constructor call this after recovery so the replay itself
    /// is never re-logged.
    pub(crate) fn attach_wal(&mut self, wal: Arc<crate::wal::Wal>) {
        self.wal = Some(wal);
    }

    /// Opens a **durable** relation backed by a write-ahead log in `dir`
    /// (created if absent): recovers whatever a previous process left
    /// there — checkpoint plus log tail, tolerating a torn tail — then
    /// attaches the log so every subsequent committed transaction
    /// appends one redo record, group-commit batched. The commit clock
    /// resumes strictly above the highest replayed stamp.
    ///
    /// # Errors
    ///
    /// Any I/O error, a corrupt checkpoint, or the usual construction
    /// errors of [`Self::new`].
    pub fn open_durable(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        dir: impl AsRef<std::path::Path>,
        opts: crate::wal::WalOptions,
    ) -> Result<(Self, crate::wal::RecoveryReport), CoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Durability(format!("create {}: {e}", dir.display())))?;
        let wal = crate::wal::Wal::open(dir.join("relation.wal"), dir.join("relation.ckpt"), opts)?;
        let mut rel = Self::new(decomp, placement)?;
        let report = rel.recover_from(&wal, None)?;
        rel.attach_wal(Arc::new(wal));
        Ok((rel, report))
    }

    /// Recovery: loads the checkpoint (if any) and replays the log tail.
    /// The WAL is deliberately *not* attached yet, so neither the bulk
    /// checkpoint load nor the replayed transactions append records.
    pub(crate) fn recover_from(
        &self,
        wal: &crate::wal::Wal,
        markers: Option<&std::collections::BTreeSet<u64>>,
    ) -> Result<crate::wal::RecoveryReport, CoreError> {
        let mut report = crate::wal::RecoveryReport::default();
        if let Some((cut_ts, rows)) = wal.read_checkpoint()? {
            const CHUNK: usize = 4096;
            for chunk in rows.chunks(CHUNK) {
                let batch: Vec<(Tuple, Tuple)> =
                    chunk.iter().map(|t| (t.clone(), Tuple::empty())).collect();
                self.insert_all(&batch)?;
            }
            report.checkpoint_rows = rows.len();
            report.max_ts = cut_ts;
            wal.raise_applied_through(cut_ts);
        }
        let tail = self.replay_tail(wal, markers)?;
        report.merge(&tail);
        Ok(report)
    }

    /// Replays every log record above the WAL's replay floor through the
    /// normal transaction path (one transaction per record, preserving
    /// the original atomicity), raises the floor to the highest replayed
    /// stamp, and re-seeds the commit clock strictly above it. Keying on
    /// the floor makes a second pass over the same tail a no-op —
    /// recovery idempotence (a crash *during* recovery simply re-runs
    /// it).
    pub(crate) fn replay_tail(
        &self,
        wal: &crate::wal::Wal,
        markers: Option<&std::collections::BTreeSet<u64>>,
    ) -> Result<crate::wal::RecoveryReport, CoreError> {
        use crate::txn::RedoOp;
        let (mut records, torn_tail) = wal.read_records()?;
        records.sort_by_key(crate::wal::WalRecord::ts);
        let floor = wal.applied_through();
        let mut report = crate::wal::RecoveryReport {
            torn_tail,
            max_ts: floor,
            ..Default::default()
        };
        for rec in records {
            let crate::wal::WalRecord::Commit {
                ts,
                cross_shard,
                ops,
            } = rec
            else {
                continue;
            };
            if ts <= floor {
                continue;
            }
            // A cross-shard record without its durable marker is the
            // prefix of an atomic transaction whose commit point (the
            // marker fsync) never happened: skip it on every shard —
            // atomic abort.
            if cross_shard && markers.is_some_and(|m| !m.contains(&ts)) {
                continue;
            }
            self.transaction(|tx| {
                for op in &ops {
                    match op {
                        RedoOp::Insert(s, t) => {
                            tx.insert(s, t)?;
                        }
                        RedoOp::Remove(key) => {
                            tx.remove(key)?;
                        }
                        RedoOp::Update(s, t) => {
                            tx.update(s, t)?;
                        }
                    }
                }
                Ok(())
            })?;
            report.replayed += 1;
            report.max_ts = report.max_ts.max(ts);
        }
        wal.raise_applied_through(report.max_ts);
        relc_locks::commit_clock().advance_to(report.max_ts);
        Ok(report)
    }

    /// Re-runs log replay on a live durable relation — the crash-during-
    /// recovery path, exposed for differential testing: every record at
    /// or below the replay floor (everything already in memory) is
    /// skipped, so calling this right after [`Self::open_durable`] — or
    /// twice in a row — changes nothing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Durability`] if the relation has no WAL, or any
    /// replay error.
    pub fn replay_log(&self) -> Result<crate::wal::RecoveryReport, CoreError> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| CoreError::Durability("relation has no write-ahead log".into()))?;
        self.replay_tail(wal, None)
    }

    /// Checkpoints the relation: freezes it behind the migration
    /// write-fence (every writer drained — one MVCC cut, the same
    /// machinery as [`Self::migrate_to`]), snapshots the contents to the
    /// checkpoint sidecar (tmp + fsync + rename), and truncates the log.
    /// Committers that were still waiting on a group fsync are released:
    /// the checkpoint's cut covers their in-memory (published-
    /// before-unlock) effects, so the checkpoint itself is their
    /// durability. Returns the number of rows checkpointed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Durability`] if the relation has no WAL or on any
    /// I/O error; the relation's in-memory state is unaffected either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a transaction on this relation (the
    /// same re-entrancy diagnosis as every other entry point).
    pub fn checkpoint(&self) -> Result<usize, CoreError> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| CoreError::Durability("relation has no write-ahead log".into()))?;
        let _guard = ActiveTxnGuard::enter(self.id);
        let mut engine: TwoPhaseEngine<LockToken> = TwoPhaseEngine::new(Arc::clone(&self.stats));
        let mut backoff = Backoff::new();
        loop {
            let repr = self.current_repr();
            let fence = {
                let mut exec = Executor::new(&repr.decomp, &repr.placement, &mut engine);
                exec.always_sort_locks = self.always_sort_locks.load(Ordering::Relaxed);
                exec.acquire_migration_fence(&repr.root)
            };
            if fence.is_err() {
                engine.rollback();
                backoff.wait();
                continue;
            }
            // Fence held: no writer in flight, none can start, and every
            // committed stamp is ≤ now() — the cut covers exactly the
            // committed history.
            let cut_ts = relc_locks::commit_clock().now();
            let result = self
                .frozen_rows(&repr)
                .and_then(|rows| wal.checkpoint(cut_ts, &rows).map(|()| rows.len()));
            match result {
                Ok(n) => {
                    engine.finish();
                    return Ok(n);
                }
                Err(e) => {
                    engine.rollback();
                    return Err(e);
                }
            }
        }
    }

    /// Group-commit batching counters of this relation's WAL (`None`
    /// without one): appends, flushes, fsyncs, and the largest
    /// commits-per-fsync batch.
    pub fn wal_stats(&self) -> Option<relc_locks::GroupCommitStats> {
        self.wal.as_ref().map(|w| w.stats())
    }
}

/// A lock-free read-only view of a [`ConcurrentRelation`] at one commit
/// timestamp, handed to [`ConcurrentRelation::read_transaction`]'s
/// closure. All reads resolve against the version chains at the captured
/// snapshot; committed writers later than the snapshot are invisible,
/// tentative (uncommitted) versions always are.
///
/// While the reader is alive it is registered with the **relation's
/// own** [`relc_locks::SnapshotRegistry`], which stops this relation's
/// committers from truncating version history it still needs — but
/// leaves every other relation's retirement unpinned — and it holds an epoch
/// guard, which keeps already-truncated nodes it may be walking alive
/// until it drops.
pub struct SnapshotReader<'r> {
    rel: &'r ConcurrentRelation,
    /// The representation pinned for this reader's lifetime. A live
    /// migration may swap the relation's current representation at any
    /// moment; this reader keeps traversing the tree its snapshot was
    /// registered against (frozen at that snapshot by the fence), and
    /// the held `Arc` keeps that tree alive until the reader drops.
    repr: Arc<Repr>,
    snap: u64,
    guard: relc_containers::epoch::Guard,
    _reg: relc_locks::SnapshotGuard,
}

impl<'r> SnapshotReader<'r> {
    fn open(rel: &'r ConcurrentRelation) -> Self {
        // Capture → register → re-check: if a migration swapped the
        // representation between the capture and the registration, the
        // registered snapshot could postdate commits that only the *new*
        // tree contains — so re-capture until one representation spans
        // the registration. The held `Arc` rules out ABA: the old
        // representation cannot be freed (and its address reused) while
        // `repr` still points at it.
        let (repr, reg) = loop {
            let repr = rel.current_repr();
            let reg = rel.snapshots.register(relc_locks::commit_clock());
            if Arc::ptr_eq(&rel.current_repr(), &repr) {
                break (repr, reg);
            }
            drop(reg);
        };
        let guard = relc_containers::epoch::pin();
        SnapshotReader {
            rel,
            repr,
            snap: reg.snap(),
            guard,
            _reg: reg,
        }
    }

    /// The commit timestamp this reader observes.
    pub fn snapshot_ts(&self) -> u64 {
        self.snap
    }

    /// `query r s C` (§2) at this snapshot: the projection onto `cols` of
    /// all tuples extending `s`, deduplicated and sorted — lock-free.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`] (the same compiled plans
    /// drive the snapshot traversal, so the same shapes are plannable).
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        self.repr
            .snapshot_query_at(&self.rel.stats, s, cols, self.snap, &self.guard)
    }

    /// Range query at this snapshot; see
    /// [`ConcurrentRelation::query_range`].
    ///
    /// # Errors
    ///
    /// As for [`SnapshotReader::query`].
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        self.repr
            .snapshot_query_range_at(&self.rel.stats, s, range, cols, self.snap, &self.guard)
    }

    /// Whether any tuple extends `s` at this snapshot — short-circuiting,
    /// lock-free.
    ///
    /// # Errors
    ///
    /// As for [`SnapshotReader::query`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        self.repr
            .snapshot_exists_at(&self.rel.stats, s, self.snap, &self.guard)
    }

    /// All tuples at this snapshot, sorted.
    ///
    /// # Errors
    ///
    /// As for [`SnapshotReader::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }
}

impl fmt::Debug for SnapshotReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("snapshot_ts", &self.snap)
            .finish()
    }
}

impl fmt::Debug for ConcurrentRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let repr = self.current_repr();
        f.debug_struct("ConcurrentRelation")
            .field("decomposition", &repr.decomp.describe())
            .field("placement", &repr.placement.name())
            .field("len", &self.len())
            .field("migrations", &self.migration_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, diamond, kv, split, stick};
    use relc_containers::ContainerKind;
    use relc_spec::{OracleRelation, SpecError, Value};

    fn graph_variants() -> Vec<(Arc<Decomposition>, Arc<LockPlacement>)> {
        let mut out = Vec::new();
        let sticks = [
            stick(ContainerKind::HashMap, ContainerKind::TreeMap),
            stick(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            stick(ContainerKind::ConcurrentSkipListMap, ContainerKind::HashMap),
        ];
        let splits = [
            split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap),
            split(ContainerKind::HashMap, ContainerKind::TreeMap),
        ];
        let diamonds = [
            diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            diamond(ContainerKind::ConcurrentSkipListMap, ContainerKind::TreeMap),
        ];
        for d in sticks.iter().chain(&splits).chain(&diamonds) {
            out.push((d.clone(), LockPlacement::coarse(d).unwrap()));
            out.push((d.clone(), LockPlacement::fine(d).unwrap()));
            if let Ok(p) = LockPlacement::striped_root(d, 16) {
                out.push((d.clone(), p));
            }
            if let Ok(p) = LockPlacement::speculative(d, 8) {
                out.push((d.clone(), p));
            }
        }
        out
    }

    fn edge(d: &Decomposition, s: i64, dst: i64) -> Tuple {
        d.schema()
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(dst))])
            .unwrap()
    }

    fn weight(d: &Decomposition, w: i64) -> Tuple {
        d.schema().tuple(&[("weight", Value::from(w))]).unwrap()
    }

    #[test]
    fn single_threaded_oracle_equivalence_across_variants() {
        // Pseudo-random op mix replayed against every representation and
        // the oracle; every intermediate observable must agree.
        for (d, p) in graph_variants() {
            let name = format!("{} / {}", d.describe(), p.name());
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            let oracle = OracleRelation::empty(d.schema().clone());
            let mut x = 0x12345678u64;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
            let sw = d.schema().column_set(&["src", "weight"]).unwrap();
            for _ in 0..300 {
                let s = (step() % 6) as i64;
                let t = (step() % 6) as i64;
                let w = (step() % 4) as i64;
                match step() % 4 {
                    0 => {
                        let got = rel.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        let want = oracle.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        assert_eq!(got, want, "insert on {name}");
                    }
                    1 => {
                        let got = rel.remove(&edge(&d, s, t)).unwrap();
                        let want = oracle.remove(&edge(&d, s, t));
                        assert_eq!(got, want, "remove on {name}");
                    }
                    2 => {
                        let pat = d.schema().tuple(&[("src", Value::from(s))]).unwrap();
                        match rel.query(&pat, dw) {
                            Ok(got) => assert_eq!(got, oracle.query(&pat, dw), "succ on {name}"),
                            Err(CoreError::NoValidPlan(_)) => {}
                            Err(e) => panic!("unexpected error on {name}: {e}"),
                        }
                    }
                    _ => {
                        let pat = d.schema().tuple(&[("dst", Value::from(t))]).unwrap();
                        match rel.query(&pat, sw) {
                            Ok(got) => assert_eq!(got, oracle.query(&pat, sw), "pred on {name}"),
                            Err(CoreError::NoValidPlan(_)) => {}
                            Err(e) => panic!("unexpected error on {name}: {e}"),
                        }
                    }
                }
                assert_eq!(rel.len(), oracle.len(), "len on {name}");
            }
            // Structural invariants + final contents.
            let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            let want: std::collections::BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
            assert_eq!(verified, want, "final contents on {name}");
        }
    }

    #[test]
    fn put_if_absent_semantics() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        assert!(rel.insert(&edge(&d, 1, 2), &weight(&d, 42)).unwrap());
        // §2: a second insert with the same src/dst leaves the relation
        // unchanged, even with a different weight.
        assert!(!rel.insert(&edge(&d, 1, 2), &weight(&d, 101)).unwrap());
        let all = rel.snapshot().unwrap();
        assert_eq!(all.len(), 1);
        let wcol = d.schema().column("weight").unwrap();
        assert_eq!(all[0].get(wcol), Some(&Value::from(42)));
    }

    #[test]
    fn remove_cleans_up_empty_substructures() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 10)).unwrap();
        rel.insert(&edge(&d, 1, 3), &weight(&d, 11)).unwrap();
        assert_eq!(rel.remove(&edge(&d, 1, 2)).unwrap(), 1);
        rel.verify().unwrap(); // no exhausted instances may remain
        assert_eq!(rel.remove(&edge(&d, 1, 3)).unwrap(), 1);
        rel.verify().unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.remove(&edge(&d, 1, 3)).unwrap(), 0);
    }

    #[test]
    fn query_by_full_key_and_projections() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 10)).unwrap();
        rel.insert(&edge(&d, 2, 2), &weight(&d, 20)).unwrap();
        let wcols = d.schema().column_set(&["weight"]).unwrap();
        let got = rel.query(&edge(&d, 1, 2), wcols).unwrap();
        assert_eq!(got, vec![weight(&d, 10)]);
        // Predecessors of 2: two edges.
        let pat = d.schema().tuple(&[("dst", Value::from(2))]).unwrap();
        let sc = d.schema().column_set(&["src"]).unwrap();
        assert_eq!(rel.query(&pat, sc).unwrap().len(), 2);
    }

    #[test]
    fn dcache_relation_basics() {
        let d = dcache();
        let p = LockPlacement::fine(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let key = |par: i64, name: &str| {
            d.schema()
                .tuple(&[("parent", Value::from(par)), ("name", Value::from(name))])
                .unwrap()
        };
        let child = |c: i64| d.schema().tuple(&[("child", Value::from(c))]).unwrap();
        // Fig. 2(b)'s three entries.
        rel.insert(&key(1, "a"), &child(2)).unwrap();
        rel.insert(&key(2, "b"), &child(3)).unwrap();
        rel.insert(&key(2, "c"), &child(4)).unwrap();
        // List directory 2.
        let pat = d.schema().tuple(&[("parent", Value::from(2))]).unwrap();
        let nc = d.schema().column_set(&["name", "child"]).unwrap();
        assert_eq!(rel.query(&pat, nc).unwrap().len(), 2);
        // Point lookup through the hash index.
        let cc = d.schema().column_set(&["child"]).unwrap();
        assert_eq!(rel.query(&key(2, "c"), cc).unwrap(), vec![child(4)]);
        rel.verify().unwrap();
        // Unlink and re-check.
        assert_eq!(rel.remove(&key(2, "b")).unwrap(), 1);
        rel.verify().unwrap();
        assert_eq!(rel.query(&pat, nc).unwrap().len(), 1);
    }

    #[test]
    fn kv_put_if_absent_is_paper_example() {
        let d = kv(ContainerKind::ConcurrentHashMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let k = |k: i64| d.schema().tuple(&[("key", Value::from(k))]).unwrap();
        let v = |v: &str| d.schema().tuple(&[("value", Value::from(v))]).unwrap();
        assert!(rel.insert(&k(1), &v("one")).unwrap());
        assert!(!rel.insert(&k(1), &v("uno")).unwrap());
        assert_eq!(rel.remove(&k(1)).unwrap(), 1);
        assert!(rel.insert(&k(1), &v("uno")).unwrap());
    }

    #[test]
    fn overlapping_insert_domains_rejected() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let s = d
            .schema()
            .tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])
            .unwrap();
        let t = d
            .schema()
            .tuple(&[("dst", Value::from(2)), ("weight", Value::from(3))])
            .unwrap();
        assert!(matches!(
            rel.insert(&s, &t),
            Err(CoreError::Spec(SpecError::OverlappingInsertDomains { .. }))
        ));
        // Partial tuples are rejected too.
        let s1 = d.schema().tuple(&[("src", Value::from(1))]).unwrap();
        let t1 = d.schema().tuple(&[("weight", Value::from(3))]).unwrap();
        assert!(matches!(
            rel.insert(&s1, &t1),
            Err(CoreError::Spec(SpecError::NotAValuation { .. }))
        ));
    }

    #[test]
    fn remove_requires_key_pattern() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let pat = d.schema().tuple(&[("dst", Value::from(2))]).unwrap();
        assert!(matches!(
            rel.remove(&pat),
            Err(CoreError::Spec(SpecError::RemoveNotByKey { .. }))
        ));
    }

    #[test]
    fn contains_is_projectionless_query() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 7)).unwrap();
        assert!(rel.contains(&edge(&d, 1, 2)).unwrap());
        assert!(!rel.contains(&edge(&d, 1, 3)).unwrap());
        // Partial patterns work too.
        let src1 = d.schema().tuple(&[("src", Value::from(1))]).unwrap();
        assert!(rel.contains(&src1).unwrap());
        // Empty pattern: is the relation nonempty?
        assert!(rel.contains(&Tuple::empty()).unwrap());
        rel.remove(&edge(&d, 1, 2)).unwrap();
        assert!(!rel.contains(&Tuple::empty()).unwrap());
    }

    #[test]
    fn update_matches_oracle_across_variants() {
        // Differential test of §2 update against the oracle, over every
        // representation: pseudo-random insert/update/remove/query mix.
        for (d, p) in graph_variants() {
            let name = format!("{} / {}", d.describe(), p.name());
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            let oracle = OracleRelation::empty(d.schema().clone());
            let mut x = 0xdead_beefu64;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..200 {
                let s = (step() % 5) as i64;
                let t = (step() % 5) as i64;
                let w = (step() % 4) as i64;
                match step() % 3 {
                    0 => {
                        let got = rel.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        let want = oracle.insert(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        assert_eq!(got, want, "insert on {name}");
                    }
                    1 => {
                        let got = rel.update(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        let want = oracle.update(&edge(&d, s, t), &weight(&d, w)).unwrap();
                        assert_eq!(got, want, "update on {name}");
                    }
                    _ => {
                        let got = rel.remove(&edge(&d, s, t)).unwrap();
                        let want = oracle.remove(&edge(&d, s, t));
                        assert_eq!(got, want, "remove on {name}");
                    }
                }
                assert_eq!(rel.len(), oracle.len(), "len on {name}");
            }
            let verified = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            let want: std::collections::BTreeSet<Tuple> = oracle.snapshot().into_iter().collect();
            assert_eq!(verified, want, "final contents on {name}");
        }
    }

    #[test]
    fn update_validates_arguments() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 5)).unwrap();
        // Non-key pattern.
        let pat = d.schema().tuple(&[("src", Value::from(1))]).unwrap();
        assert!(matches!(
            rel.update(&pat, &weight(&d, 9)),
            Err(CoreError::Spec(SpecError::RemoveNotByKey { .. }))
        ));
        // Assignment overlapping the pattern.
        let dst2 = d.schema().tuple(&[("dst", Value::from(3))]).unwrap();
        assert!(matches!(
            rel.update(&edge(&d, 1, 2), &dst2),
            Err(CoreError::Spec(SpecError::UpdateOverlapsPattern { .. }))
        ));
        // Empty assignment.
        assert!(matches!(
            rel.update(&edge(&d, 1, 2), &Tuple::empty()),
            Err(CoreError::Spec(SpecError::EmptyUpdate))
        ));
        // Missing tuple: None, relation unchanged.
        assert_eq!(rel.update(&edge(&d, 9, 9), &weight(&d, 1)).unwrap(), None);
        assert_eq!(rel.len(), 1);
        rel.verify().unwrap();
    }

    #[test]
    fn multi_op_transaction_commits_atomically() {
        for (d, p) in graph_variants() {
            let name = format!("{} / {}", d.describe(), p.name());
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            rel.insert(&edge(&d, 1, 2), &weight(&d, 100)).unwrap();
            rel.insert(&edge(&d, 3, 4), &weight(&d, 0)).unwrap();
            // Transfer 30 from (1,2) to (3,4): two updates + a readback in
            // one two-phase scope.
            let wcol = d.schema().column("weight").unwrap();
            let moved = rel
                .transaction(|tx| {
                    let from = tx
                        .update(&edge(&d, 1, 2), &weight(&d, 70))?
                        .expect("source edge exists");
                    let old = from.get(wcol).and_then(|v| v.as_int()).unwrap();
                    let to = tx
                        .update(&edge(&d, 3, 4), &weight(&d, 30))?
                        .expect("target edge exists");
                    assert_eq!(to.get(wcol), Some(&Value::from(0)), "{name}");
                    // Read-your-writes: the new values are visible inside
                    // the transaction.
                    let wc = tx.relation().schema().column_set(&["weight"]).unwrap();
                    assert_eq!(
                        tx.query(&edge(&d, 1, 2), wc)?,
                        vec![weight(&d, 70)],
                        "{name}"
                    );
                    Ok(old)
                })
                .unwrap();
            assert_eq!(moved, 100, "{name}");
            assert_eq!(rel.len(), 2, "{name}");
            let wc = d.schema().column_set(&["weight"]).unwrap();
            assert_eq!(
                rel.query(&edge(&d, 1, 2), wc).unwrap(),
                vec![weight(&d, 70)]
            );
            assert_eq!(
                rel.query(&edge(&d, 3, 4), wc).unwrap(),
                vec![weight(&d, 30)]
            );
            rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Commits are counted by the engine hooks.
            assert!(rel.lock_stats().commits >= 3, "{name}");
        }
    }

    #[test]
    fn aborted_transaction_rolls_back_every_effect() {
        for (d, p) in graph_variants() {
            let name = format!("{} / {}", d.describe(), p.name());
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            rel.insert(&edge(&d, 1, 2), &weight(&d, 100)).unwrap();
            let before = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            let err = rel
                .transaction(|tx| -> Result<(), crate::TxnError> {
                    // Apply all three mutation kinds, then abort.
                    assert!(tx.insert(&edge(&d, 5, 6), &weight(&d, 1))?);
                    assert!(tx.update(&edge(&d, 1, 2), &weight(&d, 55))?.is_some());
                    assert_eq!(tx.remove(&edge(&d, 1, 2))?, 1);
                    Err(tx.abort("insufficient funds"))
                })
                .unwrap_err();
            assert!(
                matches!(err, CoreError::TransactionAborted(ref m) if m.contains("funds")),
                "{name}: {err}"
            );
            let after = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(after, before, "{name}: rollback must be exact");
            assert_eq!(rel.len(), 1, "{name}");
            // The abort is an application rollback, not a conflict retry.
            let stats = rel.lock_stats();
            assert!(stats.user_rollbacks >= 1, "{name}: {stats}");
        }
    }

    #[test]
    fn transaction_read_then_write_upgrades_and_retries() {
        // A query inside a transaction takes shared locks; the following
        // insert upgrades them. The upgrade restarts the closure once and
        // the retry must succeed (hints promote the modes).
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
        let runs = std::cell::Cell::new(0u32);
        let inserted = rel
            .transaction(|tx| {
                runs.set(runs.get() + 1);
                let succ = tx.query(&d.schema().tuple(&[("src", Value::from(1))]).unwrap(), dw)?;
                assert!(succ.is_empty());
                tx.insert(&edge(&d, 1, 2), &weight(&d, 1))
            })
            .unwrap();
        assert!(inserted);
        assert!(runs.get() >= 1);
        assert_eq!(rel.len(), 1);
        rel.verify().unwrap();
    }

    #[test]
    fn swallowed_restart_cannot_commit() {
        // A closure that swallows a restart error and returns Ok anyway
        // must not commit the half-run: the transaction loop detects the
        // swallowed restart, rolls back, and re-runs the closure.
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let dw = d.schema().column_set(&["dst", "weight"]).unwrap();
        let runs = std::cell::Cell::new(0u32);
        rel.transaction(|tx| {
            runs.set(runs.get() + 1);
            tx.query(&d.schema().tuple(&[("src", Value::from(1))]).unwrap(), dw)?;
            // First run: the insert upgrades the query's shared locks and
            // demands a restart — which this closure wrongly swallows.
            let _ = tx.insert(&edge(&d, 1, 2), &weight(&d, 1));
            Ok(())
        })
        .unwrap();
        assert_eq!(runs.get(), 2, "the swallowed restart must force a re-run");
        // What committed is the successful second run, not the first.
        assert!(rel.contains(&edge(&d, 1, 2)).unwrap());
        assert_eq!(rel.len(), 1);
        rel.verify().unwrap();
    }

    #[test]
    fn thread_local_plan_memos_stay_bounded_across_dropped_relations() {
        // Long-lived worker threads must not retain plan memo entries for
        // every relation that ever passed through them: once a memo grows
        // past the sweep watermark, entries of dropped relations are shed.
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        for _ in 0..MEMO_SWEEP_WATERMARK * 4 {
            let p = LockPlacement::coarse(&d).unwrap();
            let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
            rel.insert(&edge(&d, 1, 2), &weight(&d, 1)).unwrap();
        }
        let len = INSERT_MEMO.with(|m| m.borrow().map.len());
        assert!(
            len <= MEMO_SWEEP_WATERMARK,
            "memo retained dead-relation plans: {len}"
        );
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn nested_single_shot_inside_transaction_panics_not_deadlocks() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 1)).unwrap();
        let _ = rel.transaction(|tx| {
            tx.contains(&edge(&d, 1, 2))?;
            // Bypassing the transaction handle would self-deadlock on the
            // locks `tx` holds; the guard panics instead.
            let _ = rel.remove(&edge(&d, 1, 2));
            Ok(())
        });
    }

    #[test]
    fn lock_stats_accumulate() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        rel.insert(&edge(&d, 1, 2), &weight(&d, 1)).unwrap();
        let stats = rel.lock_stats();
        assert!(stats.acquisitions >= 1, "{stats}");
    }
}
