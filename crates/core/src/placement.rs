//! Lock placements: mapping logical locks onto physical locks (§4.3–§4.5).
//!
//! Every edge instance of a decomposition instance carries a *logical lock*
//! protecting its state (present or absent). A [`LockPlacement`] maps each
//! edge's logical locks onto *physical locks* attached to node instances:
//!
//! * the **host** node of an edge holds the physical lock(s) for that
//!   edge's logical locks; the host must dominate the edge's source (§4.3)
//!   — or, for **speculative** placements (§4.5), present edges are locked
//!   at their *target* and absent edges fall back to the host;
//! * **striping** (§4.4) attaches `k` physical locks to a node and selects
//!   one by hashing the `stripe_by` columns of the edge tuple; operations
//!   that do not bind those columns conservatively take all `k` locks;
//! * **well-formedness** (§4.3): the host dominates the source; every edge
//!   on any path from the host to the source shares the host
//!   (path-sharing); and container choices are compatible — a
//!   concurrency-unsafe container must be serialized by its placement, and
//!   speculative edges need linearizable unlocked lookups.

use std::fmt;
use std::sync::Arc;

use relc_locks::LockMode;
use relc_spec::{ColumnSet, Tuple};

use crate::decomp::{Decomposition, EdgeId, NodeId};
use crate::error::CoreError;

/// Where one edge's logical locks live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePlacement {
    /// The node hosting the physical lock (the *fallback* host for
    /// speculative edges, holding the locks of absent edge instances).
    pub host: NodeId,
    /// Columns hashed to select a stripe at the host (must be a subset of
    /// the edge tuple's columns `A_src ∪ cols(e)`). Empty = stripe 0.
    pub stripe_by: ColumnSet,
    /// §4.5: lock present edges at their target node instance; absent edges
    /// at the host stripes.
    pub speculative: bool,
}

/// A validated lock placement for a decomposition.
#[derive(Debug, Clone)]
pub struct LockPlacement {
    decomp: Arc<Decomposition>,
    edges: Vec<EdgePlacement>,
    stripe_counts: Vec<u32>,
    name: String,
}

/// A globally ordered identifier of one physical lock (§5.1): topological
/// position of the owning node, then the node-instance key tuple
/// (lexicographic), then the stripe index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockToken {
    /// Topological position of the node the lock is attached to.
    pub node_pos: u16,
    /// The node instance's key tuple (valuation of its `A` columns).
    pub instance: Tuple,
    /// Stripe index within the node instance.
    pub stripe: u32,
}

impl relc_locks::LockdepClass for LockToken {
    /// The `lockdep` witness collapses tokens to `(node position, stripe)`
    /// classes: every instance of one decomposition level shares the
    /// ordering constraints the §5.1 order imposes on the level, which is
    /// exactly the granularity at which an order inversion is a bug.
    fn lockdep_class(&self) -> u64 {
        (u64::from(self.node_pos) << 32) | u64::from(self.stripe)
    }
}

impl fmt::Display for LockToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock@{}:{:?}#{}",
            self.node_pos, self.instance, self.stripe
        )
    }
}

impl LockPlacement {
    /// Starts building a custom placement. See also the ready-made
    /// [`LockPlacement::coarse`], [`LockPlacement::fine`],
    /// [`LockPlacement::striped_root`] and [`LockPlacement::speculative`].
    pub fn builder(decomp: Arc<Decomposition>) -> PlacementBuilder {
        PlacementBuilder::new(decomp)
    }

    /// ψ1 (§4.3): one lock at the root protects every edge.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (possible for exotic container
    /// choices; the standard library decompositions always validate).
    pub fn coarse(decomp: &Arc<Decomposition>) -> Result<Arc<LockPlacement>, CoreError> {
        let mut b = Self::builder(Arc::clone(decomp));
        for (e, _) in decomp.edges() {
            b.place(e, decomp.root());
        }
        b.named("coarse").build()
    }

    /// ψ2 (§4.3): each edge is protected by a lock at its source node
    /// ("objects in a container are protected by a single lock on the
    /// container itself").
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn fine(decomp: &Arc<Decomposition>) -> Result<Arc<LockPlacement>, CoreError> {
        let mut b = Self::builder(Arc::clone(decomp));
        for (e, em) in decomp.edges() {
            b.place(e, em.src);
        }
        b.named("fine").build()
    }

    /// ψ3 (§4.4): like [`LockPlacement::fine`], but edges leaving the root
    /// are striped across `k` locks by their own columns
    /// (`i = hash(t(cols)) mod k`).
    ///
    /// # Errors
    ///
    /// Propagates validation failures — e.g. striping a root edge that is
    /// implemented by a concurrency-unsafe container.
    pub fn striped_root(
        decomp: &Arc<Decomposition>,
        k: u32,
    ) -> Result<Arc<LockPlacement>, CoreError> {
        let mut b = Self::builder(Arc::clone(decomp));
        for (e, em) in decomp.edges() {
            if em.src == decomp.root() {
                b.place_striped(e, decomp.root(), em.cols);
            } else {
                b.place(e, em.src);
            }
        }
        b.stripes(decomp.root(), k);
        b.named(&format!("striped({k})")).build()
    }

    /// ψ4 (§4.5): root edges are *speculative* — present edges are locked
    /// at their target instance, absent edges at one of `k` root stripes —
    /// and all other edges are locked at their source.
    ///
    /// # Errors
    ///
    /// Propagates validation failures — e.g. a root edge whose container
    /// does not provide linearizable unlocked lookups.
    pub fn speculative(
        decomp: &Arc<Decomposition>,
        k: u32,
    ) -> Result<Arc<LockPlacement>, CoreError> {
        let mut b = Self::builder(Arc::clone(decomp));
        for (e, em) in decomp.edges() {
            if em.src == decomp.root() {
                b.place_speculative(e, em.cols);
            } else {
                b.place(e, em.src);
            }
        }
        b.stripes(decomp.root(), k);
        b.named(&format!("speculative({k})")).build()
    }

    /// The decomposition this placement belongs to.
    pub fn decomposition(&self) -> &Arc<Decomposition> {
        &self.decomp
    }

    /// A short human-readable name (e.g. `coarse`, `striped(1024)`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The placement of one edge.
    pub fn edge(&self, e: EdgeId) -> EdgePlacement {
        self.edges[e.index()]
    }

    /// Number of physical locks (stripes) attached to each instance of
    /// `node`.
    pub fn stripe_count(&self, node: NodeId) -> u32 {
        self.stripe_counts[node.index()]
    }

    /// The lock mode required to *read* (observe) edge instances of `e`.
    ///
    /// Shared for containers whose concurrent reads are safe; exclusive for
    /// read-rebalancing containers such as splay trees (§3.1).
    pub fn read_mode(&self, e: EdgeId) -> LockMode {
        if self.decomp.edge(e).container.props().reads_are_safe() {
            LockMode::Shared
        } else {
            LockMode::Exclusive
        }
    }

    /// Whether this placement permits two transactions inside the *same
    /// container instance* of edge `e` concurrently (used by the autotuner:
    /// a serialized edge wastes a concurrent container; a concurrent edge
    /// requires one).
    pub fn admits_container_concurrency(&self, e: EdgeId) -> bool {
        let ep = self.edges[e.index()];
        if ep.speculative {
            return true;
        }
        let a_src = self.decomp.node(self.decomp.edge(e).src).key_cols;
        // Striping by columns beyond the source key splits one container
        // instance's entries across stripes.
        !ep.stripe_by.is_subset(a_src) && self.stripe_count(ep.host) > 1
    }

    /// Computes the globally ordered token(s) of the physical lock(s)
    /// implementing edge `e`'s logical lock for an edge tuple whose known
    /// fields are `bound` (§4.4: unknown stripe columns conservatively take
    /// every stripe).
    ///
    /// For speculative edges this names the *fallback* (absent-edge) locks;
    /// the present-edge lock is discovered by the speculation protocol.
    pub fn fallback_tokens(&self, e: EdgeId, bound: &Tuple) -> Vec<LockToken> {
        let mut out = Vec::new();
        self.fallback_tokens_into(e, bound, &mut out);
        out
    }

    /// [`LockPlacement::fallback_tokens`] appended into a caller-owned
    /// buffer — the batched operations compute thousands of tokens per
    /// sweep and reuse one allocation.
    pub fn fallback_tokens_into(&self, e: EdgeId, bound: &Tuple, out: &mut Vec<LockToken>) {
        let ep = self.edges[e.index()];
        let host_meta = self.decomp.node(ep.host);
        let instance = bound.project(host_meta.key_cols);
        debug_assert!(
            instance.is_valuation_for(host_meta.key_cols),
            "host instance key must be bound when locking (planner invariant)"
        );
        let k = self.stripe_count(ep.host);
        let node_pos = self.decomp.topo_position(ep.host);
        // An empty stripe_by pins the edge to stripe 0 — one fixed lock at
        // a (possibly otherwise striped) node.
        if k == 1 || ep.stripe_by.is_empty() {
            out.push(LockToken {
                node_pos,
                instance,
                stripe: 0,
            });
        } else if ep.stripe_by.is_subset(bound.dom()) {
            let stripe = (bound.stable_hash_of(ep.stripe_by) % u64::from(k)) as u32;
            out.push(LockToken {
                node_pos,
                instance,
                stripe,
            });
        } else {
            // Conservative: all stripes.
            out.extend((0..k).map(|stripe| LockToken {
                node_pos,
                instance: instance.clone(),
                stripe,
            }));
        }
    }

    /// Like [`LockPlacement::fallback_tokens`], but unconditionally takes
    /// every stripe at the host. Used when an operation must cover a whole
    /// container instance (scans, emptiness checks) that striping would
    /// otherwise split (§4.4: "we can always conservatively take all k
    /// locks").
    pub fn all_stripe_tokens(&self, e: EdgeId, bound: &Tuple) -> Vec<LockToken> {
        let mut out = Vec::new();
        self.all_stripe_tokens_into(e, bound, &mut out);
        out
    }

    /// [`LockPlacement::all_stripe_tokens`] appended into a caller-owned
    /// buffer (see [`LockPlacement::fallback_tokens_into`]).
    pub fn all_stripe_tokens_into(&self, e: EdgeId, bound: &Tuple, out: &mut Vec<LockToken>) {
        let ep = self.edges[e.index()];
        let host_meta = self.decomp.node(ep.host);
        let instance = bound.project(host_meta.key_cols);
        debug_assert!(
            instance.is_valuation_for(host_meta.key_cols),
            "host instance key must be bound when locking (planner invariant)"
        );
        let node_pos = self.decomp.topo_position(ep.host);
        out.extend((0..self.stripe_count(ep.host)).map(|stripe| LockToken {
            node_pos,
            instance: instance.clone(),
            stripe,
        }));
    }

    /// The token of the *target-side* lock used by the speculation protocol
    /// for a present edge instance with target-instance key `target_key`.
    pub fn target_token(&self, e: EdgeId, target_key: &Tuple) -> LockToken {
        let dst = self.decomp.edge(e).dst;
        LockToken {
            node_pos: self.decomp.topo_position(dst),
            instance: target_key.clone(),
            stripe: 0,
        }
    }

    /// Renders the placement like the paper's edge labels:
    /// `ρ→u @ ρ[src mod 4]; u→w @ u; ...`.
    pub fn describe(&self) -> String {
        let cat = self.decomp.schema().catalog();
        let mut parts = Vec::new();
        for (e, em) in self.decomp.edges() {
            let ep = self.edges[e.index()];
            let host = &self.decomp.node(ep.host).name;
            let k = self.stripe_count(ep.host);
            let mut s = format!(
                "{}→{} @ {}{}",
                self.decomp.node(em.src).name,
                self.decomp.node(em.dst).name,
                if ep.speculative { "target/" } else { "" },
                host,
            );
            if k > 1 {
                s.push_str(&format!("[{} mod {}]", cat.render_set(ep.stripe_by), k));
            }
            parts.push(s);
        }
        parts.join("; ")
    }
}

impl fmt::Display for LockPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Builder for [`LockPlacement`].
#[derive(Debug)]
pub struct PlacementBuilder {
    decomp: Arc<Decomposition>,
    edges: Vec<Option<EdgePlacement>>,
    stripe_counts: Vec<u32>,
    name: String,
}

impl PlacementBuilder {
    fn new(decomp: Arc<Decomposition>) -> Self {
        let edges = vec![None; decomp.edge_count()];
        let stripe_counts = vec![1; decomp.node_count()];
        PlacementBuilder {
            decomp,
            edges,
            stripe_counts,
            name: "custom".to_owned(),
        }
    }

    /// Places edge `e`'s locks at `host` (single stripe).
    pub fn place(&mut self, e: EdgeId, host: NodeId) -> &mut Self {
        self.edges[e.index()] = Some(EdgePlacement {
            host,
            stripe_by: ColumnSet::EMPTY,
            speculative: false,
        });
        self
    }

    /// Places edge `e`'s locks at `host`, striped by `stripe_by`.
    pub fn place_striped(&mut self, e: EdgeId, host: NodeId, stripe_by: ColumnSet) -> &mut Self {
        self.edges[e.index()] = Some(EdgePlacement {
            host,
            stripe_by,
            speculative: false,
        });
        self
    }

    /// Places edge `e` speculatively (§4.5): present edges lock at the
    /// target; absent edges at the edge's source (the fallback host),
    /// striped by `stripe_by`.
    pub fn place_speculative(&mut self, e: EdgeId, stripe_by: ColumnSet) -> &mut Self {
        let src = self.decomp.edge(e).src;
        self.edges[e.index()] = Some(EdgePlacement {
            host: src,
            stripe_by,
            speculative: true,
        });
        self
    }

    /// Sets the number of physical locks attached to each instance of
    /// `node`.
    pub fn stripes(&mut self, node: NodeId, k: u32) -> &mut Self {
        self.stripe_counts[node.index()] = k.max(1);
        self
    }

    /// Names the placement (for reports).
    pub fn named(&mut self, name: &str) -> &mut Self {
        self.name = name.to_owned();
        self
    }

    /// Validates well-formedness (§4.3) and container compatibility.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllFormedPlacement`] or
    /// [`CoreError::IncompatibleContainer`]; see the module docs for the
    /// conditions.
    pub fn build(&self) -> Result<Arc<LockPlacement>, CoreError> {
        let d = &self.decomp;
        let mut edges = Vec::with_capacity(d.edge_count());
        for (e, em) in d.edges() {
            let ep = self.edges[e.index()].ok_or_else(|| {
                CoreError::IllFormedPlacement(format!(
                    "edge {}→{} has no placement",
                    d.node(em.src).name,
                    d.node(em.dst).name
                ))
            })?;
            let ename = format!("{}→{}", d.node(em.src).name, d.node(em.dst).name);
            let props = em.container.props();
            let a_src = d.node(em.src).key_cols;
            let edge_cols = a_src.union(em.cols);
            if !ep.stripe_by.is_subset(edge_cols) {
                return Err(CoreError::IllFormedPlacement(format!(
                    "edge {ename}: stripe columns are not part of the edge tuple"
                )));
            }
            if ep.speculative {
                // §4.5 prerequisites.
                if !props.lookup_is_linearizable() {
                    return Err(CoreError::IncompatibleContainer(format!(
                        "edge {ename}: speculative locking requires a container with \
                         linearizable unlocked lookups, but {} is not",
                        em.container
                    )));
                }
                if em.src != d.root() {
                    return Err(CoreError::IllFormedPlacement(format!(
                        "edge {ename}: speculative placement is only supported on edges \
                         leaving the root (the fallback host must never be deallocated)"
                    )));
                }
                if ep.host != em.src {
                    return Err(CoreError::IllFormedPlacement(format!(
                        "edge {ename}: a speculative edge's fallback host must be its source"
                    )));
                }
                if self.stripe_counts[em.dst.index()] != 1 {
                    return Err(CoreError::IllFormedPlacement(format!(
                        "edge {ename}: speculative targets must have exactly one lock"
                    )));
                }
            } else {
                // Domination (§4.3, condition 1).
                if !d.dominates(ep.host, em.src) {
                    return Err(CoreError::IllFormedPlacement(format!(
                        "edge {ename}: host {} does not dominate the edge source",
                        d.node(ep.host).name
                    )));
                }
                // Path-sharing (§4.3, condition 2): every edge on any path
                // host → source shares the host.
                for path in d.paths_between(ep.host, em.src) {
                    for pe in path {
                        let other = self.edges[pe.index()].ok_or_else(|| {
                            CoreError::IllFormedPlacement(format!(
                                "edge on the path protecting {ename} has no placement"
                            ))
                        })?;
                        if other.speculative || other.host != ep.host {
                            return Err(CoreError::IllFormedPlacement(format!(
                                "edge {ename}: edge on the path from host {} is not \
                                 protected by the same lock (path-sharing violated)",
                                d.node(ep.host).name
                            )));
                        }
                    }
                }
                // Concurrency-unsafe containers must be serialized: all
                // entries of one container instance map to one stripe.
                let splits_instance =
                    !ep.stripe_by.is_subset(a_src) && self.stripe_counts[ep.host.index()] > 1;
                if !props.is_concurrency_safe() && splits_instance {
                    return Err(CoreError::IncompatibleContainer(format!(
                        "edge {ename}: {} is not concurrency-safe, but striping by \
                         columns beyond the source key admits concurrent access to one \
                         container instance",
                        em.container
                    )));
                }
            }
            edges.push(ep);
        }
        Ok(Arc::new(LockPlacement {
            decomp: Arc::clone(d),
            edges,
            stripe_counts: self.stripe_counts.clone(),
            name: self.name.clone(),
        }))
    }

    /// Builds the placement **without** the §4.3/§4.5 validation — every
    /// edge must still have *a* placement, but domination, path-sharing,
    /// and the speculative prerequisites are not enforced.
    ///
    /// This exists solely so the lock-discipline analyzer's rejection
    /// battery (see [`crate::analysis`]) can construct deliberately
    /// ill-formed placements and prove they are flagged; never hand one of
    /// these to an executor.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllFormedPlacement`] if some edge has no placement at
    /// all (the analyzer needs a total edge map to run).
    pub fn build_unchecked(&self) -> Result<Arc<LockPlacement>, CoreError> {
        let d = &self.decomp;
        let mut edges = Vec::with_capacity(d.edge_count());
        for (e, em) in d.edges() {
            let ep = self.edges[e.index()].ok_or_else(|| {
                CoreError::IllFormedPlacement(format!(
                    "edge {}→{} has no placement",
                    d.node(em.src).name,
                    d.node(em.dst).name
                ))
            })?;
            edges.push(ep);
        }
        Ok(Arc::new(LockPlacement {
            decomp: Arc::clone(d),
            edges,
            stripe_counts: self.stripe_counts.clone(),
            name: self.name.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, diamond, split, stick};
    use relc_containers::ContainerKind;
    use relc_spec::Value;

    #[test]
    fn coarse_places_everything_at_root() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        for (e, _) in d.edges() {
            assert_eq!(p.edge(e).host, d.root());
            assert!(!p.edge(e).speculative);
        }
        assert_eq!(p.stripe_count(d.root()), 1);
        assert_eq!(p.name(), "coarse");
    }

    #[test]
    fn fine_places_each_edge_at_source() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        for (e, em) in d.edges() {
            assert_eq!(p.edge(e).host, em.src);
        }
    }

    #[test]
    fn striped_root_requires_concurrent_container() {
        // HashMap at the root + striping splits one container instance
        // across stripes: rejected.
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        assert!(matches!(
            LockPlacement::striped_root(&d, 8),
            Err(CoreError::IncompatibleContainer(_))
        ));
        // With a ConcurrentHashMap it validates.
        let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let p = LockPlacement::striped_root(&d, 8).unwrap();
        assert_eq!(p.stripe_count(d.root()), 8);
        // k = 1 striping of a non-concurrent container is fine (no split).
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        assert!(LockPlacement::striped_root(&d, 1).is_ok());
    }

    #[test]
    fn speculative_requires_linearizable_lookups() {
        let d = diamond(ContainerKind::HashMap, ContainerKind::HashMap);
        assert!(matches!(
            LockPlacement::speculative(&d, 4),
            Err(CoreError::IncompatibleContainer(_))
        ));
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::speculative(&d, 4).unwrap();
        let rx = d.edge_between("ρ", "x").unwrap();
        assert!(p.edge(rx).speculative);
        let xw = d.edge_between("x", "w").unwrap();
        assert!(!p.edge(xw).speculative);
    }

    #[test]
    fn domination_violation_rejected() {
        // Place edge y→w's lock at x: x does not dominate y.
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let x = d.node_by_name("x").unwrap();
        let yw = d.edge_between("y", "w").unwrap();
        let mut b = LockPlacement::builder(Arc::clone(&d));
        for (e, em) in d.edges() {
            if e == yw {
                b.place(e, x);
            } else {
                b.place(e, em.src);
            }
        }
        match b.build() {
            Err(CoreError::IllFormedPlacement(m)) => assert!(m.contains("dominate"), "{m}"),
            other => panic!("expected IllFormedPlacement, got {other:?}"),
        }
    }

    #[test]
    fn path_sharing_violation_rejected() {
        // Stick: place u→v at ρ but ρ→u at u. The path ρ→u protecting u→v
        // is not owned by ρ.
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let ru = d.edge_between("ρ", "u").unwrap();
        let uv = d.edge_between("u", "v").unwrap();
        let vw = d.edge_between("v", "w").unwrap();
        let u = d.node_by_name("u").unwrap();
        let v = d.node_by_name("v").unwrap();
        let mut b = LockPlacement::builder(Arc::clone(&d));
        b.place(ru, u); // ill-formed by itself (u does not dominate... u is
                        // the TARGET; host must dominate source ρ; u doesn't)
        b.place(uv, d.root());
        b.place(vw, v);
        assert!(b.build().is_err());

        // Clean path-sharing failure: ρ→u at ρ, u→v at ρ, v→w at v is fine;
        // but ρ→u at ρ, u→v at u, v→w at ρ breaks sharing on path ρ…→v.
        let mut b = LockPlacement::builder(Arc::clone(&d));
        b.place(ru, d.root());
        b.place(uv, u);
        b.place(vw, d.root());
        match b.build() {
            Err(CoreError::IllFormedPlacement(m)) => {
                assert!(m.contains("path-sharing"), "{m}")
            }
            other => panic!("expected path-sharing failure, got {other:?}"),
        }
    }

    #[test]
    fn speculative_only_from_root() {
        let d = stick(
            ContainerKind::ConcurrentHashMap,
            ContainerKind::ConcurrentHashMap,
        );
        let uv = d.edge_between("u", "v").unwrap();
        let mut b = LockPlacement::builder(Arc::clone(&d));
        for (e, em) in d.edges() {
            if e == uv {
                b.place_speculative(e, ColumnSet::EMPTY);
            } else {
                b.place(e, em.src);
            }
        }
        match b.build() {
            Err(CoreError::IllFormedPlacement(m)) => assert!(m.contains("root"), "{m}"),
            other => panic!("expected root-only speculation failure, got {other:?}"),
        }
    }

    #[test]
    fn fallback_tokens_stripe_selection() {
        let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let p = LockPlacement::striped_root(&d, 16).unwrap();
        let ru = d.edge_between("ρ", "u").unwrap();
        let s = d.schema();
        let t = s.tuple(&[("src", Value::from(7))]).unwrap();
        let toks = p.fallback_tokens(ru, &t);
        assert_eq!(toks.len(), 1, "src bound picks one stripe");
        assert!(toks[0].stripe < 16);
        assert_eq!(toks[0].node_pos, 0);
        // Same src → same stripe (deterministic); different src → usually
        // different (check a spread).
        let toks2 = p.fallback_tokens(ru, &s.tuple(&[("src", Value::from(7))]).unwrap());
        assert_eq!(toks, toks2);
        // Unbound stripe columns take all stripes.
        let all = p.fallback_tokens(ru, &Tuple::empty());
        assert_eq!(all.len(), 16);
        // Tokens are ordered by stripe.
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn token_order_node_then_instance_then_stripe() {
        let a = LockToken {
            node_pos: 0,
            instance: Tuple::empty(),
            stripe: 5,
        };
        let b = LockToken {
            node_pos: 1,
            instance: Tuple::empty(),
            stripe: 0,
        };
        assert!(a < b);
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::fine(&d).unwrap();
        let uv = d.edge_between("u", "v").unwrap();
        let s = d.schema();
        let t1 = s.tuple(&[("src", Value::from(1))]).unwrap();
        let t2 = s.tuple(&[("src", Value::from(2))]).unwrap();
        let tok1 = &p.fallback_tokens(uv, &t1)[0];
        let tok2 = &p.fallback_tokens(uv, &t2)[0];
        assert!(tok1 < tok2, "instances ordered lexicographically");
    }

    #[test]
    fn dcache_fine_placement_validates() {
        let d = dcache();
        let p = LockPlacement::fine(&d).unwrap();
        assert!(p.describe().contains("ρ→x @ ρ"));
        // dcache's ρ→y hash edge admits no container-instance concurrency
        // under fine (single lock at ρ).
        let ry = d.edge_between("ρ", "y").unwrap();
        assert!(!p.admits_container_concurrency(ry));
    }

    #[test]
    fn read_mode_exclusive_for_splay() {
        let d = stick(ContainerKind::SplayTreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let ru = d.edge_between("ρ", "u").unwrap();
        let uv = d.edge_between("u", "v").unwrap();
        assert_eq!(p.read_mode(ru), LockMode::Exclusive);
        assert_eq!(p.read_mode(uv), LockMode::Shared);
    }

    #[test]
    fn admits_concurrency_analysis() {
        let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let striped = LockPlacement::striped_root(&d, 1024).unwrap();
        let ru = d.edge_between("ρ", "u").unwrap();
        let uv = d.edge_between("u", "v").unwrap();
        assert!(striped.admits_container_concurrency(ru));
        assert!(!striped.admits_container_concurrency(uv));
        let coarse = LockPlacement::coarse(&d).unwrap();
        assert!(!coarse.admits_container_concurrency(ru));
        let d2 = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let spec = LockPlacement::speculative(&d2, 8).unwrap();
        let rx = d2.edge_between("ρ", "x").unwrap();
        assert!(spec.admits_container_concurrency(rx));
    }
}
