//! Plan execution under the two-phase locking engine (§5).
//!
//! The [`Executor`] interprets compiled plans against a decomposition
//! instance, acquiring the physical locks named by the placement through a
//! [`TwoPhaseEngine`]. Every operation is well-locked (locks precede the
//! reads/writes they cover — a planner invariant) and two-phase (the engine
//! releases only at commit/abort), so by §4.2 the operations are
//! serializable; the §5.1 lock order plus the engine's try-and-restart rule
//! for out-of-order acquisitions gives deadlock freedom.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::{Bound, ControlFlow};
use std::sync::Arc;

use relc_locks::{LockMode, MustRestart, TwoPhaseEngine};
use relc_spec::{ColumnSet, RangePattern, Tuple, Value};

use crate::decomp::{Decomposition, EdgeId, NodeId};
use crate::instance::{NodeInstance, NodeRef};
use crate::mvcc::MvccScope;
use crate::placement::{LockPlacement, LockToken};
use crate::planner::{
    InPlaceUpdate, InsertBatchPlan, InsertPlan, MutTraverse, Plan, RemoveBatchPlan, RemovePlan,
};
use crate::query::{PlanStep, QueryState};

/// How a [`Executor::run_insert`] call participates in the transaction
/// layer's write compensation (see `txn.rs`).
#[derive(Clone, Copy)]
pub enum InsertUndo<'p> {
    /// The final write phase of a single-shot operation: no later
    /// operation of the same transaction can restart, so this insert can
    /// never be compensated and no extra locks are needed.
    None,
    /// A mid-transaction insert that may later be compensated by a
    /// structural removal (the given inverse plan): pre-acquire, before
    /// the first write, every token that removal could need beyond the
    /// insert's own set, so the compensation can never restart.
    Prepare(&'p RemovePlan),
    /// Like [`InsertUndo::Prepare`], but for the *final* operation of a
    /// single-shot transaction (a `ConcurrentRelation::insert_all` batch):
    /// compensation is still possible (a later row of the same batch can
    /// restart), so the inverse's extra tokens are pre-acquired — but no
    /// later operation of this transaction will ever *read* the freshly
    /// materialized subtrees, so their host locks need not enter the
    /// engine. Other transactions cannot reach them either: locked
    /// readers block on the root-hosted tokens the batch sweep holds, and
    /// speculative readers on the pre-acquired target-side locks.
    PrepareFinal(&'p RemovePlan),
    /// This insert *is* a compensation step (re-inserting a removed
    /// tuple during rollback). Freshly materialized speculative targets
    /// must still take their target-side locks before publication: the
    /// re-inserted value may be uncommitted state that the rest of the
    /// rollback undoes again, so a speculative reader acquiring the
    /// otherwise-free lock would dirty-read it — and a later compensation
    /// step (an unlink of the same key) would then find the lock
    /// contended and restart, which rollback must never do.
    Compensation,
}

impl<'p> InsertUndo<'p> {
    /// [`InsertUndo::Prepare`] when a mid-transaction inverse plan exists,
    /// [`InsertUndo::None`] for the final phase of a single-shot operation.
    pub fn from_inverse(inverse: Option<&'p RemovePlan>) -> Self {
        match inverse {
            Some(p) => InsertUndo::Prepare(p),
            None => InsertUndo::None,
        }
    }
}

/// FNV-1a, the hasher for the batch-local maps: their keys are consulted
/// once or twice per row on the hot path, where SipHash's per-hash setup
/// cost (the `HashMap` default) is measurable and HashDoS resistance is
/// irrelevant (the maps live for one batch, keyed by the caller's own
/// tuples).
#[derive(Default, Clone, Copy)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type BuildFnv = std::hash::BuildHasherDefault<FnvHasher>;

/// Assembles the canonical `query_range` output from surviving (full or
/// partial) tuples: filter by the interval, order by **(range value,
/// projected tuple)**, deduplicate keeping first occurrences, truncate at
/// the limit — exactly [`relc_spec::OracleRelation::query_range`]'s
/// reference order. Shared by the locked executor, the MVCC snapshot
/// interpreter, and the sharded fan-out merge, so every access path agrees
/// with the oracle tuple-for-tuple.
pub(crate) fn assemble_range_output(
    tuples: impl IntoIterator<Item = Tuple>,
    range: &RangePattern,
    output: ColumnSet,
) -> Vec<Tuple> {
    let mut matched: Vec<(Value, Tuple)> = tuples
        .into_iter()
        .filter_map(|t| {
            let v = t.get(range.col()).filter(|v| range.contains(v))?.clone();
            Some((v, t.project(output)))
        })
        .collect();
    matched.sort();
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (_, p) in matched {
        if seen.insert(p.clone()) {
            out.push(p);
            if range.limit().is_some_and(|k| out.len() >= k) {
                break;
            }
        }
    }
    out
}

/// The container-key interval of a range over a single-column edge: each
/// value bound becomes a single-field key tuple bound (tuple order over
/// single-column keys coincides with value order).
pub(crate) fn range_key_bounds(range: &RangePattern) -> (Bound<Tuple>, Bound<Tuple>) {
    let mk = |b: Bound<&Value>| match b {
        Bound::Included(v) => Bound::Included(Tuple::from_pairs([(range.col(), v.clone())])),
        Bound::Excluded(v) => Bound::Excluded(Tuple::from_pairs([(range.col(), v.clone())])),
        Bound::Unbounded => Bound::Unbounded,
    };
    (mk(range.lo()), mk(range.hi()))
}

/// Batch-local state threaded through [`Executor::run_insert_all`]'s
/// per-row passes.
struct BatchInsertCtx<'b> {
    /// Indexed by edge: the edge leaves the root, so its publication is
    /// deferred to the flush (from the batch plan).
    defer: &'b [bool],
    /// Deferred publications: (edge, entry key) → complete-but-unpublished
    /// child instance. Later rows of the same batch consult this map so
    /// shared subtrees stay shared.
    pending: &'b mut HashMap<(EdgeId, Tuple), NodeRef, BuildFnv>,
}

/// Executes compiled plans for one transaction at a time.
pub struct Executor<'a> {
    decomp: &'a Decomposition,
    placement: &'a LockPlacement,
    engine: &'a mut TwoPhaseEngine<LockToken>,
    /// Ablation knob: ignore the planner's sort-elision analysis and always
    /// sort lock sets at runtime (§5.2).
    pub always_sort_locks: bool,
    /// MVCC state of the current attempt: the shared commit stamp and the
    /// journal of mirrored writes (see [`crate::mvcc`]).
    mvcc: MvccScope,
}

impl<'a> Executor<'a> {
    /// Creates an executor borrowing the transaction's lock engine.
    pub fn new(
        decomp: &'a Decomposition,
        placement: &'a LockPlacement,
        engine: &'a mut TwoPhaseEngine<LockToken>,
    ) -> Self {
        Executor {
            decomp,
            placement,
            engine,
            always_sort_locks: false,
            mvcc: MvccScope::default(),
        }
    }

    /// Takes the attempt's MVCC state; the commit/rollback paths stamp
    /// and retire it before the engine releases any lock.
    pub(crate) fn take_mvcc(&mut self) -> MvccScope {
        std::mem::take(&mut self.mvcc)
    }

    /// Pre-seeds the attempt's commit stamp (cross-shard transactions
    /// share one stamp across every shard's executor).
    pub(crate) fn set_mvcc_stamp(&mut self, stamp: Arc<relc_locks::CommitStamp>) {
        self.mvcc.set_stamp(stamp);
    }

    /// Mirrors a locked container write into `host`'s shadow version
    /// index for `edge` (see [`crate::mvcc`]). Called at every site that
    /// mutates an edge container, under the same exclusive locks.
    fn mvcc_write(&mut self, host: &NodeRef, edge: EdgeId, key: Tuple, value: Option<NodeRef>) {
        let guard = relc_containers::epoch::pin();
        self.mvcc.write(self.decomp, host, edge, key, value, &guard);
    }

    /// Whether the engine has entered the shrinking phase. The
    /// transaction layer asserts this stays `false` between operations:
    /// plans never release early, so a shrinking engine mid-transaction
    /// means two-phase discipline was broken.
    pub(crate) fn engine_in_shrinking_phase(&self) -> bool {
        self.engine.in_shrinking_phase()
    }

    /// Demotes every future acquisition to a try (see
    /// [`TwoPhaseEngine::set_try_only`]); used by cross-shard
    /// transactions once this executor's shard stops being the highest
    /// shard they hold locks in.
    pub(crate) fn set_try_only(&mut self) {
        self.engine.set_try_only();
    }

    /// Acquires the physical locks implementing `edge`'s logical locks for
    /// every state, in `mode`.
    fn lock_step(
        &mut self,
        states: &[QueryState],
        edge: EdgeId,
        mode: LockMode,
        presorted: bool,
        all_stripes: bool,
    ) -> Result<(), MustRestart> {
        let host = self.placement.edge(edge).host;
        let mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)> = Vec::new();
        for st in states {
            let inst = st.instance(host);
            let tokens = if all_stripes {
                self.placement.all_stripe_tokens(edge, &st.tuple)
            } else {
                self.placement.fallback_tokens(edge, &st.tuple)
            };
            for tok in tokens {
                let lock = Arc::clone(inst.lock(tok.stripe));
                batch.push((tok, lock));
            }
        }
        if presorted && !self.always_sort_locks {
            debug_assert!(
                batch.windows(2).all(|w| w[0].0 <= w[1].0),
                "planner sort-elision analysis was wrong"
            );
            for (tok, lock) in batch {
                self.engine.acquire(tok, &lock, mode)?;
            }
            return Ok(());
        }
        self.acquire_sorted_batch(batch, mode)
    }

    /// Sorts a batch of physical locks into the §5.1 global token order and
    /// acquires each in `mode` — the shared tail of every mutation path's
    /// lock batching.
    fn acquire_sorted_batch(
        &mut self,
        mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)>,
        mode: LockMode,
    ) -> Result<(), MustRestart> {
        batch.sort_by(|a, b| a.0.cmp(&b.0));
        for (tok, lock) in batch {
            self.engine.acquire(tok, &lock, mode)?;
        }
        Ok(())
    }

    /// Point traversal: every state follows its bound key through `edge`'s
    /// container; states whose edge instance is absent die.
    fn lookup_step(&self, states: Vec<QueryState>, edge: EdgeId) -> Vec<QueryState> {
        let em = self.decomp.edge(edge);
        let mut out = Vec::with_capacity(states.len());
        for mut st in states {
            let key = st.tuple.project(em.cols);
            debug_assert!(
                key.is_valuation_for(em.cols),
                "planner invariant: lookup key fully bound"
            );
            let src = st.instance(em.src).clone();
            if let Some(child) = src.container(self.decomp, edge).lookup(&key) {
                st.nodes[em.dst.index()] = Some(child);
                out.push(st);
            }
        }
        out
    }

    /// Scan traversal: every state fans out over `edge`'s container entries
    /// that match its pattern.
    fn scan_step(&self, states: Vec<QueryState>, edge: EdgeId) -> Vec<QueryState> {
        let em = self.decomp.edge(edge);
        let mut out = Vec::new();
        for st in states {
            let src = st.instance(em.src).clone();
            src.container(self.decomp, edge)
                .scan(&mut |k: &Tuple, child: &NodeRef| {
                    if st.tuple.matches(k) {
                        let mut next = st.clone();
                        next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                        next.nodes[em.dst.index()] = Some(Arc::clone(child));
                        out.push(next);
                    }
                    ControlFlow::Continue(())
                });
        }
        out
    }

    /// Bounded range traversal: every state fans out over `edge`'s entries
    /// inside the key interval induced by `range` (the planner guarantees
    /// the edge keys on exactly the range column, so the value interval
    /// *is* a contiguous key interval). On sorted containers the walk
    /// visits only the interval, in ascending value order; elsewhere
    /// [`relc_containers::Container::scan_range`] degrades to a filtered
    /// full scan.
    ///
    /// `distinct_limit` is the top-k short circuit, passed only when the
    /// walk is ordered *and* this is the plan's final traversal: entries
    /// arrive in strictly ascending value order per state (one container
    /// entry per value), so once `k` distinct output projections have been
    /// collected, every later entry either duplicates one (with a larger
    /// value, which dedup discards) or has `k` strictly smaller distinct
    /// predecessors — never in the global top-k.
    fn range_scan_step(
        &self,
        states: Vec<QueryState>,
        edge: EdgeId,
        range: &RangePattern,
        distinct_limit: Option<(usize, ColumnSet)>,
    ) -> Vec<QueryState> {
        let em = self.decomp.edge(edge);
        debug_assert!(
            em.cols == ColumnSet::single(range.col()),
            "planner invariant: range-scanned edge keys on the range column"
        );
        let (lo, hi) = range_key_bounds(range);
        let mut out = Vec::new();
        for st in states {
            let src = st.instance(em.src).clone();
            let mut distinct: BTreeSet<Tuple> = BTreeSet::new();
            src.container(self.decomp, edge).scan_range(
                lo.as_ref(),
                hi.as_ref(),
                &mut |k: &Tuple, child: &NodeRef| {
                    if st.tuple.matches(k) {
                        let mut next = st.clone();
                        next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                        next.nodes[em.dst.index()] = Some(Arc::clone(child));
                        if let Some((limit, output)) = &distinct_limit {
                            distinct.insert(next.tuple.project(*output));
                            out.push(next);
                            if distinct.len() >= *limit {
                                return ControlFlow::Break(());
                            }
                        } else {
                            out.push(next);
                        }
                    }
                    ControlFlow::Continue(())
                },
            );
        }
        out
    }

    /// §4.5 speculative point traversal for reads: guess with an unlocked
    /// (linearizable) lookup, lock the target if present or the fallback
    /// stripe if absent, re-validate, and restart the transaction on a
    /// wrong guess.
    fn spec_lookup_step(
        &mut self,
        states: Vec<QueryState>,
        edge: EdgeId,
        mode: LockMode,
    ) -> Result<Vec<QueryState>, MustRestart> {
        let em = self.decomp.edge(edge);
        let mut out = Vec::new();
        for mut st in states {
            let key = st.tuple.project(em.cols);
            let src = st.instance(em.src).clone();
            let container = src.container(self.decomp, edge);
            match container.lookup(&key) {
                Some(child) => {
                    // Guess: present. Lock the target instance, then verify
                    // that the edge still points at the same object.
                    let tok = self.placement.target_token(edge, child.key());
                    let lock = Arc::clone(child.lock(0));
                    self.engine.acquire(tok, &lock, mode)?;
                    match container.lookup(&key) {
                        Some(now) if Arc::ptr_eq(&now, &child) => {
                            st.nodes[em.dst.index()] = Some(child);
                            out.push(st);
                        }
                        _ => return Err(self.engine.fail_speculation()),
                    }
                }
                None => {
                    // Guess: absent. Lock the fallback stripe(s) at the
                    // source, then verify the edge is still absent.
                    for tok in self.placement.fallback_tokens(edge, &st.tuple) {
                        let lock = Arc::clone(src.lock(tok.stripe));
                        self.engine.acquire(tok, &lock, mode)?;
                    }
                    if container.lookup(&key).is_some() {
                        return Err(self.engine.fail_speculation());
                    }
                    // Verified absent: the state dies (no tuple downstream).
                }
            }
        }
        Ok(out)
    }

    /// Runs a compiled query plan; returns the deduplicated projection of
    /// the surviving states (§2's `query r s C`).
    ///
    /// # Errors
    ///
    /// [`MustRestart`] if lock acquisition or speculation failed; the caller
    /// rolls back and retries.
    pub fn run_query(
        &mut self,
        plan: &Plan,
        pattern: &Tuple,
        root: &NodeRef,
    ) -> Result<Vec<Tuple>, MustRestart> {
        let mut states = vec![QueryState::initial(
            self.decomp,
            pattern.clone(),
            Arc::clone(root),
        )];
        for step in &plan.steps {
            match step {
                PlanStep::Lock {
                    edge,
                    mode,
                    presorted,
                    all_stripes,
                } => {
                    self.lock_step(&states, *edge, *mode, *presorted, *all_stripes)?;
                }
                PlanStep::Lookup { edge } => {
                    states = self.lookup_step(states, *edge);
                }
                PlanStep::Scan { edge } => {
                    states = self.scan_step(states, *edge);
                }
                PlanStep::RangeScan { .. } => {
                    unreachable!("plan_query never emits RangeScan; use run_query_range")
                }
                PlanStep::SpecLookup { edge, mode } => {
                    states = self.spec_lookup_step(states, *edge, *mode)?;
                }
            }
            if states.is_empty() {
                return Ok(Vec::new());
            }
        }
        let set: BTreeSet<Tuple> = states
            .into_iter()
            .map(|st| st.tuple.project(plan.output))
            .collect();
        Ok(set.into_iter().collect())
    }

    /// Runs a compiled range plan (§2's `query_range r s ρ C`): interprets
    /// the chain exactly as [`Executor::run_query`], with
    /// [`PlanStep::RangeScan`] steps walking only the key interval, then
    /// assembles the canonical output — matches ordered by (range value,
    /// projection), deduplicated, truncated at the limit — via
    /// [`assemble_range_output`].
    ///
    /// The final filter re-checks the interval on every surviving state, so
    /// chains that bind the range column through an ordinary multi-column
    /// scan (no single-column edge qualified) are just as correct — they
    /// only do more work.
    ///
    /// # Errors
    ///
    /// [`MustRestart`] if lock acquisition or speculation failed; the caller
    /// rolls back and retries.
    pub fn run_query_range(
        &mut self,
        plan: &Plan,
        pattern: &Tuple,
        range: &RangePattern,
        root: &NodeRef,
    ) -> Result<Vec<Tuple>, MustRestart> {
        let mut states = vec![QueryState::initial(
            self.decomp,
            pattern.clone(),
            Arc::clone(root),
        )];
        let last = plan.steps.len().saturating_sub(1);
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                PlanStep::Lock {
                    edge,
                    mode,
                    presorted,
                    all_stripes,
                } => {
                    self.lock_step(&states, *edge, *mode, *presorted, *all_stripes)?;
                }
                PlanStep::Lookup { edge } => {
                    states = self.lookup_step(states, *edge);
                }
                PlanStep::Scan { edge } => {
                    states = self.scan_step(states, *edge);
                }
                PlanStep::RangeScan { edge, ordered } => {
                    let distinct_limit = if *ordered && i == last {
                        range.limit().map(|k| (k, plan.output))
                    } else {
                        None
                    };
                    states = self.range_scan_step(states, *edge, range, distinct_limit);
                }
                PlanStep::SpecLookup { edge, mode } => {
                    states = self.spec_lookup_step(states, *edge, *mode)?;
                }
            }
            if states.is_empty() {
                return Ok(Vec::new());
            }
        }
        Ok(assemble_range_output(
            states.into_iter().map(|st| st.tuple),
            range,
            plan.output,
        ))
    }

    /// Acquires exclusive locks on every root-hosted edge for the tuple
    /// `bound` (insert: the full tuple; remove: the key pattern), in one
    /// sorted batch. Root-hosted edges include all speculative fallbacks,
    /// which freezes the presence of speculative edges for the rest of the
    /// transaction. `force_all` selects edges whose whole stripe set must be
    /// taken (scanned root edges in removals).
    fn lock_root_batch(
        &mut self,
        bound: &Tuple,
        root: &NodeRef,
        force_all: &dyn Fn(EdgeId) -> bool,
    ) -> Result<(), MustRestart> {
        let mut batch: Vec<LockToken> = Vec::new();
        for (e, _) in self.decomp.edges() {
            if self.placement.edge(e).host == self.decomp.root() {
                if force_all(e) {
                    batch.extend(self.placement.all_stripe_tokens(e, bound));
                } else {
                    batch.extend(self.placement.fallback_tokens(e, bound));
                }
            }
        }
        batch.sort();
        batch.dedup();
        for tok in batch {
            let lock = Arc::clone(root.lock(tok.stripe));
            self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
        }
        Ok(())
    }

    /// Acquires the migration write fence: every stripe of every
    /// root-hosted edge, exclusively, in one sorted batch — the same
    /// all-stripe sweep scanning removals use, widened to the whole root.
    ///
    /// Every locked operation holds at least one root-hosted lock for its
    /// full two-phase scope: mutations take the root batch
    /// ([`Executor::lock_root_batch`]), locked reads traverse from the
    /// root, and even the speculative in-place update pins its fallback
    /// root stripe before the target protocol. Holding the complete sweep
    /// therefore means no writer is in flight and none can acquire until
    /// the fence releases; `ConcurrentRelation::migrate_to` runs its
    /// MVCC cut, bulk load, and root swap under this fence.
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on contention, like any other acquisition — the
    /// migration loop backs off and retries.
    pub(crate) fn acquire_migration_fence(&mut self, root: &NodeRef) -> Result<(), MustRestart> {
        // The root's key columns are empty, so the empty tuple is a valid
        // instance bound for every root-hosted token.
        let bound = Tuple::empty();
        let mut batch: Vec<LockToken> = Vec::new();
        for (e, _) in self.decomp.edges() {
            if self.placement.edge(e).host == self.decomp.root() {
                batch.extend(self.placement.all_stripe_tokens(e, &bound));
            }
        }
        batch.sort();
        batch.dedup();
        for tok in batch {
            let lock = Arc::clone(root.lock(tok.stripe));
            self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
        }
        Ok(())
    }

    /// Runs a compiled insert plan for the full tuple `x = s ∪ t` with
    /// pattern `s`. Returns whether the tuple was inserted (put-if-absent,
    /// §2).
    ///
    /// `undo` is the multi-operation transaction layer's compensation
    /// mode: when a *later* operation of the same transaction restarts,
    /// this insert is compensated by structurally removing `x`, and that
    /// removal must never itself restart (the transaction would be left
    /// half-applied). [`InsertUndo::Prepare`] carries the inverse
    /// [`RemovePlan`] and makes the insert pre-acquire, *before its first
    /// write*, the only tokens the compensation could need beyond the
    /// insert's own set: the all-stripes tokens of edges whose removal
    /// covers a whole striped container instance, plus the target-side
    /// locks of speculative children. Single-shot operations pass
    /// [`InsertUndo::None`] — their writes are the final phase of the
    /// transaction, so no compensation can run. Compensation re-inserts
    /// pass [`InsertUndo::Compensation`], which still locks freshly
    /// materialized speculative targets before publishing them (see its
    /// docs for why rollback correctness depends on this).
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on lock contention; the caller rolls back and
    /// retries.
    pub fn run_insert(
        &mut self,
        plan: &InsertPlan,
        x: &Tuple,
        s: &Tuple,
        root: &NodeRef,
        undo: InsertUndo<'_>,
    ) -> Result<bool, MustRestart> {
        // A scanning existence check reads whole container instances
        // unlocked; take every root stripe so no sibling-stripe writer can
        // race the scan (`InsertPlan::check_has_scan`).
        self.lock_root_batch(x, root, &|_| plan.check_has_scan)?;
        let mut order: Vec<NodeId> = self.decomp.nodes().map(|(id, _)| id).collect();
        order.sort_by_key(|&v| self.decomp.topo_position(v));
        self.insert_under_root_locks(plan, x, s, root, undo, &order, None)
    }

    /// The per-tuple body of [`Executor::run_insert`], entered with the
    /// tuple's root-hosted locks already held (by `run_insert`'s own root
    /// batch, or by [`Executor::run_insert_all`]'s bulk sweep).
    ///
    /// `topo_nodes` is the materialization order (all nodes, topologically
    /// sorted — batch plans cache it so it is not re-sorted per row). When
    /// `batch` is given, root-source edge publications are *deferred*: the
    /// completed child goes into the batch's pending map instead of the
    /// root container, and lookups consult that map, so later rows of the
    /// same batch still share subtrees. The caller flushes the map — in one
    /// fused [`relc_containers::Container::extend_entries`] call per
    /// container — before releasing any lock.
    #[allow(clippy::too_many_arguments)]
    fn insert_under_root_locks(
        &mut self,
        plan: &InsertPlan,
        x: &Tuple,
        s: &Tuple,
        root: &NodeRef,
        undo: InsertUndo<'_>,
        topo_nodes: &[NodeId],
        mut batch: Option<BatchInsertCtx<'_>>,
    ) -> Result<bool, MustRestart> {
        // Walk every edge in mutation order, locking non-root hosts and
        // recording bindings/presence along x's projections.
        let mut bindings: Vec<Option<NodeRef>> = vec![None; self.decomp.node_count()];
        bindings[self.decomp.root().index()] = Some(Arc::clone(root));
        let mut present = vec![false; self.decomp.edge_count()];
        for &e in &plan.edges {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let host_bound = bindings[ep.host.index()].is_some();
            if ep.host != self.decomp.root() && host_bound {
                for tok in self.placement.fallback_tokens(e, x) {
                    let lock = {
                        let host_inst = bindings[ep.host.index()].as_ref().expect("bound");
                        Arc::clone(host_inst.lock(tok.stripe))
                    };
                    self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
                }
            }
            // Traverse by x's projection (x is a full valuation).
            let Some(src_inst) = bindings[em.src.index()].clone() else {
                continue; // absent prefix: subtree will be created privately
            };
            let key = x.project(em.cols);
            let found = src_inst.container(self.decomp, e).lookup(&key).or_else(|| {
                // An earlier row of this batch may have created the edge
                // with its publication still pending.
                batch
                    .as_ref()
                    .filter(|ctx| ctx.defer[e.index()])
                    .and_then(|ctx| ctx.pending.get(&(e, key.clone())).cloned())
            });
            if let Some(child) = found {
                // Speculative edges: presence is frozen by the fallback
                // lock held exclusively, so no target lock or re-validation
                // is needed for the existence check.
                match &bindings[em.dst.index()] {
                    Some(prev) => debug_assert!(
                        Arc::ptr_eq(prev, &child),
                        "shared node reached with different instances"
                    ),
                    None => bindings[em.dst.index()] = Some(child),
                }
                present[e.index()] = true;
            }
        }

        // Existence check: does any tuple extend s? (Chain over dom s.)
        // When the chain's first step is a point lookup, the walk above
        // already answered it: the lookup key is `s`'s projection, which
        // coincides with `x`'s on columns bound by `s`, and the walk
        // evaluates every root-source edge definitively. An absent first
        // edge means no tuple extends `s` — the common case for fresh-key
        // inserts — so the chain traversal is skipped entirely.
        let exists = match plan.check.first() {
            Some(&(e1, MutTraverse::Lookup)) if !present[e1.index()] => false,
            _ => self.check_exists(&plan.check, s, &bindings),
        };
        if exists {
            return Ok(false);
        }

        // Pre-acquire the compensation tokens (see the doc comment): the
        // inverse removal's all-stripes edges on hosts that already exist,
        // plus the target-side locks of present speculative children —
        // the inverse removal acquires those, and it must find them
        // uncontended. Hosts we are about to create fresh are unreachable
        // to other transactions until published, so their locks cannot be
        // contended (they are taken below, after creation).
        if let InsertUndo::Prepare(inverse) | InsertUndo::PrepareFinal(inverse) = undo {
            let mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)> = Vec::new();
            for (i, &(e, _)) in inverse.edges.iter().enumerate() {
                let ep = self.placement.edge(e);
                if ep.speculative && present[e.index()] {
                    let child = bindings[self.decomp.edge(e).dst.index()]
                        .as_ref()
                        .expect("present edge binds its target");
                    batch.push((
                        self.placement.target_token(e, child.key()),
                        Arc::clone(child.lock(0)),
                    ));
                }
                if !inverse.all_stripes[i] {
                    continue;
                }
                let Some(host_inst) = bindings[ep.host.index()].as_ref() else {
                    continue;
                };
                for tok in self.placement.all_stripe_tokens(e, x) {
                    let lock = Arc::clone(host_inst.lock(tok.stripe));
                    batch.push((tok, lock));
                }
            }
            self.acquire_sorted_batch(batch, LockMode::Exclusive)?;
        }

        // Materialize: create missing instances in topological order,
        // remembering which hosts pre-existed (those were locked during
        // the walk above; fresh ones were not).
        let mut prebound = vec![false; self.decomp.node_count()];
        for &v in topo_nodes {
            match &bindings[v.index()] {
                Some(_) => prebound[v.index()] = true,
                None => {
                    let key = x.project(self.decomp.node(v).key_cols);
                    bindings[v.index()] =
                        Some(NodeInstance::new(self.decomp, self.placement, v, key));
                }
            }
        }
        // Compensation tokens for *fresh* hosts: the walk only locks hosts
        // that already exist, so the lock sets of freshly materialized
        // instances would be published free. A single-shot insert never
        // needs them held, but a mid-transaction insert must pre-acquire
        // them: a later shared read of the same transaction (a query
        // through the new subtree) would otherwise hold them shared, and
        // the compensating unlink's exclusive acquisition would then be an
        // upgrade — which rollback must never hit. The instances are
        // unpublished here, so these try-acquisitions cannot fail.
        if matches!(undo, InsertUndo::Prepare(_)) {
            for &e in &plan.edges {
                let ep = self.placement.edge(e);
                if ep.host == self.decomp.root() || prebound[ep.host.index()] {
                    continue;
                }
                let host_inst = bindings[ep.host.index()].as_ref().expect("all bound");
                for tok in self.placement.all_stripe_tokens(e, x) {
                    let lock = Arc::clone(host_inst.lock(tok.stripe));
                    self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
                }
            }
        }
        // Compensation tokens, part two: targets of speculative edges we
        // are about to write. Fresh instances are unpublished (always
        // uncontended); a shared pre-existing target can contend with a
        // speculative reader, which restarts us — still before any write.
        // This also runs for compensation re-inserts: a fresh target
        // published with its lock free would let speculative readers
        // dirty-read the rolled-back value and could make a later
        // compensating unlink of the same key restart (the engine's
        // shadowed-lock mechanism re-acquires the fresh object under the
        // already-held token, and an unpublished lock is uncontended, so
        // the acquisition here cannot itself fail).
        if !matches!(undo, InsertUndo::None) {
            for &e in &plan.edges {
                if present[e.index()] || !self.placement.edge(e).speculative {
                    continue;
                }
                let dst = bindings[self.decomp.edge(e).dst.index()]
                    .as_ref()
                    .expect("all bound");
                let tok = self.placement.target_token(e, dst.key());
                let lock = Arc::clone(dst.lock(0));
                self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
            }
        }
        // Write the missing edges in *reverse* mutation order: subtrees
        // complete before the root-hosted edge publishes them. Locked
        // observers cannot look mid-flight, but §4.5 speculative readers
        // guess through unlocked lookups — they must never find a link to
        // a half-built instance.
        for &e in plan.edges.iter().rev() {
            if present[e.index()] {
                continue;
            }
            let em = self.decomp.edge(e);
            let src = bindings[em.src.index()]
                .as_ref()
                .expect("all bound")
                .clone();
            let dst = bindings[em.dst.index()]
                .as_ref()
                .expect("all bound")
                .clone();
            // Mirror the publication into the version index first: the
            // version stays tentative (invisible to snapshot readers)
            // until the commit stamp publishes, so mirror-then-write and
            // write-then-mirror are indistinguishable — and mirroring the
            // *deferred* branch here (rather than at the batch flush)
            // keeps one code path for both.
            self.mvcc_write(&src, e, x.project(em.cols), Some(Arc::clone(&dst)));
            if let Some(ctx) = batch.as_mut() {
                if ctx.defer[e.index()] {
                    // Defer the publication: the subtree below `dst` is
                    // complete (deeper edges were just written), so linking
                    // it in later — at the batch flush, still under every
                    // lock of this sweep — is indistinguishable to readers.
                    let prev = ctx
                        .pending
                        .insert((e, x.project(em.cols)), Arc::clone(&dst));
                    debug_assert!(prev.is_none(), "edge instance appeared under our locks");
                    continue;
                }
            }
            let prev = src
                .container(self.decomp, e)
                .write(&x.project(em.cols), Some(Arc::clone(&dst)));
            debug_assert!(prev.is_none(), "edge instance appeared under our locks");
        }
        Ok(true)
    }

    /// Sorts a precomputed sweep of root-lock tokens into the §5.1 global
    /// order, merges duplicate tokens by *joining* their modes (one
    /// physical lock requested shared by one row and exclusive by another
    /// collapses to a single exclusive acquisition up front — never
    /// shared-then-upgrade), and acquires the survivors in one pass.
    ///
    /// Every token names a root-hosted lock and root tokens precede all
    /// others in the global order, so when this runs as a transaction
    /// operation's first acquisition the whole sweep is in-order (blocking,
    /// never restarting on order violations).
    fn acquire_root_sweep(
        &mut self,
        mut sweep: Vec<(LockToken, LockMode)>,
        root: &NodeRef,
    ) -> Result<(), MustRestart> {
        sweep.sort_by(|a, b| a.0.cmp(&b.0));
        sweep.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 = prev.1.join(next.1);
                true
            } else {
                false
            }
        });
        for (tok, mode) in sweep {
            let lock = Arc::clone(root.lock(tok.stripe));
            self.engine.acquire(tok, &lock, mode)?;
        }
        Ok(())
    }

    /// Runs a compiled batch-insert plan: row `i` inserts the full tuple
    /// `xs[i]` with existence pattern `rows[i].0` (the caller's validated
    /// originals; all rows bind the same column sets). The amortized form
    /// of one [`Executor::run_insert`] per row.
    ///
    /// Locking: every row's root-hosted lock tokens — including the
    /// all-stripes compensation tokens of the shared inverse plan — are
    /// precomputed, deduplicated, globally sorted, and acquired in **one
    /// in-order sweep** before the first row runs; the per-row passes then
    /// skip the root batch entirely. Root-source edge publications are
    /// deferred into a pending map and flushed at the end with one fused
    /// [`relc_containers::Container::extend_entries`] call per container,
    /// key-sorted so sorted containers insert along one in-order walk.
    ///
    /// Put-if-absent semantics are the sequential fold: a row whose `s`
    /// equals an earlier row's is `false` without re-running the check
    /// (under one batch all rows share `dom s`, so an earlier row's tuple
    /// extends a later `s` exactly when the patterns are equal).
    ///
    /// `results` receives one flag per processed row and `applied` the
    /// *indices* of the actually-inserted rows; both are filled *even on
    /// an error return* (the pending map is flushed first), so the
    /// transaction layer can compensate every applied row whatever
    /// happened mid-batch.
    ///
    /// `final_op` marks the batch as the last operation of a single-shot
    /// transaction (see [`InsertUndo::PrepareFinal`]): fresh subtree host
    /// locks are skipped, which is a large share of a load batch's
    /// per-row lock-engine traffic.
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on lock contention; the caller rolls back (undoing
    /// the applied prefix) and retries.
    #[allow(clippy::too_many_arguments)]
    pub fn run_insert_all(
        &mut self,
        plan: &InsertBatchPlan,
        xs: &[Tuple],
        rows: &[(Tuple, Tuple)],
        root: &NodeRef,
        final_op: bool,
        results: &mut Vec<bool>,
        applied: &mut Vec<usize>,
    ) -> Result<(), MustRestart> {
        let mut tokens: Vec<LockToken> = Vec::new();
        for x in xs {
            for &(e, force_all) in &plan.root_hosted {
                if force_all {
                    self.placement.all_stripe_tokens_into(e, x, &mut tokens);
                } else {
                    self.placement.fallback_tokens_into(e, x, &mut tokens);
                }
            }
        }
        self.acquire_root_sweep(
            tokens
                .into_iter()
                .map(|t| (t, LockMode::Exclusive))
                .collect(),
            root,
        )?;

        let mut pending: HashMap<(EdgeId, Tuple), NodeRef, BuildFnv> = HashMap::default();
        let mut seen: HashSet<&Tuple, BuildFnv> = HashSet::default();
        let mut outcome = Ok(());
        for (i, x) in xs.iter().enumerate() {
            let s = &rows[i].0;
            if seen.contains(s) {
                // An earlier row claimed this pattern (whether it inserted
                // or found the tuple pre-existing): put-if-absent fails.
                results.push(false);
                continue;
            }
            let undo = if final_op {
                InsertUndo::PrepareFinal(&plan.inverse)
            } else {
                InsertUndo::Prepare(&plan.inverse)
            };
            let res = self.insert_under_root_locks(
                &plan.insert,
                x,
                s,
                root,
                undo,
                &plan.topo_nodes,
                Some(BatchInsertCtx {
                    defer: &plan.defer,
                    pending: &mut pending,
                }),
            );
            match res {
                Ok(inserted) => {
                    results.push(inserted);
                    seen.insert(s);
                    if inserted {
                        applied.push(i);
                    }
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        // Flush the deferred publications — also on the error path: the
        // applied rows' compensating unlinks (replayed by the transaction's
        // rollback, under these still-held locks) must find their tuples
        // fully linked.
        self.flush_pending_publications(pending, root);
        outcome
    }

    /// Publishes a batch's deferred root-source edges: one fused
    /// key-sorted [`relc_containers::Container::extend_entries`] call per
    /// edge container, under the still-held bulk sweep locks.
    fn flush_pending_publications(
        &self,
        pending: HashMap<(EdgeId, Tuple), NodeRef, BuildFnv>,
        root: &NodeRef,
    ) {
        if pending.is_empty() {
            return;
        }
        let mut by_edge: BTreeMap<EdgeId, Vec<(Tuple, NodeRef)>> = BTreeMap::new();
        for ((e, key), child) in pending {
            by_edge.entry(e).or_default().push((key, child));
        }
        for (e, mut entries) in by_edge {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            let displaced = root.container(self.decomp, e).extend_entries(entries);
            debug_assert_eq!(displaced, 0, "edge instances appeared under our locks");
        }
    }

    /// Evaluates the existence-check chain over the recorded bindings: true
    /// iff some tuple extends `s`.
    fn check_exists(
        &self,
        check: &[(EdgeId, MutTraverse)],
        s: &Tuple,
        bindings: &[Option<NodeRef>],
    ) -> bool {
        // States: (pattern-so-far, instance). Lookup steps reuse the
        // bindings recorded by the mutation walk (their keys coincide with
        // s's projections); scan steps read the containers directly — their
        // whole container instance is covered by the held locks.
        let root = bindings[self.decomp.root().index()]
            .as_ref()
            .expect("root always bound");
        let mut states: Vec<(Tuple, NodeRef)> = vec![(s.clone(), Arc::clone(root))];
        for (e, kind) in check {
            let em = self.decomp.edge(*e);
            let mut next = Vec::new();
            match kind {
                MutTraverse::Lookup => {
                    for (t, inst) in &states {
                        let key = t.project(em.cols);
                        if let Some(child) = inst.container(self.decomp, *e).lookup(&key) {
                            next.push((t.clone(), child));
                        }
                    }
                }
                MutTraverse::Scan => {
                    for (t, inst) in &states {
                        inst.container(self.decomp, *e)
                            .scan(&mut |k: &Tuple, child: &NodeRef| {
                                if t.matches(k) {
                                    let merged = t.union(k).expect("matches implies mergeable");
                                    next.push((merged, Arc::clone(child)));
                                }
                                ControlFlow::Continue(())
                            });
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        !states.is_empty()
    }

    /// Runs a compiled query plan as a short-circuiting existence check:
    /// `true` as soon as one state survives every step, without
    /// materializing, deduplicating, or sorting the matches (§2's
    /// `query r s C` asked as a boolean).
    ///
    /// Unlike [`Executor::run_query`], sibling states produced by a scan
    /// are explored depth-first, so locks for later siblings can be
    /// requested out of the global order; the engine then only *tries*
    /// those acquisitions, and contention surfaces as a restart — the same
    /// protocol as speculative guesses (§5.1).
    ///
    /// # Errors
    ///
    /// [`MustRestart`] if lock acquisition or speculation failed; the
    /// caller rolls back and retries.
    pub fn run_exists(
        &mut self,
        plan: &Plan,
        pattern: &Tuple,
        root: &NodeRef,
    ) -> Result<bool, MustRestart> {
        let st = QueryState::initial(self.decomp, pattern.clone(), Arc::clone(root));
        self.exists_from(&plan.steps, st)
    }

    fn exists_from(&mut self, steps: &[PlanStep], mut st: QueryState) -> Result<bool, MustRestart> {
        let Some((step, rest)) = steps.split_first() else {
            return Ok(true); // the state survived every step: a witness
        };
        match step {
            PlanStep::Lock {
                edge,
                mode,
                presorted,
                all_stripes,
            } => {
                // One state's lock set is sorted on its own, but the DFS
                // may have acquired deeper locks for an earlier sibling:
                // never rely on the chain-level sort-elision here.
                self.lock_step(
                    std::slice::from_ref(&st),
                    *edge,
                    *mode,
                    *presorted,
                    *all_stripes,
                )?;
                self.exists_from(rest, st)
            }
            PlanStep::Lookup { edge } => {
                let em = self.decomp.edge(*edge);
                let key = st.tuple.project(em.cols);
                let src = st.instance(em.src).clone();
                match src.container(self.decomp, *edge).lookup(&key) {
                    Some(child) => {
                        st.nodes[em.dst.index()] = Some(child);
                        self.exists_from(rest, st)
                    }
                    None => Ok(false),
                }
            }
            PlanStep::RangeScan { .. } => {
                unreachable!("plan_query never emits RangeScan; use run_query_range")
            }
            PlanStep::SpecLookup { edge, mode } => {
                match self.spec_lookup_step(vec![st], *edge, *mode)?.pop() {
                    Some(st) => self.exists_from(rest, st),
                    None => Ok(false), // verified absent
                }
            }
            PlanStep::Scan { edge } => {
                let em = self.decomp.edge(*edge);
                let decomp = self.decomp;
                let src = st.instance(em.src).clone();
                let mut outcome: Result<bool, MustRestart> = Ok(false);
                src.container(decomp, *edge)
                    .scan(&mut |k: &Tuple, child: &NodeRef| {
                        if !st.tuple.matches(k) {
                            return ControlFlow::Continue(());
                        }
                        let mut next = st.clone();
                        next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                        next.nodes[em.dst.index()] = Some(Arc::clone(child));
                        match self.exists_from(rest, next) {
                            Ok(false) => ControlFlow::Continue(()),
                            done => {
                                // Witness found (or restart demanded):
                                // stop scanning right here.
                                outcome = done;
                                ControlFlow::Break(())
                            }
                        }
                    });
                outcome
            }
        }
    }

    /// Runs the in-place update fast path: locates the unique tuple
    /// `u ⊇ s` along the plan's steps (locking path edges in read mode and
    /// touched edges exclusively), then swaps each touched edge's entry to
    /// the rewritten key/child — no unlink, no re-insert, no touching of
    /// any other edge. Returns the replaced tuple, or `None` if no tuple
    /// extends `s`.
    ///
    /// All lock acquisitions happen during the locate phase, strictly
    /// before the first container write; a [`MustRestart`] therefore never
    /// leaves a partial rewrite behind, and the write phase itself cannot
    /// fail. Affected sink instances are replaced by fresh instances keyed
    /// by the new valuation (one per sink node, shared across its touched
    /// edges, preserving the §4.1 sharing invariant).
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on lock contention during the locate phase; the
    /// caller rolls back and retries. No writes have been applied at that
    /// point.
    pub fn run_update_in_place(
        &mut self,
        plan: &InPlaceUpdate,
        s: &Tuple,
        t: &Tuple,
        root: &NodeRef,
    ) -> Result<Option<Tuple>, MustRestart> {
        /// A locate candidate: the query state plus, per touched edge, the
        /// source instance and old entry key to rewrite if this candidate
        /// survives.
        struct Cand {
            st: QueryState,
            touched: Vec<(EdgeId, NodeRef, Tuple)>,
        }
        let mut cands = vec![Cand {
            st: QueryState::initial(self.decomp, s.clone(), Arc::clone(root)),
            touched: Vec::new(),
        }];
        for step in &plan.steps {
            let em = self.decomp.edge(step.edge);
            let ep = self.placement.edge(step.edge);
            if ep.speculative {
                // §4.5: self-locking lookup; the planner guarantees spec
                // steps are point lookups and never touched.
                debug_assert!(step.kind == MutTraverse::Lookup && !step.touched);
                // Pin the fallback root stripe *before* the target
                // protocol: unlocked existence checks exclude structural
                // writers by sweeping every root stripe (see
                // `InsertPlan::check_has_scan`), and the in-place rewrite
                // is such a writer even when the present path would let it
                // skip the root entirely.
                let mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)> = Vec::new();
                for c in &cands {
                    let Some(host_inst) = c.st.nodes[ep.host.index()].clone() else {
                        continue;
                    };
                    for tok in self.placement.fallback_tokens(step.edge, &c.st.tuple) {
                        let lock = Arc::clone(host_inst.lock(tok.stripe));
                        batch.push((tok, lock));
                    }
                }
                self.acquire_sorted_batch(batch, step.mode)?;
                let states = std::mem::take(&mut cands)
                    .into_iter()
                    .map(|c| (c.st, c.touched))
                    .collect::<Vec<_>>();
                for (st, touched) in states {
                    let next = self.spec_lookup_step(vec![st], step.edge, step.mode)?;
                    cands.extend(next.into_iter().map(|st| Cand {
                        st,
                        touched: touched.clone(),
                    }));
                }
            } else {
                // Lock the step's tokens for every live candidate, one
                // sorted batch (as in `run_remove`).
                let mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)> = Vec::new();
                for c in &cands {
                    let Some(host_inst) = c.st.nodes[ep.host.index()].clone() else {
                        continue;
                    };
                    let tokens = if step.all_stripes {
                        self.placement.all_stripe_tokens(step.edge, &c.st.tuple)
                    } else {
                        self.placement.fallback_tokens(step.edge, &c.st.tuple)
                    };
                    for tok in tokens {
                        let lock = Arc::clone(host_inst.lock(tok.stripe));
                        batch.push((tok, lock));
                    }
                }
                self.acquire_sorted_batch(batch, step.mode)?;
                let mut next = Vec::with_capacity(cands.len());
                for mut c in cands {
                    let Some(src_inst) = c.st.nodes[em.src.index()].clone() else {
                        continue; // prefix absent for this candidate
                    };
                    match step.kind {
                        MutTraverse::Lookup => {
                            let key = c.st.tuple.project(em.cols);
                            let Some(child) =
                                src_inst.container(self.decomp, step.edge).lookup(&key)
                            else {
                                continue;
                            };
                            merge_binding(&mut c.st.nodes, em.dst, child);
                            if step.touched {
                                c.touched.push((step.edge, src_inst, key));
                            }
                            next.push(c);
                        }
                        MutTraverse::Scan => {
                            src_inst.container(self.decomp, step.edge).scan(
                                &mut |k: &Tuple, child: &NodeRef| {
                                    if c.st.tuple.matches(k) {
                                        let mut cand = Cand {
                                            st: c.st.clone(),
                                            touched: c.touched.clone(),
                                        };
                                        cand.st.tuple =
                                            c.st.tuple.union(k).expect("matches implies mergeable");
                                        merge_binding(
                                            &mut cand.st.nodes,
                                            em.dst,
                                            Arc::clone(child),
                                        );
                                        if step.touched {
                                            cand.touched.push((
                                                step.edge,
                                                src_inst.clone(),
                                                k.clone(),
                                            ));
                                        }
                                        next.push(cand);
                                    }
                                    ControlFlow::Continue(())
                                },
                            );
                        }
                    }
                }
                cands = next;
            }
            if cands.is_empty() {
                return Ok(None); // no tuple matches s
            }
        }
        debug_assert!(
            cands.len() == 1,
            "s is a key: at most one candidate can survive the full traversal"
        );
        let survivor = cands.remove(0);
        let old = survivor.st.tuple;
        debug_assert!(
            old.is_valuation_for(self.decomp.schema().columns()),
            "the locate set binds every column (a touched edge reaches a sink)"
        );
        let new = old.override_with(t);

        // Write phase: swap each touched entry under the exclusive locks
        // taken above. One fresh instance per affected sink node, shared
        // across all of its (necessarily all-touched) incoming edges.
        let mut fresh: Vec<Option<NodeRef>> = vec![None; self.decomp.node_count()];
        for (e, src_inst, old_key) in &survivor.touched {
            let em = self.decomp.edge(*e);
            let inst = fresh[em.dst.index()]
                .get_or_insert_with(|| {
                    let key = new.project(self.decomp.node(em.dst).key_cols);
                    NodeInstance::new(self.decomp, self.placement, em.dst, key)
                })
                .clone();
            let new_key = new.project(em.cols);
            // Mirror as tombstone(old) + live(new); when the keys
            // coincide the two same-stamp pushes hit one cell and
            // collapse to the live version.
            self.mvcc_write(src_inst, *e, old_key.clone(), None);
            self.mvcc_write(src_inst, *e, new_key.clone(), Some(Arc::clone(&inst)));
            let prev = src_inst
                .container(self.decomp, *e)
                .update_entry(old_key, &new_key, inst);
            debug_assert!(prev.is_some(), "touched entry vanished under our locks");
        }
        Ok(Some(old))
    }

    /// Reverses an applied [`Executor::run_update_in_place`] during
    /// rollback: re-traverses the plan by the *new* tuple (every edge is a
    /// point lookup — the full valuation is known) and swaps each touched
    /// entry back to the old key and a fresh old-keyed sink instance.
    ///
    /// Runs strictly under the locks the forward pass acquired (still held
    /// by the transaction), performs **no** lock acquisition, and therefore
    /// can never restart — the property `Transaction::rollback_effects`
    /// relies on.
    ///
    /// # Panics
    ///
    /// Panics if the traversal does not find the new tuple's entries —
    /// that would mean the undo log is being replayed out of order (a
    /// transaction-layer bug).
    pub fn run_update_write_back(
        &mut self,
        plan: &InPlaceUpdate,
        old: &Tuple,
        new: &Tuple,
        root: &NodeRef,
    ) {
        let mut bindings: Vec<Option<NodeRef>> = vec![None; self.decomp.node_count()];
        bindings[self.decomp.root().index()] = Some(Arc::clone(root));
        let mut fresh: Vec<Option<NodeRef>> = vec![None; self.decomp.node_count()];
        for step in &plan.steps {
            let em = self.decomp.edge(step.edge);
            let src = bindings[em.src.index()]
                .clone()
                .expect("write-back: source bound by an earlier step");
            if step.touched {
                let inst = fresh[em.dst.index()]
                    .get_or_insert_with(|| {
                        let key = old.project(self.decomp.node(em.dst).key_cols);
                        NodeInstance::new(self.decomp, self.placement, em.dst, key)
                    })
                    .clone();
                self.mvcc_write(&src, step.edge, new.project(em.cols), None);
                self.mvcc_write(
                    &src,
                    step.edge,
                    old.project(em.cols),
                    Some(Arc::clone(&inst)),
                );
                let prev = src.container(self.decomp, step.edge).update_entry(
                    &new.project(em.cols),
                    &old.project(em.cols),
                    inst,
                );
                assert!(
                    prev.is_some(),
                    "in-place write-back: rewritten entry vanished under held locks"
                );
            } else {
                let child = src
                    .container(self.decomp, step.edge)
                    .lookup(&new.project(em.cols))
                    .expect("write-back: path entry vanished under held locks");
                merge_binding(&mut bindings, em.dst, child);
            }
        }
    }

    /// Runs a compiled remove plan for key pattern `s`. Returns the removed
    /// tuple, if one existed (§2; at most one, since `s` is a key).
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on lock contention; the caller rolls back and
    /// retries.
    pub fn run_remove(
        &mut self,
        plan: &RemovePlan,
        s: &Tuple,
        root: &NodeRef,
    ) -> Result<Option<Tuple>, MustRestart> {
        self.lock_root_batch(s, root, &|e| {
            plan.edges
                .iter()
                .zip(&plan.all_stripes)
                .any(|(&(pe, _), &all)| pe == e && all)
        })?;
        let mut order: Vec<NodeId> = self.decomp.nodes().map(|(id, _)| id).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.decomp.topo_position(v)));
        self.remove_under_root_locks(plan, s, root, &order)
    }

    /// Runs a compiled batch-remove plan for `keys` (all binding the same
    /// column set): the amortized form of one [`Executor::run_remove`] per
    /// key. Every key's root-hosted tokens (with the plan's force-all
    /// analysis applied) are acquired in one globally sorted in-order
    /// sweep, then each key unlinks under the held set.
    ///
    /// `removed` receives each removed tuple as it is unlinked, tagged
    /// with the index of the key that matched it — filled even on an
    /// error return, so the transaction layer can compensate the applied
    /// prefix and report per-key outcomes. Duplicate keys in one batch
    /// behave as the sequential fold: the first occurrence removes, later
    /// ones find nothing.
    ///
    /// # Errors
    ///
    /// [`MustRestart`] on lock contention; the caller rolls back
    /// (re-inserting the removed prefix) and retries.
    pub fn run_remove_all(
        &mut self,
        plan: &RemoveBatchPlan,
        keys: &[Tuple],
        root: &NodeRef,
        removed: &mut Vec<(usize, Tuple)>,
    ) -> Result<(), MustRestart> {
        let mut tokens: Vec<LockToken> = Vec::new();
        for s in keys {
            for &(e, force_all) in &plan.root_hosted {
                if force_all {
                    self.placement.all_stripe_tokens_into(e, s, &mut tokens);
                } else {
                    self.placement.fallback_tokens_into(e, s, &mut tokens);
                }
            }
        }
        self.acquire_root_sweep(
            tokens
                .into_iter()
                .map(|t| (t, LockMode::Exclusive))
                .collect(),
            root,
        )?;
        for (i, s) in keys.iter().enumerate() {
            if let Some(t) =
                self.remove_under_root_locks(&plan.remove, s, root, &plan.reverse_topo_nodes)?
            {
                removed.push((i, t));
            }
        }
        Ok(())
    }

    /// The per-key body of [`Executor::run_remove`], entered with the
    /// key's root-hosted locks already held (by `run_remove`'s own root
    /// batch, or by [`Executor::run_remove_all`]'s bulk sweep).
    /// `reverse_topo_nodes` is the bottom-up unlink order (batch plans
    /// cache it so it is not re-sorted per key).
    fn remove_under_root_locks(
        &mut self,
        plan: &RemovePlan,
        s: &Tuple,
        root: &NodeRef,
        reverse_topo_nodes: &[NodeId],
    ) -> Result<Option<Tuple>, MustRestart> {
        // Multi-state traversal: a scan over an edge whose columns are not
        // bound by `s` (e.g. a by-cpu index when removing by pid) yields
        // several *candidate* states; deeper edges filter them. Since `s`
        // is a key, at most one candidate survives the full traversal.
        let mut states = vec![QueryState::initial(
            self.decomp,
            s.clone(),
            Arc::clone(root),
        )];
        for (i, &(e, kind)) in plan.edges.iter().enumerate() {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            // Lock (non-root hosts; the root batch covered the rest), one
            // sorted batch across all candidate states.
            if ep.host != self.decomp.root() {
                let mut batch: Vec<(LockToken, Arc<relc_locks::PhysicalLock>)> = Vec::new();
                for st in &states {
                    let Some(host_inst) = st.nodes[ep.host.index()].clone() else {
                        continue;
                    };
                    let tokens = if plan.all_stripes[i] {
                        self.placement.all_stripe_tokens(e, &st.tuple)
                    } else {
                        self.placement.fallback_tokens(e, &st.tuple)
                    };
                    for tok in tokens {
                        let lock = Arc::clone(host_inst.lock(tok.stripe));
                        batch.push((tok, lock));
                    }
                }
                self.acquire_sorted_batch(batch, LockMode::Exclusive)?;
            }
            let mut next = Vec::with_capacity(states.len());
            for st in states {
                let Some(src_inst) = st.nodes[em.src.index()].clone() else {
                    continue; // prefix absent for this candidate
                };
                let container = src_inst.container(self.decomp, e);
                match kind {
                    MutTraverse::Lookup => {
                        let key = st.tuple.project(em.cols);
                        if let Some(child) = container.lookup(&key) {
                            if ep.speculative {
                                // Exclude readers holding the target-side
                                // lock; presence is already frozen by the
                                // fallback lock from the root batch.
                                let tok = self.placement.target_token(e, child.key());
                                let lock = Arc::clone(child.lock(0));
                                self.engine.acquire(tok, &lock, LockMode::Exclusive)?;
                            }
                            let mut st = st;
                            merge_binding(&mut st.nodes, em.dst, child);
                            next.push(st);
                        }
                    }
                    MutTraverse::Scan => {
                        container.scan(&mut |k: &Tuple, child: &NodeRef| {
                            if st.tuple.matches(k) {
                                let mut cand = st.clone();
                                cand.tuple = st.tuple.union(k).expect("matches implies mergeable");
                                merge_binding(&mut cand.nodes, em.dst, Arc::clone(child));
                                next.push(cand);
                            }
                            ControlFlow::Continue(())
                        });
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return Ok(None); // no tuple matches s
            }
        }
        debug_assert!(
            states.len() == 1,
            "s is a key: at most one candidate can survive the full traversal"
        );
        let survivor = states.remove(0);
        let tuple = survivor.tuple;
        let bindings = survivor.nodes;

        // All edges present: unlink bottom-up. A node dies when all its
        // containers become empty; dying children are removed from every
        // parent container.
        let mut dies = vec![false; self.decomp.node_count()];
        for &v in reverse_topo_nodes {
            let meta = self.decomp.node(v);
            let inst = bindings[v.index()].as_ref().expect("all bound").clone();
            if meta.outgoing.is_empty() {
                dies[v.index()] = true;
                continue;
            }
            for &e in &meta.outgoing {
                let em = self.decomp.edge(e);
                if dies[em.dst.index()] {
                    self.mvcc_write(&inst, e, tuple.project(em.cols), None);
                    let prev = inst
                        .container(self.decomp, e)
                        .write(&tuple.project(em.cols), None);
                    debug_assert!(prev.is_some(), "edge vanished under our locks");
                }
            }
            dies[v.index()] = v != self.decomp.root() && inst.is_exhausted();
        }
        Ok(Some(tuple))
    }
}

fn merge_binding(bindings: &mut [Option<NodeRef>], node: NodeId, child: NodeRef) {
    match &bindings[node.index()] {
        Some(prev) => debug_assert!(
            Arc::ptr_eq(prev, &child),
            "shared node reached with different instances"
        ),
        None => bindings[node.index()] = Some(child),
    }
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("placement", &self.placement.name())
            .field("always_sort_locks", &self.always_sort_locks)
            .finish()
    }
}
