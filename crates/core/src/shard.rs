//! Sharded relations: one logical relation hash-partitioned across
//! independent decomposition instances.
//!
//! The §5 lock placements make a single decomposition instance scale to
//! fine-grained locking, but every write still funnels through one root
//! node, whose lock (or stripe array) bounds multi-core write throughput.
//! A [`ShardedRelation`] removes that bound by partitioning the tuple
//! space across `N` complete [`ConcurrentRelation`] instances — each with
//! its own root, plan caches, and lock engine traffic — by a **seeded
//! hash of the canonical key columns** ([`RelationSchema::canonical_key`]):
//! a tuple lives in shard `h(π_key(t)) mod N`, so disjoint-key writes land
//! on disjoint roots and proceed with no shared state at all.
//!
//! # Routing
//!
//! An operation whose pattern binds every canonical-key column is
//! **routed**: it touches exactly one shard and costs the same as on a
//! single instance. Patterns that bind fewer columns (partial-pattern
//! queries, alternate-key removes) **fan out** across shards; single-shot
//! fan-out reads capture one snapshot timestamp from the process-global
//! commit clock and read every shard at it (see
//! [`ShardedRelation::read_transaction`]), so the combination is a single
//! consistent cut — serializable, with no locks taken. Reads inside a
//! [`ShardedRelation::transaction`] additionally lock every visited shard
//! (they observe the transaction's own uncommitted writes).
//!
//! The router hash is deliberately **decorrelated** from the hashes below
//! it ([`Tuple::stable_hash_of_seeded`] with the router's own seed): the
//! lock-stripe hash and the in-container bucket hashes see the same key
//! bits, and if the router's partition were a function of the same stream,
//! every relation shard's keys would collapse into a fraction of each
//! container's buckets/stripes one level down.
//!
//! # Cross-shard transactions
//!
//! [`ShardedRelation::transaction`] generalizes the single-instance
//! transaction layer: a [`ShardedTransaction`] lazily opens one
//! [`Transaction`] per touched shard, routes each operation, and holds
//! **every** shard's locks until the closure returns (the two-phase
//! discipline spans shards). Commit finishes each touched shard's engine;
//! any restart or abort replays *every* touched shard's undo segment
//! before a single lock is released, so an abort after ops on shards A and
//! B rolls both back atomically — no observer can see A's effects without
//! B's.
//!
//! Deadlock freedom extends the §5.1 argument lexicographically: the
//! global coordinate of a lock is `(shard index, lock token)`. A
//! transaction may block only while acquiring in its current **maximum**
//! shard; as soon as an operation returns to a lower-indexed shard, that
//! shard's engine is demoted to try-only acquisition
//! ([`relc_locks::TwoPhaseEngine::set_try_only`]) — on contention the
//! whole cross-shard transaction rolls back and retries with backoff
//! instead of blocking, so no wait-for cycle can form through two shards.
//!
//! # Example
//!
//! ```
//! use relc::{ShardedRelation, decomp, placement::LockPlacement};
//! use relc_containers::ContainerKind;
//! use relc_spec::Value;
//!
//! let d = decomp::library::split(ContainerKind::ConcurrentHashMap,
//!                                ContainerKind::HashMap);
//! let p = LockPlacement::fine(&d)?;
//! let graph = ShardedRelation::new(d.clone(), p, 8)?;
//!
//! let edge = |s: i64, t: i64| d.schema()
//!     .tuple(&[("src", Value::from(s)), ("dst", Value::from(t))]).unwrap();
//! let w = |w: i64| d.schema().tuple(&[("weight", Value::from(w))]).unwrap();
//!
//! assert!(graph.insert(&edge(1, 2), &w(100))?);
//! assert!(graph.insert(&edge(3, 4), &w(0))?);
//!
//! // Cross-shard transfer: both edges' shards stay locked until commit.
//! graph.transaction(|tx| {
//!     tx.update(&edge(1, 2), &w(70))?;
//!     tx.update(&edge(3, 4), &w(30))?;
//!     Ok(())
//! })?;
//! assert_eq!(graph.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use relc_locks::{Backoff, CommitStamp, LockStatsSnapshot, TwoPhaseEngine};
use relc_spec::{ColumnSet, RangePattern, RelationSchema, SpecError, Tuple};

use crate::decomp::Decomposition;
use crate::error::CoreError;
use crate::exec::{assemble_range_output, Executor};
use crate::mvcc::{self, MvccScope};
use crate::placement::{LockPlacement, LockToken};
use crate::relation::{ActiveTxnGuard, ConcurrentRelation};
use crate::txn::{Transaction, TxnError};

/// The router's default seed. Any value works — what matters is that the
/// routing hash stream is not the stripe/bucket stream (see the module
/// docs on decorrelation) — but it is fixed so shard assignment is
/// reproducible across runs.
const DEFAULT_ROUTER_SEED: u64 = 0x5bd1_e995_9d03_58c3;

/// One logical relation partitioned across independent decomposition
/// instances by a seeded hash of its canonical key columns. See the
/// [module docs](self).
pub struct ShardedRelation {
    shards: Vec<ConcurrentRelation>,
    route_by: ColumnSet,
    seed: u64,
}

impl ShardedRelation {
    /// Synthesizes a relation partitioned over `shards` independent
    /// instances of the given (decomposition, placement) pair, routed by
    /// the schema's canonical key under the default router seed.
    /// `shards` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn new(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        shards: usize,
    ) -> Result<Self, CoreError> {
        Self::with_seed(decomp, placement, shards, DEFAULT_ROUTER_SEED)
    }

    /// [`ShardedRelation::new`] with an explicit router seed (ablation
    /// and distribution tests; a production deployment has no reason to
    /// change it).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn with_seed(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        shards: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let route_by = decomp.schema().canonical_key();
        // One snapshot registry shared by every shard: a cross-shard
        // reader registers once and establishes a single retirement
        // floor for the whole sharded relation (and only for it).
        let registry = relc_locks::SnapshotRegistry::new();
        let shards = (0..shards.max(1))
            .map(|_| {
                ConcurrentRelation::new_with_registry(
                    Arc::clone(&decomp),
                    Arc::clone(&placement),
                    Arc::clone(&registry),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedRelation {
            shards,
            route_by,
            seed,
        })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        self.shards[0].schema()
    }

    /// The decomposition every shard is represented by.
    pub fn decomposition(&self) -> &Arc<Decomposition> {
        self.shards[0].decomposition()
    }

    /// The lock placement every shard runs under.
    pub fn placement(&self) -> &Arc<LockPlacement> {
        self.shards[0].placement()
    }

    /// The columns the router partitions on (the schema's canonical key).
    pub fn route_by(&self) -> ColumnSet {
        self.route_by
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying per-shard relations (diagnostics and tests; tuples
    /// are owned by exactly the shard the router names).
    pub fn shards(&self) -> &[ConcurrentRelation] {
        &self.shards
    }

    /// The shard owning any tuple whose canonical-key projection equals
    /// `t`'s. `t` must bind every routing column (full tuples always do).
    pub fn shard_of(&self, t: &Tuple) -> usize {
        debug_assert!(self.route_by.is_subset(t.dom()));
        (t.stable_hash_of_seeded(self.route_by, self.seed) % self.shards.len() as u64) as usize
    }

    /// Routes a pattern: `Some(shard)` when it binds every routing
    /// column, `None` when the operation must fan out.
    fn route(&self, pattern: &Tuple) -> Option<usize> {
        if self.route_by.is_subset(pattern.dom()) {
            Some(self.shard_of(pattern))
        } else {
            None
        }
    }

    /// Number of tuples, summed over shards (same advisory-under-motion,
    /// exact-at-quiescence contract as [`ConcurrentRelation::len`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the relation is empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock statistics aggregated over every shard. A cross-shard
    /// transaction contributes one commit (or rollback) per shard it
    /// touched.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        let mut agg = LockStatsSnapshot::default();
        for s in self.shards.iter().map(|s| s.lock_stats()) {
            agg.acquisitions += s.acquisitions;
            agg.contended += s.contended;
            agg.restarts += s.restarts;
            agg.upgrades += s.upgrades;
            agg.speculation_failures += s.speculation_failures;
            agg.commits += s.commits;
            agg.user_rollbacks += s.user_rollbacks;
            agg.snapshot_reads += s.snapshot_reads;
        }
        agg
    }

    /// Ablation knob (§5.2), forwarded to every shard.
    pub fn set_always_sort_locks(&self, v: bool) {
        for s in &self.shards {
            s.set_always_sort_locks(v);
        }
    }

    /// Epoch reclamation counters. The epoch domain is process-global
    /// (one collector spanning every shard and every other relation in
    /// the process), so there is nothing per-shard to aggregate; see
    /// [`ConcurrentRelation::reclamation_stats`].
    pub fn reclamation_stats(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_stats()
    }

    /// Test-only: drives the epoch collector to quiescence; see
    /// [`ConcurrentRelation::flush_reclamation`].
    pub fn flush_reclamation(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_flush()
    }

    /// `insert r s t` (§2): routed to the owning shard of the full tuple
    /// `s ∪ t`; put-if-absent semantics as on a single instance.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::insert`].
    pub fn insert(&self, s: &Tuple, t: &Tuple) -> Result<bool, CoreError> {
        match s.union(t) {
            // Not routable ⇒ not a full valuation (or overlapping
            // domains): any shard rejects it with the canonical §2 error
            // before applying an effect.
            Ok(x) => self.shards[self.route(&x).unwrap_or(0)].insert(s, t),
            Err(_) => self.shards[0].insert(s, t),
        }
    }

    /// The single shard every row of a batch routes to, if one exists.
    /// `None` when the batch spans shards or a row cannot be routed
    /// (invalid rows go through the cross-shard path, whose per-shard
    /// validation surfaces the canonical error).
    fn single_target_of_rows(&self, rows: &[(Tuple, Tuple)]) -> Option<usize> {
        let mut target = None;
        for (s, t) in rows {
            let i = match s.union(t) {
                Ok(x) => self.route(&x)?,
                Err(_) => return None,
            };
            if *target.get_or_insert(i) != i {
                return None;
            }
        }
        target
    }

    /// Batched `insert r s t` as **one cross-shard transaction**: the
    /// rows split per shard (equal keys route identically, so the §2
    /// fold semantics — duplicates lose to the first occurrence — are
    /// preserved), each shard runs its sub-batch through the PR 3 bulk
    /// sweep, and all shards commit together: observers see all of the
    /// batch or none of it.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::insert_all`]; any row's validation
    /// error rolls back every shard's sub-batch.
    pub fn insert_all(&self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, CoreError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        // The whole batch landing in one shard — always true for a 1-shard
        // relation, common for locality-batched loads — skips the
        // cross-shard machinery (N engines + guards per attempt, one row
        // clone per sub-batch) for the shard's own single-shot bulk path.
        if let Some(i) = self.single_target_of_rows(rows) {
            return self.shards[i].insert_all(rows);
        }
        self.transaction(|tx| tx.insert_all(rows))
    }

    /// Batched `remove r s` as one cross-shard transaction (see
    /// [`Self::insert_all`]); returns per-key outcomes like
    /// [`ConcurrentRelation::remove_all`].
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove_all`]; the batch has no effect
    /// on error.
    pub fn remove_all(&self, keys: &[Tuple]) -> Result<Vec<bool>, CoreError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // Single-destination fast path, as in [`Self::insert_all`].
        let mut target = None;
        if keys
            .iter()
            .all(|k| self.route(k).is_some_and(|i| *target.get_or_insert(i) == i))
        {
            if let Some(i) = target {
                return self.shards[i].remove_all(keys);
            }
        }
        self.transaction(|tx| tx.remove_all(keys))
    }

    /// `remove r s` (§2); returns how many tuples were removed (0 or 1).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove`].
    pub fn remove(&self, s: &Tuple) -> Result<usize, CoreError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`Self::remove`], but returns the removed tuple. Keys binding
    /// the routing columns touch one shard; alternate keys (a key set
    /// that does not contain the canonical key) search shard by shard
    /// inside one cross-shard transaction.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove_returning`].
    pub fn remove_returning(&self, s: &Tuple) -> Result<Option<Tuple>, CoreError> {
        match self.route(s) {
            Some(i) => self.shards[i].remove_returning(s),
            None if !self.schema().is_key(s.dom()) => self.shards[0].remove_returning(s),
            None => self.transaction(|tx| tx.remove_returning(s)),
        }
    }

    /// `update r s t` (§2): routed when `s` binds the routing columns
    /// (an in-shard update can never change a tuple's shard, since `t`
    /// must be disjoint from `dom s ⊇` the routing columns); alternate-key
    /// updates run as a cross-shard transaction that relocates the tuple
    /// if `t` rewrites a routing column.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::update`].
    pub fn update(&self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, CoreError> {
        match self.route(s) {
            Some(i) => self.shards[i].update(s, t),
            None => self.transaction(|tx| tx.update(s, t)),
        }
    }

    /// `query r s C` (§2), lock-free at one snapshot timestamp: routed
    /// patterns read one shard; fan-out patterns read **every shard at
    /// the same snapshot** — since the MVCC layer landed, the commit
    /// clock is process-global, so a single registered timestamp is one
    /// consistent cut across all shards and the combined result is
    /// serializable (the former weakly-consistent shard-by-shard fan-out
    /// is gone).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`].
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        match self.route(s) {
            Some(i) => self.shards[i].query(s, cols),
            None => self.read_transaction(|snap| snap.query(s, cols)),
        }
    }

    /// Range query, lock-free at one snapshot timestamp: routed patterns
    /// read one shard, fan-out patterns read every shard at the same
    /// snapshot and merge (see [`ShardedSnapshotReader::query_range`]).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query_range`].
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        self.read_transaction(|snap| snap.query_range(s, range, cols))
    }

    /// Whether any tuple extends `s`; fan-out patterns short-circuit at
    /// the first shard with a witness, all shards probed at one snapshot
    /// timestamp (consistent across shards, like [`Self::query`]).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::contains`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        match self.route(s) {
            Some(i) => self.shards[i].contains(s),
            None => self.read_transaction(|snap| snap.contains(s)),
        }
    }

    /// All tuples, sorted and deduplicated across shards — one consistent
    /// snapshot even under concurrent mutation (see [`Self::query`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        self.read_transaction(|snap| snap.snapshot())
    }

    /// Runs a lock-free read-only transaction spanning every shard: the
    /// closure's [`ShardedSnapshotReader`] captures **one** commit
    /// timestamp and resolves every read on every shard against it. The
    /// commit clock is process-global and cross-shard writers stamp all
    /// their shards' versions with a single shared stamp before any lock
    /// is released, so that one timestamp is a consistent cut: no read
    /// can see shard A's half of a cross-shard transaction without
    /// shard B's.
    ///
    /// Same contract as [`ConcurrentRelation::read_transaction`]: no
    /// locks, no restarts, writers never blocked.
    ///
    /// # Panics
    ///
    /// Panics if called on a thread already inside a transaction on this
    /// relation (same re-entrancy diagnosis as the locked operations).
    pub fn read_transaction<R>(&self, f: impl FnOnce(&ShardedSnapshotReader<'_>) -> R) -> R {
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        let reader = ShardedSnapshotReader::open(self);
        f(&reader)
    }

    /// Process-global version-chain counters; like
    /// [`Self::reclamation_stats`], there is nothing per-shard to
    /// aggregate.
    pub fn version_stats(&self) -> relc_containers::VersionStats {
        relc_containers::version_stats()
    }

    /// Structural verification of every quiescent shard instance, plus
    /// the sharding invariant: each tuple lives in exactly the shard the
    /// router names. Returns the union of the shards' contents.
    ///
    /// # Errors
    ///
    /// A description of the violated invariant.
    pub fn verify(&self) -> Result<BTreeSet<Tuple>, String> {
        let mut all = BTreeSet::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for t in shard.verify().map_err(|e| format!("shard {i}: {e}"))? {
                let want = self.shard_of(&t);
                if want != i {
                    return Err(format!(
                        "misrouted tuple: shard {i} holds a tuple the router places in shard {want}"
                    ));
                }
                all.insert(t);
            }
        }
        Ok(all)
    }

    /// Runs `f` as one two-phase transaction spanning every shard it
    /// touches: per-shard [`Transaction`]s open lazily as operations
    /// route, all locks across all touched shards are held until the
    /// closure returns, and commit/rollback is atomic across shards
    /// (every shard's undo segment replays before any lock is released).
    /// See the [module docs](self) for the cross-shard ordering protocol.
    ///
    /// The closure contract is exactly
    /// [`ConcurrentRelation::transaction`]'s: propagate [`TxnError`] with
    /// `?`, return `Err(tx.abort(..))` to roll back, expect re-runs on
    /// contention, and route every operation on this relation through the
    /// transaction handle (single-shot calls inside the closure panic
    /// rather than self-deadlock).
    ///
    /// # Errors
    ///
    /// Whatever [`TxnError::Core`] error the closure propagates;
    /// restarts are consumed by the retry loop.
    pub fn transaction<R>(
        &self,
        mut f: impl FnMut(&mut ShardedTransaction<'_>) -> Result<R, TxnError>,
    ) -> Result<R, CoreError> {
        // Re-entrancy guards for every shard: a single-shot operation on
        // this relation (or directly on a shard) inside the closure would
        // open a second engine against locks this transaction holds.
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        let mut engines: Vec<TwoPhaseEngine<LockToken>> = self
            .shards
            .iter()
            .map(|s| TwoPhaseEngine::new(Arc::clone(s.stats_arc())))
            .collect();
        let mut backoff = Backoff::new();
        loop {
            let mut stx = ShardedTransaction::new(self, engines.iter_mut().map(Some).collect());
            match f(&mut stx) {
                Ok(r) if !stx.needs_restart() => {
                    // Commit: publish every shard's len delta while all
                    // locks are still held, stamp the shared commit
                    // timestamp over *all* shards' version journals (one
                    // stamp per attempt ⇒ readers see the cross-shard
                    // transaction atomically), then release shard by
                    // shard.
                    let (touched, scopes) = stx.into_touched(false);
                    for &(i, delta) in &touched {
                        self.shards[i].apply_len_delta(delta);
                    }
                    mvcc::finish_attempt(self.placement(), self.shards[0].snapshots(), &scopes);
                    for (i, _) in touched {
                        engines[i].finish();
                    }
                    return Ok(r);
                }
                // A swallowed restart must not commit (same enforcement
                // as the single-instance loop).
                Ok(_) | Err(TxnError::Restart(_)) => {
                    let (touched, scopes) = stx.into_touched(true);
                    mvcc::finish_attempt(self.placement(), self.shards[0].snapshots(), &scopes);
                    for (i, _) in touched {
                        engines[i].rollback();
                    }
                    backoff.wait();
                }
                Err(TxnError::Core(e)) => {
                    let (touched, scopes) = stx.into_touched(true);
                    mvcc::finish_attempt(self.placement(), self.shards[0].snapshots(), &scopes);
                    let user = matches!(e, CoreError::TransactionAborted(_));
                    for (i, _) in touched {
                        if user {
                            engines[i].rollback_user();
                        } else {
                            engines[i].rollback();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl fmt::Debug for ShardedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRelation")
            .field("decomposition", &self.decomposition().describe())
            .field("shards", &self.shards.len())
            .field(
                "route_by",
                &self.schema().catalog().render_set(self.route_by),
            )
            .field("len", &self.len())
            .finish()
    }
}

/// An open cross-shard transaction on a [`ShardedRelation`]. Created by
/// [`ShardedRelation::transaction`]; operations route exactly as the
/// relation's single-shot operations do, but all locks of every touched
/// shard accumulate until the closure returns.
pub struct ShardedTransaction<'t> {
    rel: &'t ShardedRelation,
    /// One engine slot per shard; taken (moved into the shard's
    /// [`Transaction`]) when the shard is first touched.
    engines: Vec<Option<&'t mut TwoPhaseEngine<LockToken>>>,
    open: Vec<Option<Transaction<'t>>>,
    /// Highest shard index touched so far: acquisitions there may block,
    /// anything lower is demoted to try-only (global (shard, token)
    /// order — see the module docs).
    max_open: Option<usize>,
    /// One commit stamp shared by every shard's MVCC write journal:
    /// snapshot readers see the cross-shard attempt commit (or roll
    /// back) as a single timestamp, never one shard's effects without
    /// another's.
    stamp: Arc<CommitStamp>,
}

impl<'t> ShardedTransaction<'t> {
    fn new(
        rel: &'t ShardedRelation,
        engines: Vec<Option<&'t mut TwoPhaseEngine<LockToken>>>,
    ) -> Self {
        let n = engines.len();
        ShardedTransaction {
            rel,
            engines,
            open: (0..n).map(|_| None).collect(),
            max_open: None,
            stamp: CommitStamp::new(),
        }
    }

    /// The relation this transaction operates on (metadata access only,
    /// as for [`Transaction::relation`]).
    pub fn relation(&self) -> &'t ShardedRelation {
        self.rel
    }

    /// The open per-shard transaction for shard `i`, created on first
    /// touch. Maintains the cross-shard acquisition order: returning to a
    /// shard below the current maximum demotes that shard's engine to
    /// try-only for the rest of the attempt.
    fn shard_tx(&mut self, i: usize) -> &mut Transaction<'t> {
        if self.open[i].is_none() {
            let engine = self.engines[i]
                .take()
                .expect("engine slot taken exactly once per attempt");
            let shard = &self.rel.shards[i];
            let mut exec = Executor::new(shard.decomposition(), shard.placement(), engine);
            exec.always_sort_locks = shard.always_sort_locks();
            let mut tx = Transaction::new(shard, exec, false);
            // All shards write versions under the attempt's shared stamp
            // (injected before any mirrored write can happen).
            tx.set_mvcc_stamp(Arc::clone(&self.stamp));
            self.open[i] = Some(tx);
        }
        let tx = self.open[i].as_mut().expect("just ensured open");
        match self.max_open {
            Some(m) if i < m => tx.force_try_locks(),
            Some(m) if m < i => self.max_open = Some(i),
            None => self.max_open = Some(i),
            _ => {}
        }
        tx
    }

    /// Whether any touched shard demanded a restart; the commit path
    /// refuses to commit in that case, exactly like the single-instance
    /// loop.
    fn needs_restart(&self) -> bool {
        self.open.iter().flatten().any(|tx| tx.needs_restart())
    }

    /// Consumes the attempt: optionally rolls back every touched shard's
    /// undo segment (all while every lock of every shard is still held),
    /// and returns the touched shard indices with their len deltas plus
    /// every touched shard's MVCC scope (taken *after* any rollback, so
    /// compensation versions are journaled too). The caller stamps the
    /// scopes through [`mvcc::finish_attempt`] and releases the engines
    /// afterwards.
    fn into_touched(self, rollback: bool) -> (Vec<(usize, isize)>, Vec<MvccScope>) {
        let mut touched = Vec::new();
        let mut scopes = Vec::new();
        for (i, slot) in self.open.into_iter().enumerate() {
            if let Some(mut tx) = slot {
                if rollback {
                    tx.rollback_effects();
                }
                touched.push((i, tx.len_delta()));
                scopes.push(tx.take_mvcc());
            }
        }
        (touched, scopes)
    }

    /// `insert r s t` (§2) under this transaction's lock scope, routed to
    /// the owning shard.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::insert`].
    pub fn insert(&mut self, s: &Tuple, t: &Tuple) -> Result<bool, TxnError> {
        let i = match s.union(t) {
            Ok(x) => self.rel.route(&x).unwrap_or(0),
            Err(_) => 0, // canonical validation error from shard 0
        };
        self.shard_tx(i).insert(s, t)
    }

    /// Batched insert under this transaction's lock scope: rows split per
    /// shard (preserving relative order, which preserves the §2 fold
    /// semantics — equal keys route identically), one bulk sub-batch per
    /// touched shard in ascending shard order.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::insert_all`].
    pub fn insert_all(&mut self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, TxnError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.rel.shards.len()];
        for (idx, (s, t)) in rows.iter().enumerate() {
            let i = match s.union(t) {
                Ok(x) => self.rel.route(&x).unwrap_or(0),
                Err(_) => 0,
            };
            groups[i].push(idx);
        }
        let mut results = vec![false; rows.len()];
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<(Tuple, Tuple)> = group.iter().map(|&idx| rows[idx].clone()).collect();
            let sub_results = self.shard_tx(i).insert_all(&sub)?;
            for (&idx, r) in group.iter().zip(sub_results) {
                results[idx] = r;
            }
        }
        Ok(results)
    }

    /// Batched remove under this transaction's lock scope; per-key
    /// outcomes as for [`Transaction::remove_all`]. Routable keys run as
    /// per-shard sub-batches; a batch containing any alternate (fan-out)
    /// key runs strictly key by key instead — the grouped form would
    /// evaluate all routed keys before any fan-out key, and a routed and
    /// an alternate pattern in one batch can match the *same* tuple, where
    /// the §2 fold's outcome depends on evaluation order.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove_all`].
    pub fn remove_all(&mut self, keys: &[Tuple]) -> Result<Vec<bool>, TxnError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if keys.iter().any(|k| self.rel.route(k).is_none()) {
            let mut results = Vec::with_capacity(keys.len());
            for k in keys {
                results.push(self.remove_returning(k)?.is_some());
            }
            return Ok(results);
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.rel.shards.len()];
        for (idx, k) in keys.iter().enumerate() {
            groups[self.rel.shard_of(k)].push(idx);
        }
        let mut results = vec![false; keys.len()];
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<Tuple> = group.iter().map(|&idx| keys[idx].clone()).collect();
            let sub_results = self.shard_tx(i).remove_all(&sub)?;
            for (&idx, r) in group.iter().zip(sub_results) {
                results[idx] = r;
            }
        }
        Ok(results)
    }

    /// `remove r s` (§2) under this transaction's lock scope.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove`].
    pub fn remove(&mut self, s: &Tuple) -> Result<usize, TxnError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`ShardedTransaction::remove`], but returns the removed
    /// tuple. Alternate keys search shards in ascending order under this
    /// transaction's locks.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove_returning`].
    pub fn remove_returning(&mut self, s: &Tuple) -> Result<Option<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).remove_returning(s),
            None if !self.rel.schema().is_key(s.dom()) => {
                // Canonical RemoveNotByKey error from shard 0.
                self.shard_tx(0).remove_returning(s)
            }
            None => {
                for i in 0..self.rel.shards.len() {
                    if let Some(t) = self.shard_tx(i).remove_returning(s)? {
                        return Ok(Some(t));
                    }
                }
                Ok(None)
            }
        }
    }

    /// `update r s t` (§2) under this transaction's lock scope. Routed
    /// patterns update in place within their shard; alternate-key updates
    /// locate the tuple shard by shard and — when `t` rewrites a routing
    /// column — relocate it to its new owning shard (an unlink on one
    /// shard and an insert on another, atomic under this transaction).
    ///
    /// # Errors
    ///
    /// As for [`Transaction::update`].
    pub fn update(&mut self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, TxnError> {
        if let Some(i) = self.rel.route(s) {
            return self.shard_tx(i).update(s, t);
        }
        // Validate up front (the §2 conditions plan_update would check):
        // past this point the operation decomposes into remove + insert.
        let schema = self.rel.schema();
        if t.is_empty() {
            return Err(TxnError::Core(CoreError::Spec(SpecError::EmptyUpdate)));
        }
        if !t.dom().is_disjoint(s.dom()) {
            return Err(TxnError::Core(CoreError::Spec(
                SpecError::UpdateOverlapsPattern {
                    shared: schema.catalog().render_set(t.dom().intersection(s.dom())),
                },
            )));
        }
        if !schema.is_key(s.dom()) {
            return Err(TxnError::Core(CoreError::Spec(SpecError::RemoveNotByKey {
                dom: schema.catalog().render_set(s.dom()),
            })));
        }
        let Some(old) = self.remove_returning(s)? else {
            return Ok(None);
        };
        let new = old.override_with(t);
        let inserted = self
            .shard_tx(self.rel.shard_of(&new))
            .insert(&new, &Tuple::empty())?;
        debug_assert!(
            inserted,
            "no tuple can extend the unlinked key under our exclusive locks"
        );
        Ok(Some(old))
    }

    /// `query r s C` (§2) under this transaction's lock scope. Fan-out
    /// patterns visit every shard and, unlike the single-shot
    /// [`ShardedRelation::query`], are **serializable**: each visited
    /// shard's locks persist to commit.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn query(&mut self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).query(s, cols),
            None => {
                let mut acc: BTreeSet<Tuple> = BTreeSet::new();
                for i in 0..self.rel.shards.len() {
                    acc.extend(self.shard_tx(i).query(s, cols)?);
                }
                Ok(acc.into_iter().collect())
            }
        }
    }

    /// Range query under this transaction's lock scope: routed patterns
    /// visit one shard; fan-out patterns visit every shard uncapped and
    /// merge globally (same merge discipline as
    /// [`ShardedSnapshotReader::query_range`]), serializable because
    /// every visited shard's locks persist to commit.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn query_range(
        &mut self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).query_range(s, range, cols),
            None => {
                let ext = cols.with(range.col());
                let uncapped = range.without_limit();
                let mut acc: Vec<Tuple> = Vec::new();
                for i in 0..self.rel.shards.len() {
                    acc.extend(self.shard_tx(i).query_range(s, &uncapped, ext)?);
                }
                Ok(assemble_range_output(acc, range, cols))
            }
        }
    }

    /// Whether any tuple extends `s`, under this transaction's locks
    /// (fan-out patterns short-circuit but keep the visited shards'
    /// locks).
    ///
    /// # Errors
    ///
    /// As for [`Transaction::contains`].
    pub fn contains(&mut self, s: &Tuple) -> Result<bool, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).contains(s),
            None => {
                for i in 0..self.rel.shards.len() {
                    if self.shard_tx(i).contains(s)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// All tuples, sorted, as observed under this transaction's locks
    /// (serializable across shards).
    ///
    /// # Errors
    ///
    /// As for [`ShardedTransaction::query`].
    pub fn snapshot(&mut self) -> Result<Vec<Tuple>, TxnError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }

    /// Aborts the transaction: return this from the closure to roll back
    /// every touched shard and surface
    /// [`CoreError::TransactionAborted`].
    pub fn abort(&self, reason: impl Into<String>) -> TxnError {
        TxnError::Core(CoreError::TransactionAborted(reason.into()))
    }
}

/// A lock-free read-only view of a [`ShardedRelation`] at one commit
/// timestamp, handed to [`ShardedRelation::read_transaction`]'s closure.
/// One snapshot registration and one epoch guard span every shard: all
/// reads — routed or fanned out — resolve at the same timestamp, which
/// the shared-stamp commit protocol makes a consistent cut across
/// shards.
pub struct ShardedSnapshotReader<'r> {
    rel: &'r ShardedRelation,
    snap: u64,
    guard: relc_containers::epoch::Guard,
    _reg: relc_locks::SnapshotGuard,
}

impl<'r> ShardedSnapshotReader<'r> {
    fn open(rel: &'r ShardedRelation) -> Self {
        // Register before pinning, like the single-instance reader: the
        // registration stops committers from truncating history at or
        // below `snap`, the guard keeps already-truncated nodes alive.
        let reg = rel.shards[0]
            .snapshots()
            .register(relc_locks::commit_clock());
        let guard = relc_containers::epoch::pin();
        ShardedSnapshotReader {
            rel,
            snap: reg.snap(),
            guard,
            _reg: reg,
        }
    }

    /// The commit timestamp every shard is read at.
    pub fn snapshot_ts(&self) -> u64 {
        self.snap
    }

    /// `query r s C` (§2) at this snapshot: routed patterns read the
    /// owning shard, fan-out patterns union every shard's contribution —
    /// all at the same timestamp, so the union is itself a snapshot.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`].
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        match self.rel.route(s) {
            Some(i) => self.rel.shards[i].snapshot_query_at(s, cols, self.snap, &self.guard),
            None => {
                let mut acc: BTreeSet<Tuple> = BTreeSet::new();
                for shard in &self.rel.shards {
                    acc.extend(shard.snapshot_query_at(s, cols, self.snap, &self.guard)?);
                }
                Ok(acc.into_iter().collect())
            }
        }
    }

    /// Range query at this snapshot: routed patterns read the owning
    /// shard natively; fan-out patterns query every shard **uncapped**
    /// with the range column added to the projection, then merge, order,
    /// deduplicate, and cap globally — a per-shard cap could drop a
    /// projection whose in-shard predecessors dedup away against other
    /// shards' results. All shards are read at the one registered
    /// timestamp, so the merged result is itself a snapshot.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query_range`].
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        match self.rel.route(s) {
            Some(i) => {
                self.rel.shards[i].snapshot_query_range_at(s, range, cols, self.snap, &self.guard)
            }
            None => {
                let ext = cols.with(range.col());
                let uncapped = range.without_limit();
                let mut acc: Vec<Tuple> = Vec::new();
                for shard in &self.rel.shards {
                    acc.extend(shard.snapshot_query_range_at(
                        s,
                        &uncapped,
                        ext,
                        self.snap,
                        &self.guard,
                    )?);
                }
                Ok(assemble_range_output(acc, range, cols))
            }
        }
    }

    /// Whether any tuple extends `s` at this snapshot; fan-out patterns
    /// short-circuit at the first shard with a witness.
    ///
    /// # Errors
    ///
    /// As for [`ShardedSnapshotReader::query`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        match self.rel.route(s) {
            Some(i) => self.rel.shards[i].snapshot_exists_at(s, self.snap, &self.guard),
            None => {
                for shard in &self.rel.shards {
                    if shard.snapshot_exists_at(s, self.snap, &self.guard)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// All tuples at this snapshot, sorted and deduplicated across
    /// shards.
    ///
    /// # Errors
    ///
    /// As for [`ShardedSnapshotReader::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }
}

impl fmt::Debug for ShardedSnapshotReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSnapshotReader")
            .field("snapshot_ts", &self.snap)
            .field("shards", &self.rel.shards.len())
            .finish()
    }
}

impl fmt::Debug for ShardedTransaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedTransaction")
            .field("shards", &self.rel.shards.len())
            .field(
                "touched",
                &self
                    .open
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| t.as_ref().map(|_| i))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
